//! Live UDP datapath for the Sidecar reproduction.
//!
//! The protocols in this repo — the paranoid transport, the retx/ACK-
//! reduction/CCD sidecars, supervision, auth, the slab flow table — are
//! sans-IO [`Node`] state machines. The simulator hosts them behind
//! [`sidecar_netsim::Driver`]; this crate provides the other host:
//! [`LiveDriver`], which runs the *same unmodified state machines* over
//! real `std::net::UdpSocket`s.
//!
//! Design constraints (and how they are met):
//!
//! * **No async runtime.** One reader thread per attached socket blocks in
//!   `recv_from` with a short read timeout and feeds a single mpsc channel;
//!   the driver's run loop is the only place callbacks execute, so nodes
//!   need no synchronization.
//! * **One clock.** Wall time from a monotonic [`Instant`] epoch is mapped
//!   onto the same nanosecond [`SimTime`] axis the simulator uses, so
//!   every timestamp a protocol sees (RTT samples, grace deadlines, trace
//!   stamps) lives in one domain.
//! * **Simulator-faithful timers.** A binary heap ordered by
//!   `(deadline, arm order)` fires each timer *at its armed deadline* even
//!   when the OS wakes the loop late — `GuardedTimer` and friends compare
//!   fire time to deadline by equality, per the [`Driver`] dispatch rules.
//! * **Flight recorder parity.** Egress records `HopEnqueue`, ingress
//!   `HopDeliver`, and policy losses `HopDrop`, exactly like the
//!   simulator's link layer — so [`sidecar_obs::Lifecycle`] reconstructs
//!   and certifies a live run with the same code path as a simulated one.
//!
//! What a live host *cannot* promise (see the [`Driver`] module docs):
//! FIFO delivery, loss-free links, or bit-exact reproducibility. The
//! loopback suite certifies causal invariants instead of byte-identical
//! traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admin;
pub mod cli;
pub mod wire;

use sidecar_netsim::node::{Action, Context, IfaceId, Node, NodeId};
use sidecar_netsim::obs::WorldObs;
use sidecar_netsim::packet::{Packet, PacketKind};
use sidecar_netsim::rng::SimRng;
use sidecar_netsim::time::SimTime;
use sidecar_netsim::Driver;
use sidecar_obs::{DropCause, Event, TraceClass};
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a reader thread blocks in `recv_from` before re-checking its
/// stop flag. Bounds shutdown latency, not dispatch latency (arrivals wake
/// the run loop through the channel immediately).
const READ_TIMEOUT: Duration = Duration::from_millis(25);

/// Per-run counters the live driver keeps about itself (the bench reads
/// these to price the per-packet dispatch overhead).
#[derive(Clone, Copy, Debug, Default)]
pub struct DriverStats {
    /// Node callbacks dispatched (packets + timers + starts).
    pub dispatches: u64,
    /// Wall nanoseconds spent inside node callbacks and action application.
    pub dispatch_ns: u64,
    /// Datagrams decoded and delivered to a node.
    pub packets_in: u64,
    /// Datagrams encoded and handed to the kernel.
    pub packets_out: u64,
    /// Egress packets dropped by the deterministic loss policy.
    pub dropped_by_policy: u64,
    /// Datagrams the kernel refused to send.
    pub send_errors: u64,
    /// Ingress datagrams that failed [`wire::decode`].
    pub decode_errors: u64,
}

/// One pending timer. Heap order is `(deadline, arm sequence)` so
/// same-deadline timers fire in arm order, mirroring the simulator's
/// stable event queue.
#[derive(PartialEq, Eq)]
struct TimerEntry {
    at: SimTime,
    seq: u64,
    node: NodeId,
    token: u64,
    handle: u64,
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// What reader threads and `inject` feed into the run loop.
enum Ingress {
    /// Raw bytes received on a node's attached socket.
    Datagram {
        node: NodeId,
        iface: IfaceId,
        bytes: Vec<u8>,
    },
    /// An already-decoded packet from [`Driver::inject`].
    Packet {
        node: NodeId,
        iface: IfaceId,
        packet: Packet,
    },
}

/// Where a node's egress interface transmits to.
struct EgressPort {
    socket: UdpSocket,
    peer: SocketAddr,
    /// `Some(n)`: deterministically drop every `n`-th data packet at this
    /// port (the live twin of the simulator's loss models — deterministic
    /// so the loopback suite is reproducible).
    drop_every: Option<u64>,
    /// Data packets that reached this port (drives `drop_every`).
    data_seen: u64,
}

struct ReaderThread {
    stop: Arc<AtomicBool>,
    join: JoinHandle<()>,
}

/// Hosts sans-IO [`Node`] state machines over real UDP sockets. See the
/// crate docs for the design; see [`sidecar_netsim::driver`] for the
/// dispatch rules this implementation upholds.
pub struct LiveDriver {
    /// Wall-clock origin: driver time 0.
    epoch: Instant,
    /// High-water mark of dispatched time (monotone).
    now: SimTime,
    nodes: Vec<Option<Box<dyn Node>>>,
    started: bool,
    rng: SimRng,
    obs: WorldObs,
    timers: BinaryHeap<TimerEntry>,
    cancelled: HashSet<u64>,
    /// Next timer-handle value (run-unique, threaded through
    /// `Context::set_handle_base`). Starts at 1 so handle 0 never exists.
    handle_seq: u64,
    arm_seq: u64,
    tx: Sender<Ingress>,
    rx: Receiver<Ingress>,
    egress: HashMap<(usize, usize), EgressPort>,
    readers: Vec<ReaderThread>,
    /// Pooled action buffer (steady-state dispatch allocates nothing).
    actions: Vec<Action>,
    stats: DriverStats,
}

impl LiveDriver {
    /// Creates a driver whose clock starts at 0 now. `seed` feeds the
    /// deterministic RNG handed to node callbacks.
    pub fn new(seed: u64) -> Self {
        let (tx, rx) = mpsc::channel();
        LiveDriver {
            epoch: Instant::now(),
            now: SimTime::ZERO,
            nodes: Vec::new(),
            started: false,
            rng: SimRng::new(seed),
            obs: WorldObs::new(),
            timers: BinaryHeap::new(),
            cancelled: HashSet::new(),
            handle_seq: 1,
            arm_seq: 0,
            tx,
            rx,
            egress: HashMap::new(),
            readers: Vec::new(),
            actions: Vec::new(),
            stats: DriverStats::default(),
        }
    }

    /// Replaces the flight-recorder ring with one holding `capacity`
    /// events. Lifecycle certification refuses truncated rings, so size
    /// this to the run (the simulator's scenario runners expose the same
    /// knob).
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.obs.trace = sidecar_obs::EventTrace::with_capacity(capacity);
    }

    /// This driver's observability state (metrics + event trace).
    pub fn obs(&self) -> &WorldObs {
        &self.obs
    }

    /// Mutable observability state.
    pub fn obs_mut(&mut self) -> &mut WorldObs {
        &mut self.obs
    }

    /// The driver's self-measurement counters.
    pub fn stats(&self) -> DriverStats {
        self.stats
    }

    /// Binds `node`'s interface `iface` to a socket: datagrams arriving on
    /// it are decoded and dispatched to the node, and the node's sends out
    /// of `iface` are encoded and transmitted to `peer`. Must be called
    /// before the first `run_until`.
    pub fn attach_socket(
        &mut self,
        node: NodeId,
        iface: IfaceId,
        socket: UdpSocket,
        peer: SocketAddr,
    ) -> std::io::Result<()> {
        assert!(!self.started, "attach sockets before the driver runs");
        assert!(node.0 < self.nodes.len(), "unknown {node:?}");
        socket.set_read_timeout(Some(READ_TIMEOUT))?;
        let reader = socket.try_clone()?;
        let stop = Arc::new(AtomicBool::new(false));
        let tx = self.tx.clone();
        let flag = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name(format!("live-rx-n{}i{}", node.0, iface.0))
            .spawn(move || {
                let mut buf = vec![0u8; wire::MAX_DATAGRAM];
                while !flag.load(Ordering::Relaxed) {
                    match reader.recv_from(&mut buf) {
                        Ok((n, _)) => {
                            if tx
                                .send(Ingress::Datagram {
                                    node,
                                    iface,
                                    bytes: buf[..n].to_vec(),
                                })
                                .is_err()
                            {
                                break; // driver gone
                            }
                        }
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            continue
                        }
                        Err(_) => break,
                    }
                }
            })?;
        self.egress.insert(
            (node.0, iface.0),
            EgressPort {
                socket,
                peer,
                drop_every: None,
                data_seen: 0,
            },
        );
        self.readers.push(ReaderThread { stop, join });
        Ok(())
    }

    /// Deterministically drops every `every`-th **data** packet the node
    /// sends out of `iface` (recorded as a `HopDrop` loss, exactly like a
    /// simulated lossy link). Control and ACK packets are never dropped.
    pub fn set_egress_loss(&mut self, node: NodeId, iface: IfaceId, every: u64) {
        assert!(every > 0, "drop period must be positive");
        let port = self
            .egress
            .get_mut(&(node.0, iface.0))
            .expect("attach the socket before configuring loss");
        port.drop_every = Some(every);
    }

    /// Wall time on the driver axis (never behind dispatched time).
    fn wall_now(&self) -> SimTime {
        let wall =
            SimTime::from_nanos(self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        wall.max(self.now)
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let at = self.wall_now();
        for i in 0..self.nodes.len() {
            self.dispatch(NodeId(i), at, |node, ctx| node.on_start(ctx));
        }
    }

    /// Earliest live (uncancelled) timer deadline.
    fn next_timer_at(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.timers.peek() {
            if self.cancelled.remove(&entry.handle) {
                self.timers.pop();
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Fires every uncancelled timer with `deadline <= limit`, each at its
    /// own armed deadline in `(deadline, arm order)` sequence.
    fn fire_due_timers(&mut self, limit: SimTime) {
        loop {
            match self.timers.peek() {
                Some(entry) if entry.at <= limit => {}
                _ => return,
            }
            let entry = self.timers.pop().expect("peeked");
            if self.cancelled.remove(&entry.handle) {
                continue;
            }
            let (node, token, at) = (entry.node, entry.token, entry.at);
            self.dispatch(node, at, |n, ctx| n.on_timer(token, ctx));
        }
    }

    /// Runs one callback at `at`, then applies its recorded actions.
    fn dispatch<F>(&mut self, id: NodeId, at: SimTime, f: F)
    where
        F: FnOnce(&mut dyn Node, &mut Context),
    {
        debug_assert!(at >= self.now, "clock must not run backwards");
        self.now = self.now.max(at);
        let mut node = self.nodes[id.0].take().expect("re-entrant dispatch");
        let mut actions = std::mem::take(&mut self.actions);
        debug_assert!(actions.is_empty());
        let t0 = Instant::now();
        {
            let mut ctx = Context::with_obs(
                self.now,
                id,
                &mut self.rng,
                &mut actions,
                Some(&mut self.obs),
            );
            ctx.set_handle_base(self.handle_seq);
            f(node.as_mut(), &mut ctx);
        }
        self.nodes[id.0] = Some(node);
        for action in actions.drain(..) {
            match action {
                Action::Send { iface, packet } => self.transmit(id, iface, packet),
                Action::Timer { at, token, handle } => {
                    self.handle_seq = handle.raw() + 1;
                    self.arm_seq += 1;
                    self.timers.push(TimerEntry {
                        at: at.max(self.now),
                        seq: self.arm_seq,
                        node: id,
                        token,
                        handle: handle.raw(),
                    });
                }
                Action::CancelTimer { handle } => {
                    self.cancelled.insert(handle.raw());
                }
            }
        }
        self.stats.dispatch_ns += t0.elapsed().as_nanos() as u64;
        self.stats.dispatches += 1;
        self.actions = actions;
    }

    /// Flight-recorder identity of a traceable packet (data and sidecar
    /// control; ACKs are untraced) — same convention as the simulator.
    fn hop_identity(packet: &Packet) -> Option<(TraceClass, u32, u64)> {
        match packet.kind {
            PacketKind::Data => Some((TraceClass::Data, packet.flow.0, packet.seq)),
            PacketKind::Sidecar => Some((TraceClass::Ctrl, packet.flow.0, packet.seq)),
            _ => None,
        }
    }

    /// Encodes and sends one packet out of `(node, iface)`'s attached
    /// socket, applying the deterministic loss policy and recording the
    /// hop exactly as the simulator's link layer would: `HopEnqueue` only
    /// on a successful handoff, `HopDrop` (and no enqueue) otherwise.
    fn transmit(&mut self, node: NodeId, iface: IfaceId, packet: Packet) {
        let port = self
            .egress
            .get_mut(&(node.0, iface.0))
            .unwrap_or_else(|| panic!("{node:?} {iface:?} has no attached socket"));
        if packet.kind == PacketKind::Data {
            port.data_seen += 1;
            if let Some(every) = port.drop_every {
                if port.data_seen.is_multiple_of(every) {
                    self.stats.dropped_by_policy += 1;
                    if let Some((class, flow, seq)) = Self::hop_identity(&packet) {
                        self.obs.trace.record(
                            self.now.as_nanos(),
                            Event::HopDrop {
                                node: node.0 as u32,
                                iface: iface.0 as u32,
                                class,
                                flow,
                                seq,
                                cause: DropCause::Loss,
                            },
                        );
                    }
                    return;
                }
            }
        }
        let image = wire::encode(&packet);
        match port.socket.send_to(&image, port.peer) {
            Ok(_) => {
                self.stats.packets_out += 1;
                if let Some((class, flow, seq)) = Self::hop_identity(&packet) {
                    self.obs.trace.record(
                        self.now.as_nanos(),
                        Event::HopEnqueue {
                            node: node.0 as u32,
                            iface: iface.0 as u32,
                            class,
                            flow,
                            seq,
                        },
                    );
                }
            }
            Err(_) => {
                // The kernel refused the datagram (buffer full): the live
                // twin of a queue-overflow drop.
                self.stats.send_errors += 1;
                if let Some((class, flow, seq)) = Self::hop_identity(&packet) {
                    self.obs.trace.record(
                        self.now.as_nanos(),
                        Event::HopDrop {
                            node: node.0 as u32,
                            iface: iface.0 as u32,
                            class,
                            flow,
                            seq,
                            cause: DropCause::Queue,
                        },
                    );
                }
            }
        }
    }

    /// Delivers one ingress item to its node at time `at`.
    fn dispatch_ingress(&mut self, ingress: Ingress, at: SimTime) {
        let (node, iface, packet) = match ingress {
            Ingress::Datagram { node, iface, bytes } => match wire::decode(&bytes) {
                Ok(packet) => (node, iface, packet),
                Err(_) => {
                    self.stats.decode_errors += 1;
                    self.obs.metrics.inc("live.decode_errors");
                    return;
                }
            },
            Ingress::Packet {
                node,
                iface,
                packet,
            } => (node, iface, packet),
        };
        self.stats.packets_in += 1;
        if let Some((class, flow, seq)) = Self::hop_identity(&packet) {
            self.obs.trace.record(
                at.max(self.now).as_nanos(),
                Event::HopDeliver {
                    node: node.0 as u32,
                    iface: iface.0 as u32,
                    class,
                    flow,
                    seq,
                },
            );
        }
        self.dispatch(node, at, |n, ctx| n.on_packet(iface, packet, ctx));
    }
}

impl Driver for LiveDriver {
    fn now(&self) -> SimTime {
        self.now
    }

    fn install(&mut self, node: Box<dyn Node>) -> NodeId {
        assert!(!self.started, "install nodes before the driver runs");
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(node));
        id
    }

    fn inject(&mut self, node: NodeId, iface: IfaceId, packet: Packet) {
        assert!(node.0 < self.nodes.len(), "unknown {node:?}");
        self.tx
            .send(Ingress::Packet {
                node,
                iface,
                packet,
            })
            .expect("driver owns the receiver");
    }

    fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.ensure_started();
        loop {
            let wall = self.wall_now();
            self.fire_due_timers(wall.min(deadline));
            if wall >= deadline {
                break;
            }
            // Sleep until the earliest timer or the deadline, whichever
            // comes first; an arriving datagram wakes us immediately.
            let next = match self.next_timer_at() {
                Some(t) => t.min(deadline),
                None => deadline,
            };
            let wait = Duration::from_nanos(next.as_nanos().saturating_sub(wall.as_nanos()));
            match self.rx.recv_timeout(wait) {
                Ok(first) => {
                    let at = self.wall_now().min(deadline);
                    // Timers due before this arrival fire first, each at
                    // its own deadline — the clock never runs backwards.
                    self.fire_due_timers(at);
                    self.dispatch_ingress(first, at);
                    // Drain whatever else queued while we worked.
                    while let Ok(more) = self.rx.try_recv() {
                        let at = self.wall_now().min(deadline);
                        self.fire_due_timers(at);
                        self.dispatch_ingress(more, at);
                    }
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("driver holds a sender; channel cannot close")
                }
            }
        }
        // Clamp forward so subsequent scheduling is relative to the
        // deadline, mirroring `World::run_until`.
        self.now = self.now.max(deadline);
        self.now
    }

    fn is_idle(&self) -> bool {
        !self
            .timers
            .iter()
            .any(|e| !self.cancelled.contains(&e.handle))
    }

    fn node_dyn(&self, id: NodeId) -> &dyn Node {
        self.nodes[id.0]
            .as_deref()
            .expect("node is being dispatched")
    }

    fn node_dyn_mut(&mut self, id: NodeId) -> &mut dyn Node {
        self.nodes[id.0]
            .as_deref_mut()
            .expect("node is being dispatched")
    }
}

impl Drop for LiveDriver {
    fn drop(&mut self) {
        for reader in &self.readers {
            reader.stop.store(true, Ordering::Relaxed);
        }
        for reader in self.readers.drain(..) {
            let _ = reader.join.join();
        }
    }
}

/// Binds two loopback sockets and connects them to each other, returning
/// `(a, b)`. The cheapest way to build a bidirectional live "link" for
/// tests, benches, and single-machine demos.
pub fn loopback_pair() -> std::io::Result<(UdpSocket, UdpSocket)> {
    let a = UdpSocket::bind("127.0.0.1:0")?;
    let b = UdpSocket::bind("127.0.0.1:0")?;
    a.connect(b.local_addr()?)?;
    b.connect(a.local_addr()?)?;
    Ok((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidecar_netsim::packet::FlowId;
    use sidecar_netsim::time::SimDuration;
    use std::any::Any;

    /// Echoes data packets back out the ingress interface after `delay`,
    /// recording fire-time accuracy.
    struct Echo {
        delay: SimDuration,
        held: Vec<(IfaceId, Packet)>,
        packets: u64,
        timers: u64,
        /// (armed deadline, ctx.now() at fire) pairs.
        fires: Vec<(SimTime, SimTime)>,
        armed_at: Vec<SimTime>,
    }

    impl Echo {
        fn boxed(delay: SimDuration) -> Box<Self> {
            Box::new(Echo {
                delay,
                held: Vec::new(),
                packets: 0,
                timers: 0,
                fires: Vec::new(),
                armed_at: Vec::new(),
            })
        }
    }

    impl Node for Echo {
        fn on_packet(&mut self, iface: IfaceId, packet: Packet, ctx: &mut Context) {
            self.packets += 1;
            self.held.push((iface, packet));
            let deadline = ctx.now() + self.delay;
            ctx.set_timer_at(deadline, 7);
            self.armed_at.push(deadline);
        }

        fn on_timer(&mut self, token: u64, ctx: &mut Context) {
            assert_eq!(token, 7);
            self.timers += 1;
            let armed = self.armed_at[self.fires.len()];
            self.fires.push((armed, ctx.now()));
            if let Some((iface, pkt)) = self.held.pop() {
                ctx.send(iface, pkt);
            }
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Counts received data packets.
    struct Sink {
        packets: u64,
    }

    impl Node for Sink {
        fn on_packet(&mut self, _iface: IfaceId, _packet: Packet, _ctx: &mut Context) {
            self.packets += 1;
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn echo_roundtrip_over_real_sockets() {
        let mut driver = LiveDriver::new(7);
        let echo = driver.install(Echo::boxed(SimDuration::from_millis(2)));
        let sink = driver.install(Box::new(Sink { packets: 0 }));
        let (s_echo, s_sink) = loopback_pair().unwrap();
        let echo_peer = s_sink.local_addr().unwrap();
        let sink_peer = s_echo.local_addr().unwrap();
        driver
            .attach_socket(echo, IfaceId(0), s_echo, echo_peer)
            .unwrap();
        driver
            .attach_socket(sink, IfaceId(0), s_sink, sink_peer)
            .unwrap();

        // Seed a packet through the sink's socket: the sink node sends it
        // to the echo, which holds it for 2 ms and sends it back.
        let d = &mut driver as &mut dyn Driver;
        d.inject(
            sink,
            IfaceId(0),
            Packet::data(FlowId(1), 1, 0xAB, 1500, SimTime::ZERO),
        );
        driver.run_until(SimTime::from_nanos(1_000_000)); // 1 ms: inject lands
        assert_eq!(
            (&driver as &dyn Driver).node_as::<Sink>(sink).packets,
            1,
            "injected packet reached the sink node"
        );

        // Now drive a real socket hop: the echo node's send goes through
        // the kernel to the sink's socket.
        let pkt = Packet::data(FlowId(1), 2, 0xCD, 1500, SimTime::ZERO);
        driver.inject(echo, IfaceId(0), pkt);
        driver.run_until(SimTime::from_nanos(30_000_000)); // 30 ms
        let echo_ref: &Echo = (&driver as &dyn Driver).node_as(echo);
        assert_eq!(echo_ref.packets, 1);
        assert_eq!(echo_ref.timers, 1);
        // Dispatch rule 2: the timer fired with ctx.now() == armed deadline.
        for &(armed, fired) in &echo_ref.fires {
            assert_eq!(armed, fired, "timer must fire at its armed deadline");
        }
        let sink_ref: &Sink = (&driver as &dyn Driver).node_as(sink);
        assert_eq!(sink_ref.packets, 2, "echoed packet crossed the kernel");
        let stats = driver.stats();
        assert_eq!(stats.packets_out, 1);
        assert!(stats.packets_in >= 2);
        assert_eq!(stats.decode_errors, 0);
    }

    #[test]
    fn cancelled_timers_never_fire_and_handles_are_unique() {
        struct Canceller {
            fired: Vec<u64>,
            handles: Vec<u64>,
        }
        impl Node for Canceller {
            fn on_start(&mut self, ctx: &mut Context) {
                let a = ctx.set_timer_after(SimDuration::from_millis(1), 1);
                let b = ctx.set_timer_after(SimDuration::from_millis(2), 2);
                let c = ctx.set_timer_after(SimDuration::from_millis(3), 3);
                self.handles.extend([a.raw(), b.raw(), c.raw()]);
                ctx.cancel_timer(b);
            }
            fn on_packet(&mut self, _i: IfaceId, _p: Packet, _c: &mut Context) {}
            fn on_timer(&mut self, token: u64, ctx: &mut Context) {
                self.fired.push(token);
                if token == 1 {
                    self.handles
                        .push(ctx.set_timer_after(SimDuration::from_millis(1), 4).raw());
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut driver = LiveDriver::new(1);
        let id = driver.install(Box::new(Canceller {
            fired: Vec::new(),
            handles: Vec::new(),
        }));
        driver.run_until(SimTime::from_nanos(20_000_000));
        assert!(driver.is_idle());
        let node: &Canceller = (&driver as &dyn Driver).node_as(id);
        assert_eq!(
            node.fired,
            vec![1, 4, 3],
            "deadline order, no cancelled fire"
        );
        let mut handles = node.handles.clone();
        handles.sort_unstable();
        handles.dedup();
        assert_eq!(handles.len(), node.handles.len(), "handles are run-unique");
    }

    #[test]
    fn egress_loss_policy_drops_deterministically() {
        struct Blaster {
            n: u64,
        }
        impl Node for Blaster {
            fn on_start(&mut self, ctx: &mut Context) {
                for seq in 0..self.n {
                    ctx.send(
                        IfaceId(0),
                        Packet::data(FlowId(1), seq, seq.wrapping_mul(0x9E37), 1500, ctx.now()),
                    );
                }
            }
            fn on_packet(&mut self, _i: IfaceId, _p: Packet, _c: &mut Context) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut driver = LiveDriver::new(1);
        let blaster = driver.install(Box::new(Blaster { n: 20 }));
        let sink = driver.install(Box::new(Sink { packets: 0 }));
        let (s_a, s_b) = loopback_pair().unwrap();
        let a_peer = s_b.local_addr().unwrap();
        let b_peer = s_a.local_addr().unwrap();
        driver
            .attach_socket(blaster, IfaceId(0), s_a, a_peer)
            .unwrap();
        driver.attach_socket(sink, IfaceId(0), s_b, b_peer).unwrap();
        driver.set_egress_loss(blaster, IfaceId(0), 5);
        driver.run_until(SimTime::from_nanos(100_000_000));
        let stats = driver.stats();
        assert_eq!(stats.dropped_by_policy, 4, "every 5th of 20 dropped");
        assert_eq!(stats.packets_out, 16);
        let sink_ref: &Sink = (&driver as &dyn Driver).node_as(sink);
        assert_eq!(sink_ref.packets, 16);
        // The ring saw 16 enqueues, 16 delivers, 4 drops.
        let trace = &driver.obs().trace;
        assert_eq!(trace.count_kind("hop_enqueue"), 16);
        assert_eq!(trace.count_kind("hop_drop"), 4);
        assert_eq!(trace.count_kind("hop_deliver"), 16);
    }
}
