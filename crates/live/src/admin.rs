//! Live introspection endpoint: a tiny blocking HTTP server for the live
//! binaries.
//!
//! `live-proxy --admin 127.0.0.1:9090` starts one admin thread serving
//! three read-only endpoints straight off the driver's shared
//! observability handles:
//!
//! * `GET /metrics` — the full registry in Prometheus text exposition
//!   format ([`sidecar_obs::render_prometheus`]), scrapeable by a stock
//!   Prometheus server;
//! * `GET /flows` — the per-flow health scoreboard's current top-K ranking
//!   in its stable text encoding ([`sidecar_obs::ScoreboardSnapshot`]);
//! * `GET /healthz` — liveness plus session health derived from the
//!   `supervisor.state` gauge the protocols publish (`200` while
//!   connecting/active, `503` once the supervisor has degraded to
//!   baseline);
//! * `GET /timeseries` — the windowed rate/gauge/percentile series the
//!   wall-clock sampler thread has accumulated (empty without
//!   `--sample-ms`).
//!
//! Zero dependencies by design: `TcpListener`, a hand-rolled request-line
//! parser, and `Connection: close` responses. The server never blocks the
//! datapath — it reads from [`MetricsRegistry`] / [`FlowScoreboard`]
//! handles that are `Clone`-shared with the driver, both of which are
//! lock-free (scoreboard) or lock-cheap (registry snapshot) on the read
//! side.
//!
//! The sampler thread is the wall-clock twin of
//! [`sidecar_netsim::telemetry::run_sampled`]: same
//! [`Sampler`] core, same windowed-delta semantics,
//! but ticks come from `thread::sleep` on a monotonic clock instead of the
//! sim scheduler — which is exactly why the deterministic variant exists
//! for golden tests.

use sidecar_obs::{render_prometheus, FlowScoreboard, MetricsRegistry, Sampler};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Scoreboard rows `/flows` returns (the table keeps every flow; the
/// endpoint reports the unhealthiest ranks).
pub const FLOWS_TOP_K: usize = 32;

/// How long the accept loop sleeps when no connection is pending (bounds
/// shutdown latency, like the datapath reader threads' `READ_TIMEOUT`).
const ACCEPT_IDLE: Duration = Duration::from_millis(25);

/// Time-series ring capacity for the wall-clock sampler: at the default
/// 1 s interval this retains over an hour of history.
const SAMPLER_CAPACITY: usize = 4096;

/// The observability handles the admin endpoints read. All cheap clones:
/// the registry and scoreboard share state with the driver that created
/// them.
#[derive(Clone)]
pub struct AdminHandles {
    /// The driver's metrics registry (serves `/metrics` and `/healthz`).
    pub registry: MetricsRegistry,
    /// The driver's per-flow health scoreboard (serves `/flows`).
    pub scoreboard: FlowScoreboard,
}

/// A running admin server (and optional sampler thread). Dropping it stops
/// both threads.
pub struct AdminServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl AdminServer {
    /// Binds `addr` (e.g. `127.0.0.1:9090`, port 0 for ephemeral) and
    /// serves the admin endpoints on a background thread. With
    /// `sample_interval` set, a second thread samples the registry into a
    /// time-series at that cadence, exposed at `/timeseries`.
    pub fn spawn(
        addr: impl ToSocketAddrs,
        handles: AdminHandles,
        sample_interval: Option<Duration>,
    ) -> std::io::Result<AdminServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let series = Arc::new(Mutex::new(Sampler::with_capacity(SAMPLER_CAPACITY)));
        let mut threads = Vec::new();

        if let Some(interval) = sample_interval {
            assert!(!interval.is_zero(), "sampling interval must be non-zero");
            let registry = handles.registry.clone();
            let sampler = Arc::clone(&series);
            let flag = Arc::clone(&stop);
            threads.push(
                std::thread::Builder::new()
                    .name("live-admin-sampler".into())
                    .spawn(move || {
                        let epoch = Instant::now();
                        // Prime the delta baseline at t=0.
                        sample_at(&sampler, &registry, 0);
                        let mut tick = 1u64;
                        while !flag.load(Ordering::Relaxed) {
                            let next = interval.checked_mul(tick as u32).unwrap_or(Duration::MAX);
                            std::thread::sleep(next.saturating_sub(epoch.elapsed()));
                            // Stamp with the *actual* elapsed time: a late
                            // wake means a longer window, and honest rates
                            // divide by the real width.
                            let at_ns = epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                            sample_at(&sampler, &registry, at_ns);
                            tick += 1;
                        }
                    })?,
            );
        }

        let flag = Arc::clone(&stop);
        threads.push(
            std::thread::Builder::new()
                .name("live-admin-http".into())
                .spawn(move || {
                    while !flag.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((conn, _)) => {
                                // One request per connection, served inline:
                                // admin traffic is a human or a scraper, not
                                // a flood.
                                let _ = serve_one(conn, &handles, &series);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(ACCEPT_IDLE);
                            }
                            Err(_) => break,
                        }
                    }
                })?,
        );

        Ok(AdminServer {
            addr,
            stop,
            threads,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server and sampler threads and waits for them.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn sample_at(sampler: &Mutex<Sampler>, registry: &MetricsRegistry, at_ns: u64) {
    let snap = registry.snapshot();
    sampler
        .lock()
        .expect("sampler lock poisoned")
        .sample(at_ns, snap);
}

/// Reads one HTTP request off `conn` and writes the matching response.
fn serve_one(
    conn: TcpStream,
    handles: &AdminHandles,
    series: &Mutex<Sampler>,
) -> std::io::Result<()> {
    conn.set_read_timeout(Some(Duration::from_secs(2)))?;
    conn.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(conn);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the header block so well-behaved clients see a clean close.
    let mut header = String::new();
    while reader.read_line(&mut header)? > 0 {
        if header == "\r\n" || header == "\n" {
            break;
        }
        header.clear();
    }

    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    // Ignore any query string: endpoints take no parameters.
    let route = path.split('?').next().unwrap_or("");

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match route {
            "/metrics" => (
                "200 OK",
                // The content type a Prometheus scraper expects from the
                // 0.0.4 text format.
                "text/plain; version=0.0.4; charset=utf-8",
                render_prometheus(&handles.registry.snapshot()),
            ),
            "/flows" => (
                "200 OK",
                "text/plain; charset=utf-8",
                handles.scoreboard.snapshot(FLOWS_TOP_K).render(),
            ),
            "/healthz" => healthz(&handles.registry),
            "/timeseries" => (
                "200 OK",
                "text/plain; charset=utf-8",
                series
                    .lock()
                    .expect("sampler lock poisoned")
                    .series()
                    .render(),
            ),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found (try /metrics, /flows, /healthz, /timeseries)\n".to_string(),
            ),
        }
    };

    let mut conn = reader.into_inner();
    write!(
        conn,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    conn.flush()
}

/// `/healthz`: liveness plus session health. The protocols publish the
/// supervisor's state as the `supervisor.state` gauge (0 = Connecting,
/// 1 = Active, 2 = Degraded); degraded means the sidecar has fallen back
/// to baseline behaviour, which a load balancer should see as unhealthy.
fn healthz(registry: &MetricsRegistry) -> (&'static str, &'static str, String) {
    let snap = registry.snapshot();
    let state = snap
        .gauges
        .iter()
        .find(|(name, _)| name == "supervisor.state")
        .map(|(_, v)| *v);
    let ct = "text/plain; charset=utf-8";
    match state {
        Some(s) if s >= 2.0 => ("503 Service Unavailable", ct, "degraded\n".to_string()),
        Some(s) if s >= 1.0 => ("200 OK", ct, "ok active\n".to_string()),
        Some(_) => ("200 OK", ct, "ok connecting\n".to_string()),
        // No supervised session yet (e.g. receiver-side proxy): the
        // process itself is up.
        None => ("200 OK", ct, "ok\n".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidecar_obs::{parse_prometheus, HealthDim, ScoreboardSnapshot, TimeSeries};
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut conn = TcpStream::connect(addr).expect("connect admin");
        write!(conn, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut raw = String::new();
        conn.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
        (head.to_string(), body.to_string())
    }

    fn test_handles() -> AdminHandles {
        AdminHandles {
            registry: MetricsRegistry::default(),
            scoreboard: FlowScoreboard::default(),
        }
    }

    #[test]
    fn serves_metrics_flows_healthz() {
        let handles = test_handles();
        handles.registry.add("live.test.packets", 42);
        handles.registry.gauge_set("live.test.depth", 1.5);
        handles.scoreboard.record_n(7, HealthDim::ProxyRetx, 3);
        let server = AdminServer::spawn("127.0.0.1:0", handles.clone(), None).unwrap();
        let addr = server.local_addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let parsed = parse_prometheus(&body).expect("scrape parses");
        assert_eq!(parsed.counter("live_test_packets"), 42);

        let (head, body) = get(addr, "/flows");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let snap = ScoreboardSnapshot::parse(&body).expect("scoreboard parses");
        assert_eq!(snap.rows.len(), 1);
        assert_eq!((snap.rows[0].flow, snap.rows[0].retx), (7, 3));

        // No supervisor gauge published: alive.
        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ok\n");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        server.shutdown();
    }

    #[test]
    fn healthz_follows_supervisor_state() {
        let handles = test_handles();
        let server = AdminServer::spawn("127.0.0.1:0", handles.clone(), None).unwrap();
        let addr = server.local_addr();
        handles.registry.gauge_set("supervisor.state", 1.0);
        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ok active\n");
        handles.registry.gauge_set("supervisor.state", 2.0);
        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 503"), "{head}");
        assert_eq!(body, "degraded\n");
        server.shutdown();
    }

    #[test]
    fn sampler_thread_populates_timeseries() {
        let handles = test_handles();
        let server = AdminServer::spawn(
            "127.0.0.1:0",
            handles.clone(),
            Some(Duration::from_millis(20)),
        )
        .unwrap();
        let addr = server.local_addr();
        // Generate counter traffic across several windows.
        for _ in 0..10 {
            handles.registry.add("live.test.ticks", 5);
            std::thread::sleep(Duration::from_millis(10));
        }
        let (head, body) = get(addr, "/timeseries");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let series = TimeSeries::parse(&body).expect("timeseries parses");
        assert!(!series.is_empty(), "sampler produced points");
        let total: f64 = series
            .points()
            .flat_map(|p| p.rates.iter())
            .filter(|(n, _)| n == "live.test.ticks")
            .map(|(_, r)| r)
            .sum();
        assert!(total > 0.0, "tick rate visible in some window");
        server.shutdown();
    }
}
