//! UDP wire codec for [`Packet`].
//!
//! The simulator moves `Packet` values by ownership; the live datapath has
//! to move them through real datagrams. One datagram carries exactly one
//! packet. The encoding is explicit little-endian with no
//! self-describing framing — a fixed header, then a payload whose shape is
//! picked by the payload tag:
//!
//! ```text
//! offset  size  field
//!      0     2  magic 0x5C1D
//!      2     1  version (1)
//!      3     1  kind    (0 data, 1 ack, 2 sidecar)
//!      4     1  ptag    (0 none, 1 data, 2 ack, 3 sidecar)
//!      5     4  flow
//!      9     4  size    (simulated on-the-wire bytes, *not* datagram len)
//!     13     8  id
//!     21     8  seq
//!     29     8  sent_at (ns on the sender's driver clock)
//!     37     …  payload (by ptag)
//! ```
//!
//! Payloads: `data` is a `u64` unit; `ack` is `largest u64, immediate u8,
//! count u16, count × (start u64, end u64)`; `sidecar` is `proto u8,
//! len u32, len bytes`.
//!
//! Decoding is *total*: any byte string returns `Ok` or a typed
//! [`WireError`], never panics and never over-allocates — the ACK range
//! count and sidecar body length are validated against the bytes actually
//! present before any allocation sized by them (the same class of bug as
//! the `messages.rs` truncation fix, guarded here by construction). The
//! fuzz test below feeds arbitrary and truncated images through `decode`.

use sidecar_netsim::packet::{AckInfo, FlowId, Packet, PacketKind, Payload};
use sidecar_netsim::time::SimTime;

/// First two bytes of every datagram.
pub const MAGIC: u16 = 0x5C1D;
/// Codec version byte.
pub const VERSION: u8 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 37;
/// Largest datagram `encode` will produce / `decode` will accept. Fits
/// comfortably in one unfragmented loopback datagram and bounds every
/// allocation the decoder performs.
pub const MAX_DATAGRAM: usize = 65_507;

/// Why a datagram failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Shorter than the fixed header, or the payload claims more bytes than
    /// the datagram holds.
    Truncated,
    /// First two bytes are not [`MAGIC`].
    BadMagic,
    /// Unknown version byte.
    BadVersion(u8),
    /// Unknown packet-kind byte.
    BadKind(u8),
    /// Unknown payload-tag byte, or a tag that contradicts the kind.
    BadTag(u8),
    /// Trailing garbage after a well-formed packet.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "datagram truncated"),
            WireError::BadMagic => write!(f, "bad magic"),
            WireError::BadVersion(v) => write!(f, "unknown version {v}"),
            WireError::BadKind(k) => write!(f, "unknown kind {k}"),
            WireError::BadTag(t) => write!(f, "unknown payload tag {t}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl std::error::Error for WireError {}

fn kind_byte(kind: PacketKind) -> u8 {
    match kind {
        PacketKind::Data => 0,
        PacketKind::Ack => 1,
        PacketKind::Sidecar => 2,
    }
}

fn ptag_byte(payload: &Payload) -> u8 {
    match payload {
        Payload::None => 0,
        Payload::Data { .. } => 1,
        Payload::Ack(_) => 2,
        Payload::Sidecar { .. } => 3,
    }
}

/// Encodes `packet` into a fresh datagram image.
pub fn encode(packet: &Packet) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + 32);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(kind_byte(packet.kind));
    out.push(ptag_byte(&packet.payload));
    out.extend_from_slice(&packet.flow.0.to_le_bytes());
    out.extend_from_slice(&packet.size.to_le_bytes());
    out.extend_from_slice(&packet.id.to_le_bytes());
    out.extend_from_slice(&packet.seq.to_le_bytes());
    out.extend_from_slice(&packet.sent_at.as_nanos().to_le_bytes());
    match &packet.payload {
        Payload::None => {}
        Payload::Data { unit } => out.extend_from_slice(&unit.to_le_bytes()),
        Payload::Ack(info) => {
            out.extend_from_slice(&info.largest.to_le_bytes());
            out.push(info.immediate as u8);
            let count = info.ranges.len().min(u16::MAX as usize) as u16;
            out.extend_from_slice(&count.to_le_bytes());
            for &(s, e) in info.ranges.iter().take(count as usize) {
                out.extend_from_slice(&s.to_le_bytes());
                out.extend_from_slice(&e.to_le_bytes());
            }
        }
        Payload::Sidecar { proto, bytes } => {
            out.push(*proto);
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(bytes);
        }
    }
    debug_assert!(out.len() <= MAX_DATAGRAM, "packet exceeds one datagram");
    out
}

/// A bounds-checked little-endian cursor over one datagram.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Decodes one datagram image back into a [`Packet`].
pub fn decode(buf: &[u8]) -> Result<Packet, WireError> {
    if buf.len() > MAX_DATAGRAM {
        return Err(WireError::Truncated);
    }
    let mut r = Reader { buf, pos: 0 };
    if r.u16()? != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let kind = match r.u8()? {
        0 => PacketKind::Data,
        1 => PacketKind::Ack,
        2 => PacketKind::Sidecar,
        other => return Err(WireError::BadKind(other)),
    };
    let ptag = r.u8()?;
    let flow = FlowId(r.u32()?);
    let size = r.u32()?;
    let id = r.u64()?;
    let seq = r.u64()?;
    let sent_at = SimTime::from_nanos(r.u64()?);
    let payload = match ptag {
        0 => Payload::None,
        1 => Payload::Data { unit: r.u64()? },
        2 => {
            let largest = r.u64()?;
            let immediate = r.u8()? != 0;
            let count = r.u16()? as usize;
            // Each range is 16 bytes; refuse counts the datagram cannot
            // hold *before* allocating for them.
            if count.saturating_mul(16) > r.remaining() {
                return Err(WireError::Truncated);
            }
            let mut ranges = Vec::with_capacity(count);
            for _ in 0..count {
                let s = r.u64()?;
                let e = r.u64()?;
                ranges.push((s, e));
            }
            Payload::Ack(AckInfo {
                largest,
                ranges,
                immediate,
            })
        }
        3 => {
            let proto = r.u8()?;
            let len = r.u32()? as usize;
            if len > r.remaining() {
                return Err(WireError::Truncated);
            }
            Payload::Sidecar {
                proto,
                bytes: r.take(len)?.to_vec(),
            }
        }
        other => return Err(WireError::BadTag(other)),
    };
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(Packet {
        flow,
        kind,
        size,
        id,
        seq,
        sent_at,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn samples() -> Vec<Packet> {
        vec![
            Packet::data(
                FlowId(7),
                42,
                0xDEAD_BEEF,
                1500,
                SimTime::from_nanos(123_456),
            ),
            Packet::data_unit(FlowId(0), u64::MAX, 3, u64::MAX, 0, SimTime::ZERO),
            Packet::ack(
                FlowId(9),
                11,
                AckInfo {
                    largest: 100,
                    ranges: vec![(90, 100), (50, 60), (10, 10)],
                    immediate: true,
                },
                64,
                SimTime::from_nanos(5),
            ),
            Packet::ack(FlowId(1), 0, AckInfo::default(), 64, SimTime::ZERO),
            Packet::sidecar(
                FlowId(3),
                2,
                vec![1, 2, 3, 4, 5],
                82,
                SimTime::from_nanos(7),
            ),
            Packet::sidecar(FlowId(3), 0, Vec::new(), 40, SimTime::ZERO),
            Packet {
                flow: FlowId(4),
                kind: PacketKind::Data,
                size: 1500,
                id: 1,
                seq: 2,
                sent_at: SimTime::from_nanos(3),
                payload: Payload::None,
            },
        ]
    }

    #[test]
    fn roundtrips_every_packet_shape() {
        for pkt in samples() {
            let wire = encode(&pkt);
            let back = decode(&wire).unwrap();
            assert_eq!(back, pkt);
        }
    }

    #[test]
    fn rejects_bad_magic_version_kind_tag() {
        let wire = encode(&samples()[0]);
        let mut bad = wire.clone();
        bad[0] ^= 0xFF;
        assert_eq!(decode(&bad), Err(WireError::BadMagic));
        let mut bad = wire.clone();
        bad[2] = 9;
        assert_eq!(decode(&bad), Err(WireError::BadVersion(9)));
        let mut bad = wire.clone();
        bad[3] = 7;
        assert_eq!(decode(&bad), Err(WireError::BadKind(7)));
        let mut bad = wire.clone();
        bad[4] = 200;
        assert_eq!(decode(&bad), Err(WireError::BadTag(200)));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut wire = encode(&samples()[0]);
        wire.push(0);
        assert_eq!(decode(&wire), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn forged_ack_range_count_cannot_force_allocation() {
        // An ACK claiming 65535 ranges in a 60-byte datagram must be
        // refused by arithmetic, not by trying to read (or reserve) them.
        let pkt = Packet::ack(FlowId(1), 2, AckInfo::default(), 64, SimTime::ZERO);
        let mut wire = encode(&pkt);
        let count_off = HEADER_LEN + 8 + 1;
        wire[count_off..count_off + 2].copy_from_slice(&u16::MAX.to_le_bytes());
        assert_eq!(decode(&wire), Err(WireError::Truncated));
    }

    proptest! {
        /// Decode is total: arbitrary images never panic, and every prefix
        /// truncation of a valid image decodes or errors cleanly.
        #[test]
        fn decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode(&bytes);
        }

        #[test]
        fn truncations_of_valid_images_are_rejected_cleanly(idx in 0usize..7, cut in 0usize..300) {
            let pkt = &samples()[idx];
            let wire = encode(pkt);
            let cut = cut.min(wire.len());
            let image = &wire[..cut];
            if let Ok(back) = decode(image) { prop_assert_eq!(&back, pkt) }
        }
    }
}
