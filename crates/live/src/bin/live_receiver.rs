//! Live receiving end host: a paranoid-transport [`ReceiverNode`] on a
//! real UDP socket. Pairs with `live-sender`.
//!
//! ```text
//! live-receiver --bind 127.0.0.1:7002 --peer 127.0.0.1:7001 --expect 1000
//! ```
//!
//! Runs until `--expect` unique data units arrived (then lingers briefly so
//! final ACKs drain) or `--max-secs` elapses.

use sidecar_live::cli::Args;
use sidecar_live::LiveDriver;
use sidecar_netsim::node::IfaceId;
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_netsim::transport::{ReceiverConfig, ReceiverNode};
use sidecar_netsim::Driver;
use std::net::UdpSocket;

const USAGE: &str = "--bind ADDR --peer ADDR [--expect N] [--ack-every N] \
                     [--max-ack-delay-ms N] [--seed N] [--max-secs S]";

fn main() {
    let args = Args::parse(USAGE);
    let bind = args.require("bind").to_string();
    let peer = args.require("peer").to_string();
    let expect: u64 = args.parse_or("expect", 0);
    let ack_every: u32 = args.parse_or("ack-every", 8);
    let max_ack_delay_ms: u64 = args.parse_or("max-ack-delay-ms", 20);
    let seed: u64 = args.parse_or("seed", 2);
    let max_secs: f64 = args.parse_or("max-secs", 60.0);
    args.finish();

    let socket = UdpSocket::bind(&bind).unwrap_or_else(|e| {
        eprintln!("bind {bind}: {e}");
        std::process::exit(1);
    });
    let peer = peer.parse().unwrap_or_else(|e| {
        eprintln!("bad --peer {peer}: {e}");
        std::process::exit(1);
    });

    let mut driver = LiveDriver::new(seed);
    let receiver = driver.install(Box::new(ReceiverNode::new(ReceiverConfig {
        ack_every,
        max_ack_delay: SimDuration::from_millis(max_ack_delay_ms),
        ..ReceiverConfig::default()
    })));
    driver
        .attach_socket(receiver, IfaceId(0), socket, peer)
        .expect("attach socket");

    let slice = SimDuration::from_millis(50);
    let cap = SimTime::ZERO + SimDuration::from_secs_f64(max_secs);
    let mut deadline = SimTime::ZERO;
    loop {
        deadline = driver.now().max(deadline) + slice;
        driver.run_until(deadline.min(cap));
        let node: &ReceiverNode = (&driver as &dyn Driver).node_as(receiver);
        if expect > 0 && node.stats().unique_units >= expect {
            // Linger so the final ACK batch drains before we exit.
            let linger = driver.now() + SimDuration::from_millis(100);
            driver.run_until(linger);
            break;
        }
        if driver.now() >= cap {
            break;
        }
    }

    let node: &ReceiverNode = (&driver as &dyn Driver).node_as(receiver);
    let stats = node.stats();
    println!("unique_units {}", stats.unique_units);
    println!("acks_sent {}", stats.acks_sent);
    println!("driver_packets_in {}", driver.stats().packets_in);
    let done = expect == 0 || stats.unique_units >= expect;
    std::process::exit(if done { 0 } else { 1 });
}
