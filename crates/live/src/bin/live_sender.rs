//! Live sending end host: a paranoid-transport [`SenderNode`] on a real
//! UDP socket. Pairs with `live-receiver` (directly, or through one or two
//! `live-proxy` instances bracketing a lossy segment).
//!
//! ```text
//! live-sender --bind 127.0.0.1:7001 --peer 127.0.0.1:7002 --packets 1000
//! ```

use sidecar_live::cli::Args;
use sidecar_live::LiveDriver;
use sidecar_netsim::node::IfaceId;
use sidecar_netsim::packet::FlowId;
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_netsim::transport::{CcAlgorithm, SenderConfig, SenderNode};
use sidecar_netsim::Driver;
use std::net::UdpSocket;

const USAGE: &str = "--bind ADDR --peer ADDR [--packets N] [--flow N] [--seed N] \
                     [--cc newreno|cubic|bbr|fixed] [--max-secs S]";

fn main() {
    let args = Args::parse(USAGE);
    let bind = args.require("bind").to_string();
    let peer = args.require("peer").to_string();
    let packets: u64 = args.parse_or("packets", 1_000);
    let flow: u32 = args.parse_or("flow", 1);
    let seed: u64 = args.parse_or("seed", 1);
    let max_secs: f64 = args.parse_or("max-secs", 60.0);
    let cc = match args.get("cc").unwrap_or("newreno") {
        "newreno" => CcAlgorithm::NewReno,
        "cubic" => CcAlgorithm::Cubic,
        "bbr" => CcAlgorithm::Bbr,
        "fixed" => CcAlgorithm::Fixed(64),
        other => {
            eprintln!("unknown --cc {other:?}");
            std::process::exit(2);
        }
    };
    args.finish();

    let socket = UdpSocket::bind(&bind).unwrap_or_else(|e| {
        eprintln!("bind {bind}: {e}");
        std::process::exit(1);
    });
    let peer = peer.parse().unwrap_or_else(|e| {
        eprintln!("bad --peer {peer}: {e}");
        std::process::exit(1);
    });

    let mut driver = LiveDriver::new(seed);
    let sender = driver.install(Box::new(SenderNode::new(SenderConfig {
        flow: FlowId(flow),
        total_packets: Some(packets),
        cc,
        id_seed: seed ^ 0xA5A5,
        peer_max_ack_delay: SimDuration::from_millis(60),
        ..SenderConfig::default()
    })));
    driver
        .attach_socket(sender, IfaceId(0), socket, peer)
        .expect("attach socket");

    let slice = SimDuration::from_millis(50);
    let cap = SimTime::ZERO + SimDuration::from_secs_f64(max_secs);
    let mut deadline = SimTime::ZERO;
    let complete = loop {
        deadline = driver.now().max(deadline) + slice;
        driver.run_until(deadline.min(cap));
        let node: &SenderNode = (&driver as &dyn Driver).node_as(sender);
        if node.core().is_complete() {
            break true;
        }
        if driver.now() >= cap {
            break false;
        }
    };

    let node: &SenderNode = (&driver as &dyn Driver).node_as(sender);
    let stats = node.stats();
    let dstats = driver.stats();
    println!("complete {complete}");
    println!("sent_packets {}", stats.sent_packets);
    println!("delivered_packets {}", stats.delivered_packets);
    println!("retransmissions {}", stats.retransmissions);
    println!(
        "completed_at_ms {}",
        stats
            .completed_at
            .map(|t| (t.as_nanos() / 1_000_000).to_string())
            .unwrap_or_else(|| "-".into())
    );
    println!("driver_packets_out {}", dstats.packets_out);
    println!("driver_packets_in {}", dstats.packets_in);
    std::process::exit(if complete { 0 } else { 1 });
}
