//! Live sidecar proxy: hosts the §2.3 in-network retransmission state
//! machines — the exact structs the simulator runs, with their negotiation
//! handshake, supervision, and (optionally) authenticated control channel
//! — on a pair of real UDP sockets.
//!
//! A full chain needs two instances bracketing the lossy segment:
//!
//! ```text
//! live-proxy --role sender-side \
//!     --bind-host 127.0.0.1:7101 --peer-host 127.0.0.1:7001 \
//!     --bind-sub  127.0.0.1:7102 --peer-sub  127.0.0.1:7201
//! live-proxy --role receiver-side \
//!     --bind-sub  127.0.0.1:7201 --peer-sub  127.0.0.1:7102 \
//!     --bind-down 127.0.0.1:7202 --peer-down 127.0.0.1:7002
//! ```
//!
//! `--auth-secret` (same value on both instances, distinct `--nonce`)
//! seals the control channel; `--drop-every N` adds deterministic loss on
//! the sender-side proxy's subpath egress for demos without a real lossy
//! link.
//!
//! `--admin 127.0.0.1:9090` starts the live introspection endpoint
//! (`/metrics`, `/flows`, `/healthz`, `/timeseries`; see
//! [`sidecar_live::admin`]); `--sample-ms N` adds a wall-clock sampler
//! thread feeding `/timeseries` at that cadence (default 1000 when
//! `--admin` is set).

use sidecar_live::admin::{AdminHandles, AdminServer};
use sidecar_live::cli::Args;
use sidecar_live::LiveDriver;
use sidecar_netsim::node::IfaceId;
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_netsim::Driver;
use sidecar_proto::config::{AuthConfig, QuackFrequency, SidecarConfig, SupervisionConfig};
use sidecar_proto::protocols::retx::{ReceiverSideProxy, SenderSideProxy};
use std::net::{SocketAddr, UdpSocket};

const USAGE: &str = "--role sender-side|receiver-side \
                     [--bind-host A --peer-host A] [--bind-sub A --peer-sub A] \
                     [--bind-down A --peer-down A] [--threshold N] [--quack-ms N] \
                     [--subpath-rtt-ms N] [--auth-secret N --nonce N] \
                     [--drop-every N] [--seed N] [--max-secs S] \
                     [--admin ADDR] [--sample-ms N]";

fn bound(args: &Args, bind_key: &str, peer_key: &str) -> (UdpSocket, SocketAddr) {
    let bind = args.require(bind_key).to_string();
    let peer = args.require(peer_key).to_string();
    let socket = UdpSocket::bind(&bind).unwrap_or_else(|e| {
        eprintln!("bind {bind}: {e}");
        std::process::exit(1);
    });
    let peer = peer.parse().unwrap_or_else(|e| {
        eprintln!("bad --{peer_key} {peer}: {e}");
        std::process::exit(1);
    });
    (socket, peer)
}

fn main() {
    let args = Args::parse(USAGE);
    let role = args.require("role").to_string();
    let threshold: usize = args.parse_or("threshold", 64);
    let quack_ms: u64 = args.parse_or("quack-ms", 5);
    let subpath_rtt_ms: u64 = args.parse_or("subpath-rtt-ms", 10);
    let seed: u64 = args.parse_or("seed", 3);
    let max_secs: f64 = args.parse_or("max-secs", 3600.0);
    let drop_every: u64 = args.parse_or("drop-every", 0);
    let auth_secret: Option<u64> = args.get("auth-secret").map(|raw| {
        raw.parse().unwrap_or_else(|_| {
            eprintln!("bad --auth-secret {raw:?}");
            std::process::exit(2);
        })
    });
    let nonce: u64 = args.parse_or("nonce", 1);
    let auth = auth_secret.map(|secret| AuthConfig::from_secret(secret, 1).with_nonce(nonce));
    let admin_addr = args.get("admin").map(str::to_string);
    let sample_ms: u64 = args.parse_or("sample-ms", 1000);

    let cfg = SidecarConfig {
        threshold,
        frequency: QuackFrequency::Adaptive(SimDuration::from_millis(quack_ms)),
        reorder_grace: SimDuration::from_millis(quack_ms.max(2) / 2),
        ..SidecarConfig::paper_default()
    };

    let mut driver = LiveDriver::new(seed);
    // The admin endpoint reads Clone-shared observability handles, so it
    // serves live numbers for the whole run without touching the datapath.
    let _admin = admin_addr.map(|addr| {
        let handles = AdminHandles {
            registry: driver.obs().metrics.clone(),
            scoreboard: driver.obs().scoreboard.clone(),
        };
        let interval = (sample_ms > 0).then(|| std::time::Duration::from_millis(sample_ms));
        let server = AdminServer::spawn(addr.as_str(), handles, interval).unwrap_or_else(|e| {
            eprintln!("admin bind {addr}: {e}");
            std::process::exit(1);
        });
        eprintln!("admin listening on http://{}", server.local_addr());
        server
    });
    match role.as_str() {
        // Interfaces follow the simulator's convention: the sender-side
        // proxy speaks to the server on IfaceId(0) and the subpath on
        // IfaceId(1); the receiver-side proxy hears the subpath on
        // IfaceId(0) and the client on IfaceId(1).
        "sender-side" => {
            let (host_sock, host_peer) = bound(&args, "bind-host", "peer-host");
            let (sub_sock, sub_peer) = bound(&args, "bind-sub", "peer-sub");
            args.finish();
            let mut node = SenderSideProxy::new(
                cfg,
                SimDuration::from_millis(subpath_rtt_ms),
                4_096,
                SupervisionConfig::default(),
            );
            if let Some(auth) = auth {
                node = node.with_auth(auth);
            }
            let id = driver.install(Box::new(node));
            driver
                .attach_socket(id, IfaceId(0), host_sock, host_peer)
                .expect("attach");
            driver
                .attach_socket(id, IfaceId(1), sub_sock, sub_peer)
                .expect("attach");
            if drop_every > 0 {
                driver.set_egress_loss(id, IfaceId(1), drop_every);
            }
            driver.run_until(SimTime::ZERO + SimDuration::from_secs_f64(max_secs));
            let node: &SenderSideProxy = (&driver as &dyn Driver).node_as(id);
            println!("retransmitted {}", node.retransmitted);
            println!("control_sent {}", node.control_sent);
            println!("degradations {}", node.degradations());
        }
        "receiver-side" => {
            let (sub_sock, sub_peer) = bound(&args, "bind-sub", "peer-sub");
            let (down_sock, down_peer) = bound(&args, "bind-down", "peer-down");
            args.finish();
            let mut node = ReceiverSideProxy::new(cfg);
            if let Some(auth) = auth {
                node = node.with_auth(auth);
            }
            let id = driver.install(Box::new(node));
            driver
                .attach_socket(id, IfaceId(0), sub_sock, sub_peer)
                .expect("attach");
            driver
                .attach_socket(id, IfaceId(1), down_sock, down_peer)
                .expect("attach");
            driver.run_until(SimTime::ZERO + SimDuration::from_secs_f64(max_secs));
            let node: &ReceiverSideProxy = (&driver as &dyn Driver).node_as(id);
            println!("quacks_sent {}", node.quacks_sent);
            println!("quack_bytes {}", node.quack_bytes);
        }
        other => {
            eprintln!("unknown --role {other:?} (want sender-side or receiver-side)");
            std::process::exit(2);
        }
    }
    let stats = driver.stats();
    println!("driver_packets_in {}", stats.packets_in);
    println!("driver_packets_out {}", stats.packets_out);
    println!("decode_errors {}", stats.decode_errors);
}
