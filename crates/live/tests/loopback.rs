//! Loopback certification suite: the §2.3 in-network retransmission chain
//! — unmodified simulator state machines — running over real UDP sockets,
//! with the run certified by the same flight-recorder lifecycle checks the
//! simulator uses.
//!
//! Topology (three loopback socket pairs):
//!
//! ```text
//! SenderNode ── pair 1 ── SenderSideProxy ── pair 2 ── ReceiverSideProxy ── pair 3 ── ReceiverNode
//!   (server)                (buffers+retx)   lossy(*)     (quACK emitter)               (client)
//! ```
//!
//! (*) loss is the driver's deterministic every-Nth egress policy on the
//! sender-side proxy's subpath port, so each run loses real packets that
//! only in-network (or end-to-end) recovery can repair.

use sidecar_live::{loopback_pair, LiveDriver};
use sidecar_netsim::node::{IfaceId, NodeId};
use sidecar_netsim::packet::FlowId;
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_netsim::transport::{
    CcAlgorithm, ReceiverConfig, ReceiverNode, SenderConfig, SenderNode,
};
use sidecar_netsim::Driver;
use sidecar_obs::Lifecycle;
use sidecar_proto::config::{AuthConfig, QuackFrequency, SidecarConfig, SupervisionConfig};
use sidecar_proto::protocols::retx::{ReceiverSideProxy, SenderSideProxy};

const TOTAL_PACKETS: u64 = 300;
/// Every 8th data packet on the subpath is dropped: 37 losses per run,
/// comfortably below the quACK threshold below even if they all land in
/// one emission window.
const DROP_EVERY: u64 = 8;

struct RunOutcome {
    delivered_units: u64,
    delivered_bytes: u64,
    proxy_retransmissions: u64,
    certified: bool,
    certify_err: Option<String>,
    timelines_with_proxy_retx: usize,
    decode_errors: u64,
}

/// Builds the four-node chain on one driver, runs it to completion (or a
/// 20 s cap), and certifies the flight recorder.
fn run_retx_chain(seed: u64, auth: Option<AuthConfig>) -> RunOutcome {
    let sidecar_cfg = SidecarConfig {
        threshold: 64,
        frequency: QuackFrequency::Adaptive(SimDuration::from_millis(3)),
        reorder_grace: SimDuration::from_millis(2),
        ..SidecarConfig::paper_default()
    };
    let subpath_rtt = SimDuration::from_millis(4);

    let mut driver = LiveDriver::new(seed);
    driver.set_trace_capacity(1 << 17);

    let server = driver.install(Box::new(SenderNode::new(SenderConfig {
        flow: FlowId(1),
        total_packets: Some(TOTAL_PACKETS),
        cc: CcAlgorithm::NewReno,
        id_seed: seed ^ 0xA5A5,
        peer_max_ack_delay: SimDuration::from_millis(60),
        ..SenderConfig::default()
    })));
    let mut proxy_a_node = SenderSideProxy::new(
        sidecar_cfg,
        subpath_rtt,
        4_096,
        SupervisionConfig::default(),
    );
    let mut proxy_b_node = ReceiverSideProxy::new(sidecar_cfg);
    if let Some(auth) = auth {
        proxy_a_node = proxy_a_node.with_auth(auth.with_nonce(1));
        proxy_b_node = proxy_b_node.with_auth(auth.with_nonce(2));
    }
    let proxy_a = driver.install(Box::new(proxy_a_node));
    let proxy_b = driver.install(Box::new(proxy_b_node));
    let client = driver.install(Box::new(ReceiverNode::new(ReceiverConfig {
        ack_every: 8,
        max_ack_delay: SimDuration::from_millis(20),
        immediate_on_gap: false,
        ..ReceiverConfig::default()
    })));

    // Three bidirectional loopback "links".
    attach_link(&mut driver, server, IfaceId(0), proxy_a, IfaceId(0));
    attach_link(&mut driver, proxy_a, IfaceId(1), proxy_b, IfaceId(0));
    attach_link(&mut driver, proxy_b, IfaceId(1), client, IfaceId(0));
    driver.set_egress_loss(proxy_a, IfaceId(1), DROP_EVERY);

    // Run in slices until the transfer completes (or the cap trips: a
    // stalled flow should fail the assertions loudly, not hang CI).
    let slice = SimDuration::from_millis(50);
    let mut deadline = SimTime::ZERO;
    for _ in 0..400 {
        deadline = driver.now().max(deadline) + slice;
        driver.run_until(deadline);
        let sender: &SenderNode = (&driver as &dyn Driver).node_as(server);
        if sender.core().is_complete() {
            break;
        }
    }

    let d = &driver as &dyn Driver;
    let sender: &SenderNode = d.node_as(server);
    let mtu = u64::from(sender.core().config().mtu);
    let receiver: &ReceiverNode = d.node_as(client);
    let proxy: &SenderSideProxy = d.node_as(proxy_a);
    let lifecycle = Lifecycle::from_trace(&driver.obs().trace);
    let certify = lifecycle.check_causal();
    RunOutcome {
        delivered_units: receiver.stats().unique_units,
        delivered_bytes: receiver.stats().unique_units * mtu,
        proxy_retransmissions: proxy.retransmitted,
        certified: certify.is_ok(),
        certify_err: certify.err(),
        timelines_with_proxy_retx: lifecycle
            .data_timelines()
            .filter(|t| t.proxy_retransmitted())
            .count(),
        decode_errors: driver.stats().decode_errors,
    }
}

/// Binds a loopback socket pair and attaches one end to each node.
fn attach_link(driver: &mut LiveDriver, a: NodeId, a_iface: IfaceId, b: NodeId, b_iface: IfaceId) {
    let (sock_a, sock_b) = loopback_pair().expect("bind loopback pair");
    let a_peer = sock_b.local_addr().expect("local addr");
    let b_peer = sock_a.local_addr().expect("local addr");
    driver
        .attach_socket(a, a_iface, sock_a, a_peer)
        .expect("attach");
    driver
        .attach_socket(b, b_iface, sock_b, b_peer)
        .expect("attach");
}

fn assert_outcome(out: &RunOutcome, label: &str) {
    assert!(
        out.certified,
        "{label}: causal certification failed: {:?}",
        out.certify_err
    );
    assert_eq!(
        out.delivered_units, TOTAL_PACKETS,
        "{label}: client missing data units"
    );
    assert!(
        out.proxy_retransmissions > 0,
        "{label}: the sidecar never repaired a subpath loss"
    );
    assert!(
        out.timelines_with_proxy_retx > 0,
        "{label}: no packet timeline shows an in-network retransmission"
    );
    assert_eq!(
        out.decode_errors, 0,
        "{label}: wire codec rejected datagrams"
    );
}

#[test]
fn lossy_retx_chain_completes_and_certifies_over_loopback() {
    let out = run_retx_chain(11, None);
    assert_outcome(&out, "plain");
}

#[test]
fn lossy_retx_chain_certifies_with_authenticated_control_channel() {
    let out = run_retx_chain(13, Some(AuthConfig::from_secret(0x5EC7_0CA7, 1)));
    assert_outcome(&out, "auth");
}

/// The admin endpoint over a *real* transfer: attach an [`AdminServer`] to
/// the chain's driver handles, run the lossy transfer, then scrape
/// `/metrics`, `/flows`, and `/healthz` over real TCP and assert each body
/// is well-formed (parses back with the crate's own strict parsers) and
/// reflects the run — quACKs counted, the transfer flow ranked on the
/// scoreboard with retransmissions.
#[test]
fn admin_endpoint_serves_a_live_run() {
    use sidecar_live::admin::{AdminHandles, AdminServer};
    use std::io::{Read, Write};

    let sidecar_cfg = SidecarConfig {
        threshold: 64,
        frequency: QuackFrequency::Adaptive(SimDuration::from_millis(3)),
        reorder_grace: SimDuration::from_millis(2),
        ..SidecarConfig::paper_default()
    };
    let mut driver = LiveDriver::new(21);
    driver.set_trace_capacity(1 << 17);
    let server = driver.install(Box::new(SenderNode::new(SenderConfig {
        flow: FlowId(1),
        total_packets: Some(TOTAL_PACKETS),
        cc: CcAlgorithm::NewReno,
        id_seed: 21 ^ 0xA5A5,
        peer_max_ack_delay: SimDuration::from_millis(60),
        ..SenderConfig::default()
    })));
    let proxy_a = driver.install(Box::new(SenderSideProxy::new(
        sidecar_cfg,
        SimDuration::from_millis(4),
        4_096,
        SupervisionConfig::default(),
    )));
    let proxy_b = driver.install(Box::new(ReceiverSideProxy::new(sidecar_cfg)));
    let client = driver.install(Box::new(ReceiverNode::new(ReceiverConfig {
        ack_every: 8,
        max_ack_delay: SimDuration::from_millis(20),
        immediate_on_gap: false,
        ..ReceiverConfig::default()
    })));
    attach_link(&mut driver, server, IfaceId(0), proxy_a, IfaceId(0));
    attach_link(&mut driver, proxy_a, IfaceId(1), proxy_b, IfaceId(0));
    attach_link(&mut driver, proxy_b, IfaceId(1), client, IfaceId(0));
    driver.set_egress_loss(proxy_a, IfaceId(1), DROP_EVERY);

    let admin = AdminServer::spawn(
        "127.0.0.1:0",
        AdminHandles {
            registry: driver.obs().metrics.clone(),
            scoreboard: driver.obs().scoreboard.clone(),
        },
        Some(std::time::Duration::from_millis(50)),
    )
    .expect("bind admin");
    let addr = admin.local_addr();

    let slice = SimDuration::from_millis(50);
    let mut deadline = SimTime::ZERO;
    for _ in 0..400 {
        deadline = driver.now().max(deadline) + slice;
        driver.run_until(deadline);
        let sender: &SenderNode = (&driver as &dyn Driver).node_as(server);
        if sender.core().is_complete() {
            break;
        }
    }
    let sender: &SenderNode = (&driver as &dyn Driver).node_as(server);
    assert!(sender.core().is_complete(), "transfer stalled");

    let get = |path: &str| -> (String, String) {
        let mut conn = std::net::TcpStream::connect(addr).expect("connect admin");
        write!(conn, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut raw = String::new();
        conn.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
        (head.to_string(), body.to_string())
    };

    let (head, body) = get("/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let snap = sidecar_obs::parse_prometheus(&body).expect("exposition is well-formed");
    assert!(snap.counter("sidecar_sent_quack") > 0, "quacks scraped");
    assert!(snap.counter("quack_decoded") > 0, "decodes scraped");

    let (head, body) = get("/flows");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let flows = sidecar_obs::ScoreboardSnapshot::parse(&body).expect("scoreboard is well-formed");
    let row = flows
        .rows
        .iter()
        .find(|r| r.flow == 1)
        .expect("transfer flow is ranked");
    assert!(row.retx > 0, "proxy retx attributed to the flow: {row:?}");

    let (head, body) = get("/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}: {body}");
    assert!(body.starts_with("ok"), "{body:?}");

    admin.shutdown();
}

/// Satellite: wall-clock jitter must not leak into the *certified facts*.
/// Three runs of the same configuration differ in timing (real sockets)
/// but must agree on certification, delivered bytes, and that in-network
/// recovery happened.
#[test]
fn certification_and_delivery_are_stable_across_runs() {
    let runs: Vec<RunOutcome> = (0..3).map(|i| run_retx_chain(100 + i, None)).collect();
    for (i, out) in runs.iter().enumerate() {
        assert_outcome(out, &format!("run {i}"));
    }
    let bytes: Vec<u64> = runs.iter().map(|r| r.delivered_bytes).collect();
    assert!(
        bytes.windows(2).all(|w| w[0] == w[1]),
        "delivered byte counts diverged across runs: {bytes:?}"
    );
}
