//! A vendored, offline subset of the [criterion] API.
//!
//! The workspace's benches were written against criterion, but this
//! repository must build in sandboxes with no crates-io access. This crate
//! reimplements the slice of the criterion surface those benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], [`black_box`], `criterion_group!`, `criterion_main!` —
//! as a plain wall-clock timer with median-of-samples reporting. The
//! workspace `Cargo.toml` renames it to `criterion` (`criterion = { path =
//! …, package = "microbench" }`), so bench code keeps its `use criterion::…`
//! imports untouched.
//!
//! Differences from real criterion, deliberately accepted: no warm-up
//! curve fitting, no outlier analysis, no HTML reports, and a small
//! per-benchmark time budget so `cargo test`/CI smoke runs stay fast.
//!
//! [criterion]: https://docs.rs/criterion

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark measurement budget. Real criterion runs seconds per
/// benchmark; this shim exists so benches *build and run* everywhere, so it
/// keeps each benchmark to a few milliseconds of sampling.
const TIME_BUDGET: Duration = Duration::from_millis(20);

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark (builder-style, mirroring
    /// criterion's `Criterion::default().sample_size(n)`).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Units of work per iteration, for derived rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function_name/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("decode", 20)` → `decode/20`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named group of benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: TIME_BUDGET,
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        self.report(&id.to_string(), &bencher.samples);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: TIME_BUDGET,
            sample_size: self.sample_size,
        };
        routine(&mut bencher, input);
        self.report(&id.to_string(), &bencher.samples);
        self
    }

    /// Ends the group (reporting already happened per benchmark).
    pub fn finish(self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                format!(" ({:.1} Melem/s)", n as f64 / median.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                format!(
                    " ({:.1} MiB/s)",
                    n as f64 / median.as_secs_f64() / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: median {median:?} over {} samples{rate}",
            self.name,
            sorted.len()
        );
    }
}

/// Hands the routine to the measurement loop.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting up to the configured sample count within
    /// the time budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One untimed warm-up call.
        black_box(routine());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.budget {
                break;
            }
        }
    }
}

/// Bundles benchmark functions into a named runner, mirroring criterion's
/// two invocation forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(n: u64) -> u64 {
        (1..=n).fold(1u64, |a, b| a.wrapping_mul(b) ^ b)
    }

    fn benches(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(64));
        group.bench_function("fib", |b| b.iter(|| fib(black_box(64))));
        group.bench_with_input(BenchmarkId::new("fib_n", 32), &32u64, |b, &n| {
            b.iter(|| fib(n))
        });
        group.sample_size(5);
        group.finish();
    }

    criterion_group! {
        name = shim_group;
        config = Criterion::default().sample_size(10);
        targets = benches
    }

    #[test]
    fn group_runs_and_reports() {
        shim_group();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(
            BenchmarkId::new("construct", 20).to_string(),
            "construct/20"
        );
    }
}
