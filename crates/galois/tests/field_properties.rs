//! Property-based tests of the field axioms and polynomial identities for
//! every field width the quACK supports.

use proptest::prelude::*;
use sidecar_galois::poly::{deflate_monic, eval_monic, Poly};
use sidecar_galois::{
    field::batch_invert, power_sums_to_coefficients, Field, Fp16, Fp24, Fp32, Fp64, Monty64,
};

/// Generates the field-axiom property suite for one field type.
macro_rules! field_axioms {
    ($modname:ident, $f:ty) => {
        mod $modname {
            use super::*;

            proptest! {
                #[test]
                fn add_commutative(a in any::<u64>(), b in any::<u64>()) {
                    let (a, b) = (<$f>::from_u64(a), <$f>::from_u64(b));
                    prop_assert_eq!(a + b, b + a);
                }

                #[test]
                fn add_associative(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
                    let (a, b, c) = (<$f>::from_u64(a), <$f>::from_u64(b), <$f>::from_u64(c));
                    prop_assert_eq!((a + b) + c, a + (b + c));
                }

                #[test]
                fn mul_commutative(a in any::<u64>(), b in any::<u64>()) {
                    let (a, b) = (<$f>::from_u64(a), <$f>::from_u64(b));
                    prop_assert_eq!(a * b, b * a);
                }

                #[test]
                fn mul_associative(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
                    let (a, b, c) = (<$f>::from_u64(a), <$f>::from_u64(b), <$f>::from_u64(c));
                    prop_assert_eq!((a * b) * c, a * (b * c));
                }

                #[test]
                fn distributive(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
                    let (a, b, c) = (<$f>::from_u64(a), <$f>::from_u64(b), <$f>::from_u64(c));
                    prop_assert_eq!(a * (b + c), a * b + a * c);
                }

                #[test]
                fn sub_is_add_neg(a in any::<u64>(), b in any::<u64>()) {
                    let (a, b) = (<$f>::from_u64(a), <$f>::from_u64(b));
                    prop_assert_eq!(a - b, a + (-b));
                    prop_assert_eq!((a - b) + b, a);
                }

                #[test]
                fn inverse_is_inverse(a in 1u64..u64::MAX) {
                    let a = <$f>::from_u64(a);
                    if !a.is_zero() {
                        prop_assert_eq!(a * a.inv(), <$f>::ONE);
                        prop_assert_eq!(a.inv().inv(), a);
                    }
                }

                #[test]
                fn pow_adds_exponents(a in any::<u64>(), e1 in 0u64..64, e2 in 0u64..64) {
                    let a = <$f>::from_u64(a);
                    prop_assert_eq!(a.pow(e1) * a.pow(e2), a.pow(e1 + e2));
                }

                #[test]
                fn reduction_is_canonical(a in any::<u64>()) {
                    let x = <$f>::from_u64(a);
                    prop_assert!(x.to_u64() < <$f>::MODULUS);
                    prop_assert_eq!(<$f>::from_u64(x.to_u64()), x);
                    prop_assert_eq!(<$f>::from_u64(a % <$f>::MODULUS), x);
                }
            }
        }
    };
}

field_axioms!(fp16_axioms, Fp16);
field_axioms!(fp24_axioms, Fp24);
field_axioms!(fp32_axioms, Fp32);
field_axioms!(fp64_axioms, Fp64);
field_axioms!(monty64_axioms, Monty64);

proptest! {
    /// Montgomery and plain 64-bit fields implement the same field.
    #[test]
    fn monty_matches_fp64(a in any::<u64>(), b in any::<u64>()) {
        let (am, bm) = (Monty64::from_u64(a), Monty64::from_u64(b));
        let (af, bf) = (Fp64::from_u64(a), Fp64::from_u64(b));
        prop_assert_eq!((am + bm).to_u64(), (af + bf).to_u64());
        prop_assert_eq!((am - bm).to_u64(), (af - bf).to_u64());
        prop_assert_eq!((am * bm).to_u64(), (af * bf).to_u64());
    }

    /// The locator polynomial built from Newton's identities has exactly the
    /// multiset's elements as roots.
    #[test]
    fn newton_locator_roots(raw in proptest::collection::vec(any::<u64>(), 0..24)) {
        let roots: Vec<Fp32> = raw.iter().map(|&v| Fp32::from_u64(v)).collect();
        let m = roots.len();
        let sums: Vec<Fp32> = (1..=m as u64)
            .map(|i| roots.iter().map(|x| x.pow(i)).sum())
            .collect();
        let coeffs = power_sums_to_coefficients(&sums);
        let expected = Poly::from_roots(&roots);
        prop_assert_eq!(&coeffs[..], &expected.coeffs()[..m]);
    }

    /// Deflating a root then re-multiplying restores the original locator.
    #[test]
    fn deflate_then_remultiply(raw in proptest::collection::vec(any::<u64>(), 1..16), pick in any::<prop::sample::Index>()) {
        let roots: Vec<Fp32> = raw.iter().map(|&v| Fp32::from_u64(v)).collect();
        let chosen = roots[pick.index(roots.len())];
        let poly = Poly::from_roots(&roots);
        let mut coeffs = poly.coeffs()[..roots.len()].to_vec();
        let rem = deflate_monic(&mut coeffs, chosen);
        prop_assert_eq!(rem, Fp32::ZERO);
        // Multiply the quotient back by (x - chosen) and compare.
        let mut quotient_full = coeffs.clone();
        quotient_full.push(Fp32::ONE);
        let q = Poly::from_coeffs(quotient_full);
        let back = q.mul(&Poly::from_roots(&[chosen]));
        prop_assert_eq!(back, poly);
    }

    /// Horner evaluation of the monic representation agrees with full
    /// polynomial evaluation everywhere, not only at roots.
    #[test]
    fn monic_eval_agrees(raw in proptest::collection::vec(any::<u64>(), 0..12), x in any::<u64>()) {
        let roots: Vec<Fp64> = raw.iter().map(|&v| Fp64::from_u64(v)).collect();
        let poly = Poly::from_roots(&roots);
        let non_leading = &poly.coeffs()[..roots.len()];
        prop_assert_eq!(
            eval_monic(non_leading, Fp64::from_u64(x)),
            poly.eval(Fp64::from_u64(x))
        );
    }

    /// Batch inversion matches element-wise inversion, zeros preserved.
    #[test]
    fn batch_invert_matches(raw in proptest::collection::vec(any::<u64>(), 0..64)) {
        let values: Vec<Fp24> = raw.iter().map(|&v| Fp24::from_u64(v)).collect();
        let mut batch = values.clone();
        batch_invert(&mut batch);
        for (orig, inv) in values.iter().zip(batch) {
            if orig.is_zero() {
                prop_assert_eq!(inv, Fp24::ZERO);
            } else {
                prop_assert_eq!(inv, orig.inv());
            }
        }
    }
}

mod factor_properties {
    use super::*;
    use sidecar_galois::factor::{find_roots, total_root_multiplicity};
    use sidecar_galois::power_sums_to_coefficients;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The Cantor–Zassenhaus root finder recovers every multiset of
        /// roots exactly, multiplicities included, across field widths.
        #[test]
        fn find_roots_recovers_arbitrary_multisets(raw in proptest::collection::vec(any::<u64>(), 0..24)) {
            fn check<F: Field>(raw: &[u64]) {
                let roots: Vec<F> = raw.iter().map(|&v| F::from_u64(v)).collect();
                let sums: Vec<F> = (1..=roots.len() as u64)
                    .map(|i| roots.iter().map(|x| x.pow(i)).sum())
                    .collect();
                let coeffs = power_sums_to_coefficients(&sums);
                let found = find_roots(&coeffs);
                assert_eq!(total_root_multiplicity(&found), roots.len());
                let mut expected: std::collections::BTreeMap<u64, usize> = Default::default();
                for r in &roots {
                    *expected.entry(r.to_u64()).or_default() += 1;
                }
                let got: std::collections::BTreeMap<u64, usize> =
                    found.into_iter().map(|(r, m)| (r.to_u64(), m)).collect();
                assert_eq!(got, expected);
            }
            check::<Fp16>(&raw);
            check::<Fp32>(&raw);
            check::<Fp64>(&raw);
        }
    }
}
