//! `F_(2^64 - 59)`: a 64-bit extension field width.
//!
//! The paper evaluates b ∈ {16, 24, 32}; 64-bit identifiers are the natural
//! "future-work" width for flows long enough that 32-bit collision
//! probability becomes material (§4.2 notes the more bits, the better the
//! disambiguation). Products require `u128` widening; see [`crate::Monty64`]
//! for the Montgomery-form variant that avoids the `u128` remainder.

use crate::field::impl_field_ops;
use crate::{Field, P64};

/// An element of `F_(2^64 - 59)` (64-bit identifiers; extension width).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Fp64(u64);

impl Fp64 {
    #[inline]
    pub(crate) const fn raw_zero() -> Self {
        Fp64(0)
    }

    #[inline]
    pub(crate) const fn raw_one() -> Self {
        Fp64(1)
    }

    #[inline]
    pub(crate) fn raw_add(self, rhs: Self) -> Self {
        let (sum, overflow) = self.0.overflowing_add(rhs.0);
        // If the u64 add overflowed we are 2^64 = p + 59 too low after the
        // wrap, i.e. the true sum is sum + 2^64; reduce by adding 59.
        // Both inputs are < p so the true sum is < 2p and one correction
        // suffices.
        if overflow {
            Fp64(sum.wrapping_add(59) % P64)
        } else if sum >= P64 {
            Fp64(sum - P64)
        } else {
            Fp64(sum)
        }
    }

    #[inline]
    pub(crate) fn raw_sub(self, rhs: Self) -> Self {
        let (diff, borrow) = self.0.overflowing_sub(rhs.0);
        Fp64(if borrow { diff.wrapping_add(P64) } else { diff })
    }

    #[inline]
    pub(crate) fn raw_mul(self, rhs: Self) -> Self {
        Fp64(((self.0 as u128 * rhs.0 as u128) % P64 as u128) as u64)
    }
}

impl_field_ops!(Fp64);

impl Field for Fp64 {
    const MODULUS: u64 = P64;
    const BITS: u32 = 64;
    const ZERO: Self = Fp64(0);
    const ONE: Self = Fp64(1);

    #[inline]
    fn from_u64(value: u64) -> Self {
        Fp64(value % P64)
    }

    #[inline]
    fn to_u64(self) -> u64 {
        self.0
    }

    /// Batched folds route through [`crate::Monty64`] (same modulus):
    /// identifiers enter the Montgomery domain once, every rung multiply is
    /// a `REDC` instead of a `u128` remainder, and only the per-rung totals
    /// convert back.
    #[inline]
    fn fold_power_sums(sums: &mut [Self], ids: &[u64], negate: bool) {
        crate::batch::fold_via::<Fp64, crate::Monty64>(sums, ids, negate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_overflow_paths() {
        let max = Fp64::from_u64(P64 - 1);
        // (p-1) + (p-1) = 2p - 2 ≡ p - 2, exercises the u64-overflow branch.
        assert_eq!((max + max).to_u64(), P64 - 2);
        assert_eq!((max + Fp64::ONE).to_u64(), 0);
        let a = Fp64::from_u64(P64 - 30);
        let b = Fp64::from_u64(40);
        assert_eq!((a + b).to_u64(), 10);
    }

    #[test]
    fn sub_borrow_path() {
        assert_eq!((Fp64::ZERO - Fp64::ONE).to_u64(), P64 - 1);
        assert_eq!((Fp64::ONE - Fp64::ZERO).to_u64(), 1);
    }

    #[test]
    fn mul_known_values() {
        // (p-1)^2 = p^2 - 2p + 1 ≡ 1 (mod p)
        let max = Fp64::from_u64(P64 - 1);
        assert_eq!(max * max, Fp64::ONE);
        assert_eq!(
            (Fp64::from_u64(1 << 32) * Fp64::from_u64(1 << 32)).to_u64(),
            // 2^64 mod p = 59
            59
        );
    }

    #[test]
    fn inverse_roundtrip() {
        for v in [1u64, 2, 59, P64 - 1, u64::MAX - 60] {
            let x = Fp64::from_u64(v);
            assert_eq!(x * x.inv(), Fp64::ONE);
        }
    }

    #[test]
    fn aliasing_of_wide_identifiers() {
        // The 59 identifiers in [p, 2^64) alias onto [0, 59).
        assert_eq!(Fp64::from_u64(u64::MAX).to_u64(), 58);
        assert_eq!(Fp64::from_u64(P64).to_u64(), 0);
    }
}
