//! Root finding for error-locator polynomials: the "decoding algorithm that
//! depends only on t" (paper §4.3).
//!
//! The default quACK decoder evaluates the locator at every logged
//! identifier — `O(n·m)`. When `n` is large ("only n changes per quACK,
//! and for large n, we can use the decoding algorithm that depends only on
//! t"), it is cheaper to find the roots of the degree-`m` locator directly:
//!
//! 1. extract the part of `f` that splits into distinct linear factors
//!    over `F_p` via `g = gcd(f, x^p − x)` (every identifier *is* a field
//!    element, so for a well-formed difference `g` covers all roots);
//! 2. split `g` by Cantor–Zassenhaus: for a shift `a`,
//!    `gcd(g, (x+a)^((p−1)/2) − 1)` separates roots by the quadratic
//!    character of `r + a`, halving the problem in expectation;
//! 3. recover multiplicities by synthetic deflation of the original `f`.
//!
//! Everything is `O(m² log p)` field multiplications — independent of `n`.
//! The shift sequence is deterministic (SplitMix64 from a fixed seed), so
//! decoding stays reproducible.

use crate::poly::deflate_monic;
use crate::Field;

/// Finds all roots (in `F`) of the monic polynomial whose non-leading,
/// low-to-high coefficients are `non_leading` (the decoder's locator
/// representation), together with multiplicities.
///
/// Roots are returned sorted by canonical value. Irreducible non-linear
/// factors (which a well-formed quACK difference never produces) are simply
/// not represented in the output — callers detect the shortfall by summing
/// multiplicities.
pub fn find_roots<F: Field>(non_leading: &[F]) -> Vec<(F, usize)> {
    let m = non_leading.len();
    if m == 0 {
        return Vec::new();
    }
    // Full monic coefficient vector, low-to-high.
    let mut f: Vec<F> = non_leading.to_vec();
    f.push(F::ONE);

    // g = gcd(f, x^p − x): the product of (x − r) over distinct roots r.
    // x^p mod f by square-and-multiply, then subtract x.
    let xp = x_pow_modulus_mod(&f);
    let mut xp_minus_x = xp;
    sub_x_in_place::<F>(&mut xp_minus_x);
    let g = poly_gcd(f.clone(), xp_minus_x);

    let mut distinct = Vec::new();
    let mut rng = ShiftStream::new(0x51DE_CA12_F00D_5EEDu64);
    collect_roots(g, &mut distinct, &mut rng);
    distinct.sort_unstable_by_key(|r: &F| r.to_u64());

    // Multiplicities by deflation of the original locator.
    let mut out = Vec::with_capacity(distinct.len());
    for root in distinct {
        let mut mult = 0usize;
        loop {
            // Tentatively deflate; a nonzero remainder means we're done.
            let mut candidate = f[..f.len() - 1].to_vec();
            let rem = deflate_monic(&mut candidate, root);
            if rem != F::ZERO {
                break;
            }
            candidate.push(F::ONE);
            f = candidate;
            mult += 1;
            if f.len() == 1 {
                break;
            }
        }
        debug_assert!(mult >= 1, "gcd produced a non-root");
        out.push((root, mult));
    }
    out
}

/// Sum of multiplicities [`find_roots`] would report — callers compare to
/// the locator degree to detect non-splitting (corrupt) locators.
pub fn total_root_multiplicity<F: Field>(roots: &[(F, usize)]) -> usize {
    roots.iter().map(|&(_, m)| m).sum()
}

/// Deterministic shift sequence for Cantor–Zassenhaus.
struct ShiftStream {
    state: u64,
}

impl ShiftStream {
    fn new(seed: u64) -> Self {
        ShiftStream { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Recursively splits a squarefree product of linear factors into roots.
fn collect_roots<F: Field>(g: Vec<F>, out: &mut Vec<F>, rng: &mut ShiftStream) {
    match g.len() {
        0 | 1 => {}
        2 => {
            // Monic linear: x + c ⇒ root −c.
            let lead_inv = g[1].inv();
            out.push(-(g[0] * lead_inv));
        }
        _ => {
            // Try shifts until one separates the roots. Each attempt
            // succeeds with probability ≥ 1/2 per pair of roots.
            loop {
                let a = F::from_u64(rng.next());
                // h = gcd(g, (x + a)^((p−1)/2) − 1)
                let base = vec![a, F::ONE];
                let mut power = poly_pow_mod(base, (F::MODULUS - 1) / 2, &g);
                if power.is_empty() {
                    power.push(F::ZERO);
                }
                power[0] -= F::ONE;
                trim(&mut power);
                let h = poly_gcd(g.clone(), power);
                if h.len() > 1 && h.len() < g.len() {
                    let quotient = poly_div_exact(&g, &h);
                    collect_roots(h, out, rng);
                    collect_roots(quotient, out, rng);
                    return;
                }
                // Degenerate shift (all or none of the roots satisfied the
                // character test, or a root hit x = −a exactly): the
                // remainder-one case. Handle the "x + a divides g" root
                // directly to guarantee progress on tiny fields.
                if h.len() == g.len() {
                    continue;
                }
                // h is constant: also check whether −a itself is a root
                // ((−a + a) = 0 evaluates the character to 0, escaping both
                // buckets).
                let minus_a = -a;
                if eval(&g, minus_a) == F::ZERO {
                    out.push(minus_a);
                    let reduced = deflate_root(&g, minus_a);
                    collect_roots(reduced, out, rng);
                    return;
                }
            }
        }
    }
}

/// Evaluates a low-to-high coefficient vector at `x`.
fn eval<F: Field>(coeffs: &[F], x: F) -> F {
    let mut acc = F::ZERO;
    for &c in coeffs.iter().rev() {
        acc = acc * x + c;
    }
    acc
}

/// Removes one `(x − root)` factor from a polynomial known to have it.
fn deflate_root<F: Field>(coeffs: &[F], root: F) -> Vec<F> {
    let mut carry = F::ZERO;
    let mut out = vec![F::ZERO; coeffs.len()];
    for (i, &c) in coeffs.iter().enumerate().rev() {
        let b = c + root * carry;
        out[i] = carry;
        carry = b;
    }
    debug_assert_eq!(carry, F::ZERO, "not a root");
    // `out[k]` already holds the quotient's x^k coefficient; only the
    // placeholder in the top slot needs trimming.
    trim(&mut out);
    out
}

/// Drops trailing zero coefficients.
fn trim<F: Field>(v: &mut Vec<F>) {
    while v.last().is_some_and(|c| c.is_zero()) {
        v.pop();
    }
}

/// `x^p mod f` for the field modulus `p`, with `f` monic.
fn x_pow_modulus_mod<F: Field>(f: &[F]) -> Vec<F> {
    poly_pow_mod(vec![F::ZERO, F::ONE], F::MODULUS, f)
}

/// `base^exp mod f` by square-and-multiply (all polynomials low-to-high,
/// `f` with invertible leading coefficient).
fn poly_pow_mod<F: Field>(base: Vec<F>, mut exp: u64, f: &[F]) -> Vec<F> {
    let mut acc = vec![F::ONE];
    let mut base = poly_rem(base, f);
    while exp > 0 {
        if exp & 1 == 1 {
            acc = poly_rem(poly_mul(&acc, &base), f);
        }
        base = poly_rem(poly_mul(&base, &base), f);
        exp >>= 1;
    }
    acc
}

/// Schoolbook polynomial multiplication.
fn poly_mul<F: Field>(a: &[F], b: &[F]) -> Vec<F> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![F::ZERO; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        if x.is_zero() {
            continue;
        }
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// Polynomial remainder `a mod f` (`f` nonzero).
fn poly_rem<F: Field>(mut a: Vec<F>, f: &[F]) -> Vec<F> {
    trim(&mut a);
    let fd = f.len() - 1;
    if fd == 0 {
        return Vec::new();
    }
    let lead_inv = f[fd].inv();
    while a.len() > fd {
        let k = a.len() - 1 - fd;
        let scale = *a.last().expect("nonempty") * lead_inv;
        for (i, &fc) in f.iter().enumerate() {
            a[k + i] -= scale * fc;
        }
        a.pop();
        trim(&mut a);
        if a.is_empty() {
            break;
        }
    }
    a
}

/// Monic polynomial gcd by Euclid's algorithm.
fn poly_gcd<F: Field>(mut a: Vec<F>, mut b: Vec<F>) -> Vec<F> {
    trim(&mut a);
    trim(&mut b);
    while !b.is_empty() {
        let r = poly_rem(a, &b);
        a = b;
        b = r;
    }
    // Normalize to monic.
    if let Some(&lead) = a.last() {
        let inv = lead.inv();
        for c in a.iter_mut() {
            *c *= inv;
        }
    }
    a
}

/// Exact division `a / b` (remainder known to be zero).
fn poly_div_exact<F: Field>(a: &[F], b: &[F]) -> Vec<F> {
    let mut rem = a.to_vec();
    trim(&mut rem);
    let bd = b.len() - 1;
    let lead_inv = b[bd].inv();
    let mut quot = vec![F::ZERO; rem.len().saturating_sub(bd)];
    while rem.len() > bd {
        let k = rem.len() - 1 - bd;
        let scale = *rem.last().expect("nonempty") * lead_inv;
        quot[k] = scale;
        for (i, &bc) in b.iter().enumerate() {
            rem[k + i] -= scale * bc;
        }
        rem.pop();
        trim(&mut rem);
        if rem.is_empty() {
            break;
        }
    }
    debug_assert!(rem.is_empty(), "division was not exact");
    trim(&mut quot);
    quot
}

/// Subtracts `x` from a low-to-high coefficient vector in place.
fn sub_x_in_place<F: Field>(v: &mut Vec<F>) {
    if v.len() < 2 {
        v.resize(2, F::ZERO);
    }
    v[1] -= F::ONE;
    trim(v);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::Poly;
    use crate::{power_sums_to_coefficients, Fp16, Fp32, Fp64};

    fn roots_of<F: Field>(raw: &[u64]) -> Vec<(F, usize)> {
        let elems: Vec<F> = raw.iter().map(|&v| F::from_u64(v)).collect();
        let sums: Vec<F> = (1..=elems.len() as u64)
            .map(|i| elems.iter().map(|x| x.pow(i)).sum())
            .collect();
        let coeffs = power_sums_to_coefficients(&sums);
        find_roots(&coeffs)
    }

    fn expect<F: Field>(raw: &[u64]) -> Vec<(F, usize)> {
        let mut counts: std::collections::BTreeMap<u64, usize> = Default::default();
        for &v in raw {
            *counts.entry(F::from_u64(v).to_u64()).or_default() += 1;
        }
        counts
            .into_iter()
            .map(|(v, m)| (F::from_u64(v), m))
            .collect()
    }

    #[test]
    fn empty_locator_has_no_roots() {
        assert!(find_roots::<Fp32>(&[]).is_empty());
    }

    #[test]
    fn single_root() {
        assert_eq!(roots_of::<Fp32>(&[42]), expect::<Fp32>(&[42]));
    }

    #[test]
    fn distinct_roots_all_widths() {
        let raw = [3u64, 9_999, 65_000, 12, 40_000];
        assert_eq!(roots_of::<Fp16>(&raw), expect::<Fp16>(&raw));
        assert_eq!(roots_of::<Fp32>(&raw), expect::<Fp32>(&raw));
        assert_eq!(roots_of::<Fp64>(&raw), expect::<Fp64>(&raw));
    }

    #[test]
    fn repeated_roots_report_multiplicity() {
        let raw = [7u64, 7, 7, 100, 100, 3];
        assert_eq!(roots_of::<Fp32>(&raw), expect::<Fp32>(&raw));
    }

    #[test]
    fn zero_root_handled() {
        let raw = [0u64, 5, 0];
        assert_eq!(roots_of::<Fp32>(&raw), expect::<Fp32>(&raw));
    }

    #[test]
    fn large_degree_locator() {
        let raw: Vec<u64> = (0..40u64).map(|i| i * i * 977 + 11).collect();
        assert_eq!(roots_of::<Fp32>(&raw), expect::<Fp32>(&raw));
        assert_eq!(total_root_multiplicity(&roots_of::<Fp32>(&raw)), raw.len());
    }

    #[test]
    fn adjacent_roots_split() {
        // Consecutive values stress the character-based splitting.
        let raw: Vec<u64> = (1000..1020).collect();
        assert_eq!(roots_of::<Fp32>(&raw), expect::<Fp32>(&raw));
    }

    #[test]
    fn irreducible_factor_detected_by_shortfall() {
        // x² + 1 over F_p with p = 2^32 − 5 ≡ 3 (mod 4): −1 is a
        // non-residue, so x² + 1 is irreducible and has no roots.
        let coeffs = vec![Fp32::ONE, Fp32::ZERO]; // non-leading of x² + 0x + 1
        let roots = find_roots(&coeffs);
        assert!(roots.is_empty());
    }

    #[test]
    fn mixed_splitting_and_irreducible() {
        // (x − 5)(x² + 1): exactly one rational root.
        let linear = Poly::from_roots(&[Fp32::from_u64(5)]);
        let irreducible = Poly::from_coeffs(vec![Fp32::ONE, Fp32::ZERO, Fp32::ONE]);
        let product = linear.mul(&irreducible);
        let non_leading = &product.coeffs()[..product.coeffs().len() - 1];
        let roots = find_roots(non_leading);
        assert_eq!(roots, vec![(Fp32::from_u64(5), 1)]);
        assert_eq!(total_root_multiplicity(&roots), 1);
    }

    #[test]
    fn poly_helpers_agree_with_poly_type() {
        let a = Poly::from_roots(&[Fp32::from_u64(1), Fp32::from_u64(2)]);
        let b = Poly::from_roots(&[Fp32::from_u64(3)]);
        let prod = poly_mul(a.coeffs(), b.coeffs());
        assert_eq!(prod, a.mul(&b).coeffs().to_vec());
        // a mod b: remainder of (x−1)(x−2) by (x−3) is its value at 3 = 2.
        let r = poly_rem(a.coeffs().to_vec(), b.coeffs());
        assert_eq!(r, vec![Fp32::from_u64(2)]);
        // gcd((x−1)(x−2), (x−2)(x−3)) = x − 2.
        let c = Poly::from_roots(&[Fp32::from_u64(2), Fp32::from_u64(3)]);
        let g = poly_gcd(a.coeffs().to_vec(), c.coeffs().to_vec());
        assert_eq!(g, Poly::from_roots(&[Fp32::from_u64(2)]).coeffs().to_vec());
        // Exact division round trip.
        let q = poly_div_exact(&prod, b.coeffs());
        assert_eq!(q, a.coeffs().to_vec());
    }
}
