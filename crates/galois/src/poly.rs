//! Dense polynomials over a prime field.
//!
//! The quACK decoder builds a monic degree-`m` "error-locator" polynomial
//! whose roots are exactly the missing identifiers (paper §3.1) and then
//! evaluates it at every candidate in the sender's log — "for a small n,
//! such as here, it is more efficient to plug in all candidate roots than to
//! solve the roots directly" (paper §4.2). This module supplies Horner
//! evaluation, synthetic deflation (dividing out a found root so multiset
//! multiplicities are honoured), and enough polynomial algebra to cross-check
//! the decoder in tests.

use crate::Field;

/// A dense polynomial `c[0] + c[1]·x + … + c[d]·x^d` over `F`.
///
/// The coefficient vector never ends in a zero (except for the zero
/// polynomial, which is an empty vector), so `degree` is well-defined.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub struct Poly<F: Field> {
    coeffs: Vec<F>,
}

impl<F: Field> Poly<F> {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        Poly {
            coeffs: vec![F::ONE],
        }
    }

    /// Builds a polynomial from low-to-high coefficients, trimming trailing
    /// zeros.
    pub fn from_coeffs(mut coeffs: Vec<F>) -> Self {
        while coeffs.last().is_some_and(|c| c.is_zero()) {
            coeffs.pop();
        }
        Poly { coeffs }
    }

    /// The monic polynomial `∏ (x - r)` over the given roots.
    ///
    /// This is exactly the error-locator polynomial the decoder must
    /// reconstruct from power sums; tests use it as the ground truth.
    pub fn from_roots(roots: &[F]) -> Self {
        let mut coeffs = vec![F::ONE];
        for &r in roots {
            // Multiply by (x - r): new[i] = old[i-1] - r·old[i].
            coeffs.push(F::ZERO);
            for i in (1..coeffs.len()).rev() {
                let lower = coeffs[i - 1];
                coeffs[i] = lower - r * coeffs[i];
            }
            coeffs[0] = -r * coeffs[0];
            debug_assert_eq!(*coeffs.last().unwrap(), F::ONE);
        }
        Poly { coeffs }
    }

    /// Low-to-high coefficient slice. Empty iff the polynomial is zero.
    pub fn coeffs(&self) -> &[F] {
        &self.coeffs
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Evaluates at `x` by Horner's rule.
    pub fn eval(&self, x: F) -> F {
        eval_horner(&self.coeffs, x)
    }

    /// Divides by `(x - root)` in place via synthetic division, returning the
    /// remainder (zero iff `root` is an actual root).
    pub fn deflate(&mut self, root: F) -> F {
        if self.coeffs.is_empty() {
            return F::ZERO;
        }
        let remainder = deflate_in_place(&mut self.coeffs, root);
        self.coeffs.pop();
        remainder
    }

    /// Formal derivative.
    pub fn derivative(&self) -> Self {
        if self.coeffs.len() <= 1 {
            return Self::zero();
        }
        let coeffs = self
            .coeffs
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, &c)| c * F::from_u64(i as u64))
            .collect();
        Self::from_coeffs(coeffs)
    }

    /// Polynomial addition (used in tests and cross-checks).
    pub fn add(&self, other: &Self) -> Self {
        let mut coeffs = vec![F::ZERO; self.coeffs.len().max(other.coeffs.len())];
        for (i, &c) in self.coeffs.iter().enumerate() {
            coeffs[i] += c;
        }
        for (i, &c) in other.coeffs.iter().enumerate() {
            coeffs[i] += c;
        }
        Self::from_coeffs(coeffs)
    }

    /// Schoolbook polynomial multiplication (used in tests and cross-checks).
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut coeffs = vec![F::ZERO; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in other.coeffs.iter().enumerate() {
                coeffs[i + j] += a * b;
            }
        }
        Self::from_coeffs(coeffs)
    }
}

/// Evaluates the polynomial given by low-to-high `coeffs` at `x` (Horner).
///
/// Exposed separately so the decoder's hot loop can work on a raw coefficient
/// slice without constructing a [`Poly`].
#[inline]
pub fn eval_horner<F: Field>(coeffs: &[F], x: F) -> F {
    let mut acc = F::ZERO;
    for &c in coeffs.iter().rev() {
        acc = acc * x + c;
    }
    acc
}

/// Evaluates a *monic* polynomial of degree `coeffs.len()` whose non-leading
/// low-to-high coefficients are `coeffs` (the implicit leading coefficient is
/// one). This is the decoder's representation: Newton's identities produce
/// the `m` non-leading coefficients of a monic degree-`m` locator.
#[inline]
pub fn eval_monic<F: Field>(coeffs: &[F], x: F) -> F {
    let mut acc = F::ONE;
    for &c in coeffs.iter().rev() {
        acc = acc * x + c;
    }
    acc
}

/// Synthetic division of the polynomial in `coeffs` (low-to-high) by
/// `(x - root)`, in place. After the call, `coeffs[1..]` holds the quotient
/// (low-to-high, one degree lower, with the original length retained —
/// callers truncate) and the returned value is the remainder.
///
/// Layout detail: quotient coefficient `q[i]` lands in `coeffs[i + 1]`.
#[inline]
fn deflate_in_place<F: Field>(coeffs: &mut [F], root: F) -> F {
    // Standard synthetic division runs high-to-low: b_k = a_k + root · b_{k+1}.
    let mut carry = F::ZERO;
    for c in coeffs.iter_mut().rev() {
        let b = *c + root * carry;
        *c = carry;
        carry = b;
    }
    carry
}

/// Divides the *monic* polynomial with non-leading coefficients `coeffs`
/// (low-to-high, implicit leading one) by `(x - root)`, in place, and
/// returns the remainder.
///
/// On return, `coeffs` holds the non-leading coefficients of the (still
/// monic, one degree lower) quotient; its length shrinks by one. The
/// remainder is zero iff `root` was a root. This is the decoder's
/// multiplicity-aware root removal: after confirming a logged identifier is
/// a root, dividing it out ensures a duplicate identifier is only reported
/// missing as many times as it is actually missing.
#[inline]
pub fn deflate_monic<F: Field>(coeffs: &mut Vec<F>, root: F) -> F {
    // Synthetic division, high to low: b_k = a_k + root · b_{k+1}, with the
    // implicit leading a_m = 1. Quotient coefficient of x^k is b_{k+1}.
    let mut carry = F::ONE;
    for c in coeffs.iter_mut().rev() {
        let b = *c + root * carry;
        *c = carry;
        carry = b;
    }
    // The slice now holds [b_1, …, b_m]; b_m = 1 is the quotient's implicit
    // leading coefficient, so drop it. The remainder is b_0.
    let leading = coeffs.pop();
    debug_assert!(leading.is_none() || leading == Some(F::ONE));
    carry
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fp16, Fp32};

    fn p32(v: u64) -> Fp32 {
        Fp32::from_u64(v)
    }

    #[test]
    fn from_roots_expands_correctly() {
        // (x-1)(x-2) = x^2 - 3x + 2
        let p = Poly::from_roots(&[p32(1), p32(2)]);
        assert_eq!(p.coeffs(), &[p32(2), -p32(3), p32(1)]);
        assert_eq!(p.degree(), Some(2));
    }

    #[test]
    fn from_roots_empty_is_one() {
        let p = Poly::<Fp32>::from_roots(&[]);
        assert_eq!(p, Poly::one());
        assert_eq!(p.eval(p32(12345)), Fp32::ONE);
    }

    #[test]
    fn eval_at_roots_is_zero() {
        let roots = [p32(17), p32(42), p32(42), p32(4_000_000_000)];
        let p = Poly::from_roots(&roots);
        for &r in &roots {
            assert_eq!(p.eval(r), Fp32::ZERO);
        }
        assert_ne!(p.eval(p32(5)), Fp32::ZERO);
    }

    #[test]
    fn deflate_removes_one_multiplicity() {
        let roots = [p32(7), p32(7), p32(9)];
        let mut p = Poly::from_roots(&roots);
        assert_eq!(p.deflate(p32(7)), Fp32::ZERO);
        assert_eq!(p, Poly::from_roots(&[p32(7), p32(9)]));
        assert_eq!(p.deflate(p32(7)), Fp32::ZERO);
        assert_eq!(p, Poly::from_roots(&[p32(9)]));
        // 7 is no longer a root.
        assert_ne!(p.eval(p32(7)), Fp32::ZERO);
    }

    #[test]
    fn deflate_non_root_returns_remainder() {
        let mut p = Poly::from_roots(&[p32(3)]);
        let rem = p.deflate(p32(4));
        // (x - 3) = 1·(x - 4) + 1
        assert_eq!(rem, Fp32::ONE);
    }

    #[test]
    fn eval_monic_matches_poly_eval() {
        let roots = [p32(11), p32(13), p32(1_000_003)];
        let p = Poly::from_roots(&roots);
        // strip the leading 1
        let non_leading = &p.coeffs()[..p.coeffs().len() - 1];
        for x in [0u64, 1, 11, 13, 999_999_999] {
            assert_eq!(eval_monic(non_leading, p32(x)), p.eval(p32(x)));
        }
    }

    #[test]
    fn deflate_monic_matches_poly_deflate() {
        let roots = [p32(21), p32(22), p32(23)];
        let p = Poly::from_roots(&roots);
        let mut non_leading: Vec<Fp32> = p.coeffs()[..3].to_vec();
        let rem = deflate_monic(&mut non_leading, p32(22));
        assert_eq!(rem, Fp32::ZERO);
        let expected = Poly::from_roots(&[p32(21), p32(23)]);
        assert_eq!(&non_leading[..], &expected.coeffs()[..2]);
    }

    #[test]
    fn deflate_monic_non_root_remainder() {
        // x - 3 divided by (x - 4) leaves remainder 1.
        let mut coeffs = vec![-p32(3)];
        let rem = deflate_monic(&mut coeffs, p32(4));
        assert_eq!(rem, Fp32::ONE);
        assert!(coeffs.is_empty());
        // Degree-0 monic polynomial (the constant 1): remainder is 1.
        let mut empty: Vec<Fp32> = vec![];
        assert_eq!(deflate_monic(&mut empty, p32(7)), Fp32::ONE);
    }

    #[test]
    fn derivative_power_rule() {
        // d/dx (x^3 + 2x + 5) = 3x^2 + 2
        let p = Poly::from_coeffs(vec![p32(5), p32(2), p32(0), p32(1)]);
        let d = p.derivative();
        assert_eq!(d.coeffs(), &[p32(2), p32(0), p32(3)]);
        assert_eq!(Poly::<Fp32>::one().derivative(), Poly::zero());
        assert_eq!(Poly::<Fp32>::zero().derivative(), Poly::zero());
    }

    #[test]
    fn mul_and_add_are_ring_ops() {
        let a = Poly::from_roots(&[p32(1), p32(2)]);
        let b = Poly::from_roots(&[p32(3)]);
        let ab = a.mul(&b);
        assert_eq!(ab, Poly::from_roots(&[p32(1), p32(2), p32(3)]));
        let sum = a.add(&b);
        for x in 0..10u64 {
            assert_eq!(sum.eval(p32(x)), a.eval(p32(x)) + b.eval(p32(x)));
        }
        assert_eq!(a.mul(&Poly::zero()), Poly::zero());
    }

    #[test]
    fn trailing_zero_trim() {
        let p = Poly::from_coeffs(vec![Fp16::ONE, Fp16::ZERO, Fp16::ZERO]);
        assert_eq!(p.degree(), Some(0));
        let z = Poly::from_coeffs(vec![Fp16::ZERO; 5]);
        assert!(z.is_zero());
        assert_eq!(z.degree(), None);
    }

    #[test]
    fn horner_empty_is_zero() {
        assert_eq!(eval_horner::<Fp32>(&[], p32(99)), Fp32::ZERO);
        assert_eq!(eval_monic::<Fp32>(&[], p32(99)), Fp32::ONE);
    }
}
