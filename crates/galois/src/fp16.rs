//! `F_65521`: the field for 16-bit identifiers.
//!
//! The paper notes that in the 16-bit case "pre-computation optimizations"
//! apply (§4.2): the multiplicative group has only 65 520 elements, so
//! discrete exp/log tables can replace multiplication with two loads and an
//! add, and inversion with a single load. Whether that *wins* depends on
//! the cache hierarchy: on the machines this reproduction targets, the
//! ~384 KiB of tables miss L1/L2 often enough that a plain widening
//! multiply is faster. [`Fp16`] therefore uses the widening multiply, and
//! [`Fp16Table`] keeps the table-driven variant as an ablation target (see
//! the `field_ops` bench); both implement [`Field`] identically.

use crate::field::impl_field_ops;
use crate::prime::primitive_root;
use crate::{Field, P16};
use std::sync::OnceLock;

const P: u16 = P16 as u16;
const ORDER: usize = (P16 - 1) as usize; // 65 520

/// An element of `F_65521` (16-bit identifiers, paper §4.2), widening-mul
/// arithmetic.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Fp16(u16);

impl Fp16 {
    #[inline]
    pub(crate) const fn raw_zero() -> Self {
        Fp16(0)
    }

    #[inline]
    pub(crate) const fn raw_one() -> Self {
        Fp16(1)
    }

    #[inline]
    pub(crate) fn raw_add(self, rhs: Self) -> Self {
        let sum = self.0 as u32 + rhs.0 as u32;
        Fp16(if sum >= P as u32 {
            (sum - P as u32) as u16
        } else {
            sum as u16
        })
    }

    #[inline]
    pub(crate) fn raw_sub(self, rhs: Self) -> Self {
        let (diff, borrow) = self.0.overflowing_sub(rhs.0);
        Fp16(if borrow { diff.wrapping_add(P) } else { diff })
    }

    #[inline]
    pub(crate) fn raw_mul(self, rhs: Self) -> Self {
        Fp16(((self.0 as u32 * rhs.0 as u32) % P16 as u32) as u16)
    }
}

impl_field_ops!(Fp16);

impl Field for Fp16 {
    const MODULUS: u64 = P16;
    const BITS: u32 = 16;
    const ZERO: Self = Fp16(0);
    const ONE: Self = Fp16(1);

    #[inline]
    fn from_u64(value: u64) -> Self {
        Fp16((value % P16) as u16)
    }

    #[inline]
    fn to_u64(self) -> u64 {
        self.0 as u64
    }
}

struct Tables {
    /// `exp[i] = g^i mod p` for `i` in `[0, 2·ORDER)` so that sums of two
    /// logs never need reducing.
    exp: Vec<u16>,
    /// `log[v]` for `v` in `[1, p)`; `log[0]` is a sentinel and never read.
    log: Vec<u16>,
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let g = primitive_root(P16);
        let mut exp = vec![0u16; 2 * ORDER];
        let mut log = vec![0u16; P16 as usize];
        let mut acc: u64 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(ORDER) {
            *e = acc as u16;
            log[acc as usize] = i as u16;
            acc = acc * g % P16;
        }
        debug_assert_eq!(acc, 1, "g must have order p-1");
        let (lo, hi) = exp.split_at_mut(ORDER);
        hi.copy_from_slice(lo);
        Tables { exp, log }
    })
}

/// An element of `F_65521` with discrete exp/log **table** arithmetic — the
/// paper's 16-bit "pre-computation optimization", kept for the ablation
/// benchmarks.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Fp16Table(u16);

impl Fp16Table {
    #[inline]
    pub(crate) const fn raw_zero() -> Self {
        Fp16Table(0)
    }

    #[inline]
    pub(crate) const fn raw_one() -> Self {
        Fp16Table(1)
    }

    #[inline]
    pub(crate) fn raw_add(self, rhs: Self) -> Self {
        let sum = self.0 as u32 + rhs.0 as u32;
        Fp16Table(if sum >= P as u32 {
            (sum - P as u32) as u16
        } else {
            sum as u16
        })
    }

    #[inline]
    pub(crate) fn raw_sub(self, rhs: Self) -> Self {
        let (diff, borrow) = self.0.overflowing_sub(rhs.0);
        Fp16Table(if borrow { diff.wrapping_add(P) } else { diff })
    }

    #[inline]
    pub(crate) fn raw_mul(self, rhs: Self) -> Self {
        if self.0 == 0 || rhs.0 == 0 {
            return Fp16Table(0);
        }
        let t = tables();
        Fp16Table(t.exp[t.log[self.0 as usize] as usize + t.log[rhs.0 as usize] as usize])
    }
}

impl_field_ops!(Fp16Table);

impl Field for Fp16Table {
    const MODULUS: u64 = P16;
    const BITS: u32 = 16;
    const ZERO: Self = Fp16Table(0);
    const ONE: Self = Fp16Table(1);

    #[inline]
    fn from_u64(value: u64) -> Self {
        Fp16Table((value % P16) as u16)
    }

    #[inline]
    fn to_u64(self) -> u64 {
        self.0 as u64
    }

    #[inline]
    fn checked_inv(self) -> Option<Self> {
        if self.0 == 0 {
            return None;
        }
        let t = tables();
        Some(Fp16Table(t.exp[ORDER - t.log[self.0 as usize] as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_mul_matches_widening_mul() {
        for a in (0..P16).step_by(977) {
            for b in (0..P16).step_by(1013) {
                let expected = a * b % P16;
                assert_eq!((Fp16::from_u64(a) * Fp16::from_u64(b)).to_u64(), expected);
                assert_eq!(
                    (Fp16Table::from_u64(a) * Fp16Table::from_u64(b)).to_u64(),
                    expected,
                    "{a} * {b}"
                );
            }
        }
    }

    #[test]
    fn table_inverse_exhaustive_sample() {
        for v in (1..P16).step_by(331) {
            let x = Fp16Table::from_u64(v);
            assert_eq!(x * x.inv(), Fp16Table::ONE, "inv({v})");
            let y = Fp16::from_u64(v);
            assert_eq!(y * y.inv(), Fp16::ONE);
            assert_eq!(x.inv().to_u64(), y.inv().to_u64());
        }
        assert_eq!(
            Fp16Table::from_u64(P16 - 1).inv(),
            Fp16Table::from_u64(P16 - 1)
        );
        assert_eq!(Fp16Table::ONE.inv(), Fp16Table::ONE);
    }

    #[test]
    fn from_u64_reduces() {
        assert_eq!(Fp16::from_u64(P16).to_u64(), 0);
        assert_eq!(Fp16::from_u64(P16 + 7).to_u64(), 7);
        assert_eq!(Fp16::from_u64(u64::MAX).to_u64(), u64::MAX % P16);
        // 16-bit identifiers in [p, 2^16) alias small residues.
        assert_eq!(Fp16::from_u64(65_535).to_u64(), 14);
    }

    #[test]
    fn add_sub_wraparound() {
        let max = Fp16::from_u64(P16 - 1);
        assert_eq!((max + Fp16::ONE).to_u64(), 0);
        assert_eq!((Fp16::ZERO - Fp16::ONE).to_u64(), P16 - 1);
        assert_eq!((-Fp16::ONE).to_u64(), P16 - 1);
        assert_eq!(-Fp16::ZERO, Fp16::ZERO);
    }

    #[test]
    fn zero_absorbing_in_table_mul() {
        assert_eq!(Fp16Table::ZERO * Fp16Table::from_u64(123), Fp16Table::ZERO);
        assert_eq!(Fp16Table::from_u64(123) * Fp16Table::ZERO, Fp16Table::ZERO);
    }
}
