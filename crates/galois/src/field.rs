//! The [`Field`] trait: the interface every quACK modulus implements.

use core::fmt::Debug;
use core::hash::Hash;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An element of a prime field `F_p` where `p` is the largest prime below
/// `2^b` for some identifier width `b` (paper §3.2).
///
/// All quACK machinery — power-sum accumulation, Newton's identities, and
/// polynomial root finding — is generic over this trait, so a sidecar can
/// negotiate the identifier width `b` (paper §3.2 parameter 2) without
/// touching the sketch logic.
///
/// Implementations are plain `Copy` newtypes over the matching unsigned
/// integer; arithmetic is total (wrapping around the modulus), and `inv`
/// panics only on zero, which callers guard against.
pub trait Field:
    Copy
    + Clone
    + Eq
    + PartialEq
    + Ord
    + PartialOrd
    + Hash
    + Debug
    + Default
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum
    + Product
{
    /// The field modulus `p`.
    const MODULUS: u64;

    /// The identifier width `b` in bits; `MODULUS` is the largest prime
    /// below `2^BITS`.
    const BITS: u32;

    /// The additive identity.
    const ZERO: Self;

    /// The multiplicative identity.
    const ONE: Self;

    /// Embeds an integer into the field, reducing modulo `p`.
    ///
    /// Identifiers in `[p, 2^b)` alias with small residues; that aliasing is
    /// accounted for by the paper's collision probability (§4.2) and by the
    /// decoder's indeterminacy handling.
    fn from_u64(value: u64) -> Self;

    /// Returns the canonical representative in `[0, p)`.
    fn to_u64(self) -> u64;

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    fn inv(self) -> Self {
        self.checked_inv().expect("inverse of zero field element")
    }

    /// The multiplicative inverse, or `None` for zero.
    fn checked_inv(self) -> Option<Self> {
        if self == Self::ZERO {
            None
        } else {
            // Fermat: a^(p-2) = a^-1 for prime p.
            Some(self.pow(Self::MODULUS - 2))
        }
    }

    /// Exponentiation by square-and-multiply.
    fn pow(self, mut exp: u64) -> Self {
        let mut base = self;
        let mut acc = Self::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            base *= base;
            exp >>= 1;
        }
        acc
    }

    /// Whether `self` is the additive identity.
    #[inline]
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }

    /// `self - rhs` as a free function position helper (used by macros).
    #[inline]
    fn double(self) -> Self {
        self + self
    }

    /// Folds a batch of raw identifiers into running power sums:
    /// `sums[i] ± Σ_j ids[j]^(i+1)` (`+` when `negate` is false, `-` when
    /// true).
    ///
    /// The default implementation is the lane-batched ladder in
    /// [`crate::batch`]; fields with a faster internal domain (e.g.
    /// [`crate::Fp64`], which routes through Montgomery form) override it.
    /// Equivalent to folding each identifier individually — the batched
    /// paths only restructure the arithmetic.
    #[inline]
    fn fold_power_sums(sums: &mut [Self], ids: &[u64], negate: bool) {
        crate::batch::fold_power_sums_generic(sums, ids, negate);
    }
}

/// Inverts a slice of field elements in place using Montgomery's batch
/// inversion trick: `3(n-1)` multiplications plus a single inversion.
///
/// Zero elements are left as zero (they have no inverse); all other elements
/// are replaced by their inverses.
///
/// ```
/// use sidecar_galois::{field::batch_invert, Field, Fp32};
/// let mut xs = [Fp32::from_u64(2), Fp32::ZERO, Fp32::from_u64(123_456)];
/// batch_invert(&mut xs);
/// assert_eq!(xs[0] * Fp32::from_u64(2), Fp32::ONE);
/// assert_eq!(xs[1], Fp32::ZERO);
/// assert_eq!(xs[2] * Fp32::from_u64(123_456), Fp32::ONE);
/// ```
pub fn batch_invert<F: Field>(values: &mut [F]) {
    // Prefix products over the nonzero entries.
    let mut prefix = Vec::with_capacity(values.len());
    let mut acc = F::ONE;
    for &v in values.iter() {
        prefix.push(acc);
        if !v.is_zero() {
            acc *= v;
        }
    }
    let mut inv_acc = match acc.checked_inv() {
        Some(inv) => inv,
        // All entries zero.
        None => return,
    };
    for (v, pre) in values.iter_mut().zip(prefix).rev() {
        if v.is_zero() {
            continue;
        }
        let inv_v = inv_acc * pre;
        inv_acc *= *v;
        *v = inv_v;
    }
}

/// Implements the boilerplate operator traits for a prime-field newtype.
///
/// The newtype must provide inherent `const fn raw_add`, `raw_sub`, `raw_mul`
/// (canonical-representative arithmetic) plus `raw_from_u64`/`raw_to_u64`.
macro_rules! impl_field_ops {
    ($ty:ident) => {
        impl core::ops::Add for $ty {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                self.raw_add(rhs)
            }
        }
        impl core::ops::Sub for $ty {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                self.raw_sub(rhs)
            }
        }
        impl core::ops::Mul for $ty {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: Self) -> Self {
                self.raw_mul(rhs)
            }
        }
        impl core::ops::Neg for $ty {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self::raw_zero().raw_sub(self)
            }
        }
        impl core::ops::AddAssign for $ty {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                *self = self.raw_add(rhs);
            }
        }
        impl core::ops::SubAssign for $ty {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                *self = self.raw_sub(rhs);
            }
        }
        impl core::ops::MulAssign for $ty {
            #[inline]
            fn mul_assign(&mut self, rhs: Self) {
                *self = self.raw_mul(rhs);
            }
        }
        impl core::iter::Sum for $ty {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::raw_zero(), |a, b| a + b)
            }
        }
        impl core::iter::Product for $ty {
            fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::raw_one(), |a, b| a * b)
            }
        }
        impl core::fmt::Display for $ty {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "{}", <$ty as $crate::Field>::to_u64(*self))
            }
        }
        impl From<u64> for $ty {
            #[inline]
            fn from(v: u64) -> Self {
                <$ty as $crate::Field>::from_u64(v)
            }
        }
    };
}
pub(crate) use impl_field_ops;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fp16, Fp32};

    #[test]
    fn batch_invert_empty_and_all_zero() {
        let mut empty: [Fp32; 0] = [];
        batch_invert(&mut empty);
        let mut zeros = [Fp32::ZERO; 4];
        batch_invert(&mut zeros);
        assert_eq!(zeros, [Fp32::ZERO; 4]);
    }

    #[test]
    fn batch_invert_matches_single_inversion() {
        let values: Vec<Fp16> = (1..200u64).map(Fp16::from_u64).collect();
        let mut batch = values.clone();
        batch_invert(&mut batch);
        for (orig, inv) in values.iter().zip(batch) {
            assert_eq!(inv, orig.inv());
        }
    }

    #[test]
    fn pow_edge_cases() {
        assert_eq!(Fp32::from_u64(5).pow(0), Fp32::ONE);
        assert_eq!(Fp32::ZERO.pow(0), Fp32::ONE); // convention 0^0 = 1
        assert_eq!(Fp32::ZERO.pow(5), Fp32::ZERO);
        assert_eq!(Fp32::from_u64(2).pow(10), Fp32::from_u64(1024));
    }

    #[test]
    fn fermat_inverse() {
        for v in [1u64, 2, 3, 65_520, 12_345] {
            let x = Fp16::from_u64(v);
            assert_eq!(x * x.inv(), Fp16::ONE);
        }
    }

    #[test]
    #[should_panic(expected = "inverse of zero")]
    fn zero_has_no_inverse() {
        let _ = Fp32::ZERO.inv();
    }
}
