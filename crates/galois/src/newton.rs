//! Newton's identities: power sums → error-locator coefficients.
//!
//! The sender holds the differences `d_i = Σ_{x ∈ S\R} x^i` of its power
//! sums and the receiver's (paper §3.1). Newton's identities convert the
//! first `m` of those differences into the coefficients of the monic
//! polynomial `∏_{x ∈ S\R} (x − x_j)` whose roots are exactly the missing
//! identifiers — "efficiently solving these m power sum polynomial equations
//! in m variables is a well-understood algebra problem" (§3.1, citing
//! Eppstein–Goodrich straggler identification).
//!
//! Writing the locator as `x^m + a_1·x^{m−1} + … + a_m` (signed elementary
//! symmetric polynomials `a_k = (−1)^k e_k`), the identities give the
//! recurrence
//!
//! ```text
//! a_k = −(1/k) · Σ_{i=1..k} a_{k−i} · d_i ,   a_0 = 1 .
//! ```
//!
//! Each `a_k` costs `k` multiplications, so coefficient recovery is `O(m²)`
//! field multiplications — the dominant term in the paper's Fig. 6 decoding
//! curve, linear in `m` for the small `m` regime because the subsequent
//! candidate evaluation is `O(n·m)`.

use crate::Field;

/// Reusable scratch state for converting power sums to coefficients.
///
/// Holds the modular inverses of `1..=max_m` so repeated decodes (one per
/// received quACK) never pay for a Fermat inversion. Build it once per
/// connection with the negotiated threshold `t`.
#[derive(Clone, Debug)]
pub struct NewtonWorkspace<F: Field> {
    /// `invs[k-1] = k^{-1} mod p`.
    invs: Vec<F>,
}

impl<F: Field> NewtonWorkspace<F> {
    /// Prepares inverses for locators of degree up to `max_m` (the quACK
    /// threshold `t`).
    pub fn new(max_m: usize) -> Self {
        assert!(
            (max_m as u64) < F::MODULUS,
            "threshold must be smaller than the field modulus"
        );
        // inv[1] = 1; inv[i] = -(p / i) · inv[p mod i]  (standard O(n) sieve)
        let mut invs = Vec::with_capacity(max_m);
        if max_m >= 1 {
            invs.push(F::ONE);
        }
        let p = F::MODULUS;
        for i in 2..=max_m as u64 {
            let rec = invs[(p % i) as usize - 1];
            invs.push(-(F::from_u64(p / i) * rec));
        }
        NewtonWorkspace { invs }
    }

    /// The maximum locator degree this workspace supports.
    pub fn max_m(&self) -> usize {
        self.invs.len()
    }

    /// Converts power-sum differences `d_1..d_m` into the non-leading
    /// coefficients of the monic error-locator polynomial, low-to-high:
    /// the returned `c` satisfies `locator(x) = x^m + Σ c[k]·x^k`.
    ///
    /// # Panics
    ///
    /// Panics if `power_sums.len()` exceeds [`Self::max_m`].
    pub fn coefficients(&self, power_sums: &[F]) -> Vec<F> {
        let mut out = Vec::new();
        self.coefficients_into(power_sums, &mut out);
        out
    }

    /// Like [`Self::coefficients`], but writes into a caller-owned buffer so
    /// repeated decodes (one per received quACK) reuse the allocation.
    ///
    /// # Panics
    ///
    /// Panics if `power_sums.len()` exceeds [`Self::max_m`].
    pub fn coefficients_into(&self, power_sums: &[F], out: &mut Vec<F>) {
        let m = power_sums.len();
        assert!(
            m <= self.invs.len(),
            "workspace sized for m <= {}, got {}",
            self.invs.len(),
            m
        );
        // a[k], k = 0..=m with a[0] = 1.
        out.clear();
        out.reserve(m + 1);
        out.push(F::ONE);
        for k in 1..=m {
            let mut acc = F::ZERO;
            for i in 1..=k {
                acc += out[k - i] * power_sums[i - 1];
            }
            out.push(-(acc * self.invs[k - 1]));
        }
        // Non-leading coefficients low-to-high: coefficient of x^k is a[m-k].
        out.remove(0); // drop a_0
        out.reverse();
    }
}

/// A shared pool of [`NewtonWorkspace`]s for concurrent decoders.
///
/// The per-connection pattern (one workspace per `QuackConsumer`) covers the
/// sidecar endpoints, but batch decoders — the parallel decode path and the
/// bench harness — decode many differences with no connection to hang state
/// off. The pool hands out workspaces on demand and takes them back when the
/// guard drops, so steady-state decoding performs no inverse-sieve work and
/// no coefficient-buffer allocation.
#[derive(Debug)]
pub struct WorkspacePool<F: Field> {
    max_m: usize,
    idle: std::sync::Mutex<Vec<PoolEntry<F>>>,
}

#[derive(Debug)]
struct PoolEntry<F: Field> {
    workspace: NewtonWorkspace<F>,
    coeffs: Vec<F>,
}

impl<F: Field> WorkspacePool<F> {
    /// Creates a pool whose workspaces support locators of degree up to
    /// `max_m` (the quACK threshold `t`). No workspaces are built until
    /// first checkout.
    pub fn new(max_m: usize) -> Self {
        WorkspacePool {
            max_m,
            idle: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// The maximum locator degree supported by pooled workspaces.
    pub fn max_m(&self) -> usize {
        self.max_m
    }

    /// Number of workspaces currently checked in (idle).
    pub fn idle_len(&self) -> usize {
        self.idle.lock().expect("workspace pool poisoned").len()
    }

    /// Checks a workspace out of the pool, building one only if the pool is
    /// empty. Dropping the guard returns it.
    pub fn get(&self) -> PooledWorkspace<'_, F> {
        let entry = self
            .idle
            .lock()
            .expect("workspace pool poisoned")
            .pop()
            .unwrap_or_else(|| PoolEntry {
                workspace: NewtonWorkspace::new(self.max_m),
                coeffs: Vec::with_capacity(self.max_m),
            });
        PooledWorkspace {
            pool: self,
            entry: Some(entry),
        }
    }
}

/// A checked-out workspace; dereferences to [`NewtonWorkspace`] and returns
/// itself (and its coefficient buffer) to the pool on drop.
#[derive(Debug)]
pub struct PooledWorkspace<'a, F: Field> {
    pool: &'a WorkspacePool<F>,
    entry: Option<PoolEntry<F>>,
}

impl<F: Field> PooledWorkspace<'_, F> {
    /// Converts power-sum differences into locator coefficients using the
    /// pooled scratch buffer, then clones out of it.
    ///
    /// For allocation-free use, pair [`NewtonWorkspace::coefficients_into`]
    /// with [`Self::split`] instead.
    pub fn coefficients(&mut self, power_sums: &[F]) -> Vec<F> {
        let entry = self.entry.as_mut().expect("pooled workspace taken");
        entry
            .workspace
            .coefficients_into(power_sums, &mut entry.coeffs);
        entry.coeffs.clone()
    }

    /// Borrows the workspace and its reusable coefficient buffer together.
    pub fn split(&mut self) -> (&NewtonWorkspace<F>, &mut Vec<F>) {
        let entry = self.entry.as_mut().expect("pooled workspace taken");
        (&entry.workspace, &mut entry.coeffs)
    }
}

impl<F: Field> std::ops::Deref for PooledWorkspace<'_, F> {
    type Target = NewtonWorkspace<F>;

    fn deref(&self) -> &Self::Target {
        &self
            .entry
            .as_ref()
            .expect("pooled workspace taken")
            .workspace
    }
}

impl<F: Field> Drop for PooledWorkspace<'_, F> {
    fn drop(&mut self) {
        if let Some(entry) = self.entry.take() {
            // A poisoned pool just drops the workspace instead of panicking
            // in drop.
            if let Ok(mut idle) = self.pool.idle.lock() {
                idle.push(entry);
            }
        }
    }
}

/// One-shot convenience wrapper around [`NewtonWorkspace::coefficients`].
pub fn power_sums_to_coefficients<F: Field>(power_sums: &[F]) -> Vec<F> {
    NewtonWorkspace::new(power_sums.len()).coefficients(power_sums)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::{eval_monic, Poly};
    use crate::{Fp16, Fp32, Fp64, Monty64};

    /// Computes power sums of a multiset directly.
    fn power_sums<F: Field>(elements: &[F], m: usize) -> Vec<F> {
        (1..=m as u64)
            .map(|i| elements.iter().map(|x| x.pow(i)).sum())
            .collect()
    }

    fn check_roundtrip<F: Field>(raw: &[u64]) {
        let roots: Vec<F> = raw.iter().map(|&v| F::from_u64(v)).collect();
        let sums = power_sums(&roots, roots.len());
        let coeffs = power_sums_to_coefficients(&sums);
        let expected = Poly::from_roots(&roots);
        // expected is monic; compare non-leading coefficients.
        assert_eq!(
            coeffs,
            expected.coeffs()[..roots.len()].to_vec(),
            "roots {raw:?}"
        );
        for &r in &roots {
            assert_eq!(eval_monic(&coeffs, r), F::ZERO);
        }
    }

    #[test]
    fn empty_power_sums_give_empty_coefficients() {
        assert!(power_sums_to_coefficients::<Fp32>(&[]).is_empty());
    }

    #[test]
    fn single_missing_element_is_the_sum() {
        // Paper §3.1: with one missing element, the power-sum difference IS
        // the element; the locator is x - d_1.
        let d = Fp32::from_u64(77_777);
        let coeffs = power_sums_to_coefficients(&[d]);
        assert_eq!(coeffs, vec![-d]);
        assert_eq!(eval_monic(&coeffs, d), Fp32::ZERO);
    }

    #[test]
    fn roundtrip_distinct_roots_all_fields() {
        check_roundtrip::<Fp16>(&[3, 9, 65_000]);
        check_roundtrip::<Fp24>(&[1, 2, 16_000_000]);
        check_roundtrip::<Fp32>(&[42, 4_000_000_000, 123_456_789]);
        check_roundtrip::<Fp64>(&[7, u64::MAX - 100, 0xDEAD_BEEF]);
        check_roundtrip::<Monty64>(&[7, u64::MAX - 100, 0xDEAD_BEEF]);
    }
    use crate::Fp24;

    #[test]
    fn roundtrip_with_duplicates() {
        // Multiset semantics: duplicated roots must appear with multiplicity.
        check_roundtrip::<Fp32>(&[5, 5, 5]);
        check_roundtrip::<Fp32>(&[9, 9, 1000, 1000, 1000, 2]);
        check_roundtrip::<Fp16>(&[65_520, 65_520]);
    }

    #[test]
    fn roundtrip_larger_degree() {
        let raw: Vec<u64> = (0..40).map(|i| i * i * 1_234_567 + 3).collect();
        check_roundtrip::<Fp32>(&raw);
        check_roundtrip::<Fp64>(&raw);
    }

    #[test]
    fn workspace_reuse_matches_one_shot() {
        let ws = NewtonWorkspace::<Fp32>::new(8);
        assert_eq!(ws.max_m(), 8);
        for m in 0..=8usize {
            let sums: Vec<Fp32> = (1..=m as u64).map(|i| Fp32::from_u64(i * 17)).collect();
            assert_eq!(ws.coefficients(&sums), power_sums_to_coefficients(&sums));
        }
    }

    #[test]
    #[should_panic(expected = "workspace sized for")]
    fn oversized_request_panics() {
        let ws = NewtonWorkspace::<Fp32>::new(2);
        let _ = ws.coefficients(&[Fp32::ONE, Fp32::ONE, Fp32::ONE]);
    }

    #[test]
    fn inverse_sieve_is_correct() {
        let ws = NewtonWorkspace::<Fp16>::new(200);
        for k in 1..=200u64 {
            assert_eq!(
                ws.invs[k as usize - 1] * Fp16::from_u64(k),
                Fp16::ONE,
                "inv({k})"
            );
        }
    }

    #[test]
    fn zero_root_handled() {
        // The identifier 0 (or any id ≡ 0 mod p) can be missing.
        check_roundtrip::<Fp32>(&[0, 17]);
        check_roundtrip::<Fp32>(&[0, 0]);
    }

    #[test]
    fn coefficients_into_matches_and_reuses_buffer() {
        let ws = NewtonWorkspace::<Fp32>::new(8);
        let mut buf = Vec::new();
        for m in 0..=8usize {
            let sums: Vec<Fp32> = (1..=m as u64).map(|i| Fp32::from_u64(i * 31)).collect();
            ws.coefficients_into(&sums, &mut buf);
            assert_eq!(buf, ws.coefficients(&sums));
        }
    }

    #[test]
    fn pool_checkout_and_return() {
        let pool = WorkspacePool::<Fp32>::new(6);
        assert_eq!(pool.max_m(), 6);
        assert_eq!(pool.idle_len(), 0);
        let sums: Vec<Fp32> = (1..=4u64).map(|i| Fp32::from_u64(i * 17)).collect();
        let expected = power_sums_to_coefficients(&sums);
        {
            let mut a = pool.get();
            let mut b = pool.get();
            assert_eq!(a.coefficients(&sums), expected);
            let (ws, buf) = b.split();
            ws.coefficients_into(&sums, buf);
            assert_eq!(*buf, expected);
            assert_eq!(pool.idle_len(), 0);
        }
        assert_eq!(pool.idle_len(), 2);
        {
            // Reuse does not grow the pool.
            let _guard = pool.get();
            assert_eq!(pool.idle_len(), 1);
        }
        assert_eq!(pool.idle_len(), 2);
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool = WorkspacePool::<Fp64>::new(10);
        std::thread::scope(|scope| {
            for seed in 0..4u64 {
                let pool = &pool;
                scope.spawn(move || {
                    let sums: Vec<Fp64> =
                        (1..=10u64).map(|i| Fp64::from_u64(i * seed + 1)).collect();
                    let mut guard = pool.get();
                    assert_eq!(guard.coefficients(&sums), power_sums_to_coefficients(&sums));
                });
            }
        });
        assert!(pool.idle_len() >= 1);
    }
}
