//! Montgomery-form arithmetic over `F_(2^64 - 59)`.
//!
//! [`crate::Fp64`] reduces each product with a 128-bit remainder, which
//! compiles to a slow library call on most targets. Montgomery REDC replaces
//! it with two widening multiplies and a handful of adds — the classic
//! optimization the paper alludes to in "how do we further optimize the
//! algorithm and implementation of the quACK towards nearly-zero overhead
//! quACKing?" (§5). The `field_ops` bench compares the two; the quACK itself
//! is generic over [`Field`] so either can back a 64-bit sketch.
//!
//! Elements are stored as `a·R mod p` with `R = 2^64`. Addition/subtraction
//! operate directly on representatives; multiplication is `REDC(a·b)`;
//! conversion in multiplies by `R^2 mod p`, conversion out is `REDC(a)`.

use crate::field::impl_field_ops;
use crate::{Field, P64};

const P: u64 = P64;

/// `-p^{-1} mod 2^64`, by Newton–Hensel iteration (doubles correct bits each
/// step; 6 steps cover 64 bits).
const NEG_P_INV: u64 = {
    let mut inv: u64 = 1;
    let mut i = 0;
    while i < 6 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(P.wrapping_mul(inv)));
        i += 1;
    }
    inv.wrapping_neg()
};

/// `R^2 mod p = 2^128 mod p`, used to convert into Montgomery form.
const R2: u64 = {
    // 2^128 mod p == (u128::MAX mod p + 1) mod p
    let m = P as u128;
    let r = u128::MAX % m + 1;
    (r % m) as u64
};

/// `R mod p`, the Montgomery representation of one.
const R1: u64 = {
    let m = P as u128;
    ((u64::MAX as u128 + 1) % m) as u64
};

/// Montgomery reduction: computes `t · R^{-1} mod p` for `t < p·2^64`.
#[inline]
fn redc(t: u128) -> u64 {
    let t_lo = t as u64;
    let t_hi = (t >> 64) as u64;
    let m = t_lo.wrapping_mul(NEG_P_INV);
    let mp = m as u128 * P as u128;
    let mp_lo = mp as u64;
    let mp_hi = (mp >> 64) as u64;
    // t_lo + mp_lo ≡ 0 (mod 2^64) by construction of m; only the carry out
    // matters.
    let carry = (t_lo as u128 + mp_lo as u128 > u64::MAX as u128) as u64;
    let r = t_hi as u128 + mp_hi as u128 + carry as u128;
    // r < 2p, one conditional subtraction suffices.
    if r >= P as u128 {
        (r - P as u128) as u64
    } else {
        r as u64
    }
}

/// An element of `F_(2^64 - 59)` held in Montgomery form.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Monty64(u64);

impl Monty64 {
    #[inline]
    pub(crate) const fn raw_zero() -> Self {
        Monty64(0)
    }

    #[inline]
    pub(crate) const fn raw_one() -> Self {
        Monty64(R1)
    }

    #[inline]
    pub(crate) fn raw_add(self, rhs: Self) -> Self {
        let (sum, overflow) = self.0.overflowing_add(rhs.0);
        if overflow {
            Monty64(sum.wrapping_add(59))
        } else if sum >= P {
            Monty64(sum - P)
        } else {
            Monty64(sum)
        }
    }

    #[inline]
    pub(crate) fn raw_sub(self, rhs: Self) -> Self {
        let (diff, borrow) = self.0.overflowing_sub(rhs.0);
        Monty64(if borrow { diff.wrapping_add(P) } else { diff })
    }

    #[inline]
    pub(crate) fn raw_mul(self, rhs: Self) -> Self {
        Monty64(redc(self.0 as u128 * rhs.0 as u128))
    }
}

impl_field_ops!(Monty64);

impl Field for Monty64 {
    const MODULUS: u64 = P64;
    const BITS: u32 = 64;
    const ZERO: Self = Monty64(0);
    const ONE: Self = Monty64(R1);

    #[inline]
    fn from_u64(value: u64) -> Self {
        Monty64(redc((value % P) as u128 * R2 as u128))
    }

    #[inline]
    fn to_u64(self) -> u64 {
        redc(self.0 as u128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fp64;

    #[test]
    fn constants_are_consistent() {
        // p · (-p^{-1}) ≡ -1 (mod 2^64)
        assert_eq!(P.wrapping_mul(NEG_P_INV), u64::MAX);
        assert_eq!(R1 as u128, (1u128 << 64) % P as u128);
        assert_eq!(R2 as u128, ((R1 as u128) * (R1 as u128)) % P as u128);
    }

    #[test]
    fn roundtrip_conversion() {
        for v in [0u64, 1, 58, 59, P - 1, u64::MAX, 0xDEAD_BEEF_CAFE_BABE] {
            assert_eq!(Monty64::from_u64(v).to_u64(), v % P);
        }
    }

    #[test]
    fn matches_fp64_on_random_walk() {
        // Deterministic pseudo-random walk exercising all ops.
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut a_m = Monty64::from_u64(1);
        let mut a_f = Fp64::from_u64(1);
        for i in 0..5_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v_m = Monty64::from_u64(x);
            let v_f = Fp64::from_u64(x);
            match i % 3 {
                0 => {
                    a_m += v_m;
                    a_f += v_f;
                }
                1 => {
                    a_m -= v_m;
                    a_f -= v_f;
                }
                _ => {
                    a_m *= v_m;
                    a_f *= v_f;
                }
            }
            assert_eq!(a_m.to_u64(), a_f.to_u64(), "step {i}");
        }
    }

    #[test]
    fn inverse_roundtrip() {
        for v in [1u64, 2, 59, P - 1, 0x1234_5678_9ABC_DEF0] {
            let x = Monty64::from_u64(v);
            assert_eq!((x * x.inv()).to_u64(), 1);
        }
    }

    #[test]
    fn one_is_montgomery_one() {
        assert_eq!(Monty64::ONE.to_u64(), 1);
        assert_eq!(Monty64::from_u64(1), Monty64::ONE);
        let x = Monty64::from_u64(123_456_789);
        assert_eq!(x * Monty64::ONE, x);
    }
}
