//! `F_4294967291`: the field for 32-bit identifiers — the paper's default.
//!
//! The headline quACK configuration (n = 1000, t = 20, b = 32) stores 32-bit
//! power sums modulo `2^32 - 5` and yields a 0.000023% indeterminacy chance
//! (paper §1, §4). Products fit in `u64`.

use crate::field::impl_field_ops;
use crate::{Field, P32};

const P: u32 = P32 as u32;

/// An element of `F_4294967291` (32-bit identifiers, the paper's default).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Fp32(u32);

impl Fp32 {
    #[inline]
    pub(crate) const fn raw_zero() -> Self {
        Fp32(0)
    }

    #[inline]
    pub(crate) const fn raw_one() -> Self {
        Fp32(1)
    }

    #[inline]
    pub(crate) fn raw_add(self, rhs: Self) -> Self {
        let sum = self.0 as u64 + rhs.0 as u64;
        Fp32(if sum >= P as u64 {
            (sum - P as u64) as u32
        } else {
            sum as u32
        })
    }

    #[inline]
    pub(crate) fn raw_sub(self, rhs: Self) -> Self {
        let (diff, borrow) = self.0.overflowing_sub(rhs.0);
        Fp32(if borrow { diff.wrapping_add(P) } else { diff })
    }

    #[inline]
    pub(crate) fn raw_mul(self, rhs: Self) -> Self {
        Fp32(((self.0 as u64 * rhs.0 as u64) % P32) as u32)
    }
}

impl_field_ops!(Fp32);

impl Field for Fp32 {
    const MODULUS: u64 = P32;
    const BITS: u32 = 32;
    const ZERO: Self = Fp32(0);
    const ONE: Self = Fp32(1);

    #[inline]
    fn from_u64(value: u64) -> Self {
        Fp32((value % P32) as u32)
    }

    #[inline]
    fn to_u64(self) -> u64 {
        self.0 as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Fp32::from_u64(4_000_000_000);
        let b = Fp32::from_u64(123_456_789);
        assert_eq!(a + Fp32::ZERO, a);
        assert_eq!(a * Fp32::ONE, a);
        assert_eq!(a - a, Fp32::ZERO);
        assert_eq!(a * b, b * a);
        assert_eq!((a - b) + b, a);
        assert_eq!((a + b) * b, a * b + b * b);
    }

    #[test]
    fn mul_matches_u128_reference() {
        for a in (0..P32).step_by(0x0DEA_DBEE) {
            for b in (0..P32).step_by(0x1234_5671) {
                let expected = ((a as u128 * b as u128) % P32 as u128) as u64;
                assert_eq!((Fp32::from_u64(a) * Fp32::from_u64(b)).to_u64(), expected);
            }
        }
    }

    #[test]
    fn inverse_roundtrip() {
        for v in [1u64, 2, P32 - 1, 65_537, 2_147_483_648] {
            let x = Fp32::from_u64(v);
            assert_eq!(x * x.inv(), Fp32::ONE);
        }
    }

    #[test]
    fn aliasing_of_wide_identifiers() {
        // The five 32-bit values >= p alias onto [0, 5).
        for (id, residue) in [(P32, 0u64), (P32 + 1, 1), (u32::MAX as u64, 4)] {
            assert_eq!(Fp32::from_u64(id).to_u64(), residue);
        }
    }

    #[test]
    fn add_at_modulus_boundary() {
        let max = Fp32::from_u64(P32 - 1);
        assert_eq!((max + max).to_u64(), P32 - 2);
        assert_eq!((max + Fp32::ONE).to_u64(), 0);
    }
}
