//! Primality testing and prime search.
//!
//! The quACK performs "all power sum arithmetic … modulo the largest prime
//! that can be expressed in `b` bits" (paper §3.2). The moduli for the widths
//! the paper evaluates are hard-coded in this crate's root, but sidecar
//! deployments may negotiate other identifier widths, so we also expose a
//! deterministic Miller–Rabin test and [`largest_prime_below`].

/// Multiplies `a * b mod m` without overflow using 128-bit intermediates.
#[inline]
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Computes `base^exp mod m` by square-and-multiply.
#[inline]
pub fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    if m == 1 {
        return 0;
    }
    let mut acc: u64 = 1;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Witnesses sufficient for a *deterministic* Miller–Rabin test over all
/// 64-bit integers (Sinclair's 7-witness set).
const WITNESSES: [u64; 7] = [2, 325, 9_375, 28_178, 450_775, 9_780_504, 1_795_265_022];

/// Deterministic primality test for any `u64`.
///
/// Uses trial division by small primes followed by Miller–Rabin with a
/// witness set proven exhaustive for the full 64-bit range.
///
/// ```
/// use sidecar_galois::prime::is_prime;
/// assert!(is_prime(65_521));
/// assert!(!is_prime(65_522));
/// ```
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // n - 1 = d * 2^s with d odd.
    let s = (n - 1).trailing_zeros();
    let d = (n - 1) >> s;
    'witness: for &a in &WITNESSES {
        let a = a % n;
        if a == 0 {
            continue;
        }
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..s {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Returns the largest prime strictly less than `bound`, or `None` if there
/// is none (i.e. `bound <= 2`).
///
/// ```
/// use sidecar_galois::prime::largest_prime_below;
/// assert_eq!(largest_prime_below(1 << 16), Some(65_521));
/// assert_eq!(largest_prime_below(3), Some(2));
/// assert_eq!(largest_prime_below(2), None);
/// ```
pub fn largest_prime_below(bound: u64) -> Option<u64> {
    let mut candidate = bound.checked_sub(1)?;
    while candidate >= 2 {
        if is_prime(candidate) {
            return Some(candidate);
        }
        candidate -= 1;
    }
    None
}

/// Finds the smallest primitive root (generator of the multiplicative group)
/// of the prime field `F_p`.
///
/// Only intended for moduli small enough that factoring `p - 1` by trial
/// division is fast; the 16-bit table construction uses it.
///
/// # Panics
///
/// Panics if `p < 3` or `p` is not prime.
pub fn primitive_root(p: u64) -> u64 {
    assert!(
        p >= 3 && is_prime(p),
        "primitive_root requires an odd prime"
    );
    let factors = distinct_prime_factors(p - 1);
    'g: for g in 2..p {
        for &q in &factors {
            if pow_mod(g, (p - 1) / q, p) == 1 {
                continue 'g;
            }
        }
        return g;
    }
    unreachable!("every prime field has a primitive root");
}

/// Returns the distinct prime factors of `n` by trial division.
fn distinct_prime_factors(mut n: u64) -> Vec<u64> {
    let mut factors = Vec::new();
    let mut d = 2u64;
    while d.saturating_mul(d) <= n {
        if n.is_multiple_of(d) {
            factors.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        factors.push(n);
    }
    factors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let primes: Vec<u64> = (0..100).filter(|&n| is_prime(n)).collect();
        assert_eq!(
            primes,
            vec![
                2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79,
                83, 89, 97
            ]
        );
    }

    #[test]
    fn known_large_primes() {
        assert!(is_prime(4_294_967_291)); // 2^32 - 5
        assert!(is_prime(16_777_213)); // 2^24 - 3
        assert!(is_prime(18_446_744_073_709_551_557)); // 2^64 - 59
        assert!(!is_prime(4_294_967_295)); // 2^32 - 1 = 3·5·17·257·65537
        assert!(!is_prime(18_446_744_073_709_551_615)); // 2^64 - 1
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Classic pseudoprimes that fool weaker tests.
        for n in [
            561u64,
            1105,
            1729,
            2465,
            2821,
            6601,
            8911,
            825_265,
            321_197_185,
        ] {
            assert!(!is_prime(n), "{n} is a Carmichael number");
        }
    }

    #[test]
    fn largest_prime_below_edges() {
        assert_eq!(largest_prime_below(0), None);
        assert_eq!(largest_prime_below(1), None);
        assert_eq!(largest_prime_below(2), None);
        assert_eq!(largest_prime_below(3), Some(2));
        assert_eq!(largest_prime_below(1 << 8), Some(251));
    }

    #[test]
    fn primitive_root_of_65521() {
        let g = primitive_root(65_521);
        // The root must have full order: g^((p-1)/q) != 1 for all prime q | p-1.
        // 65520 = 2^4 · 3^2 · 5 · 7 · 13.
        for q in [2u64, 3, 5, 7, 13] {
            assert_ne!(pow_mod(g, 65_520 / q, 65_521), 1);
        }
        assert_eq!(pow_mod(g, 65_520, 65_521), 1);
    }

    #[test]
    fn primitive_root_small_fields() {
        assert_eq!(primitive_root(3), 2);
        assert_eq!(primitive_root(5), 2);
        assert_eq!(primitive_root(7), 3);
        assert_eq!(primitive_root(23), 5);
    }

    #[test]
    fn pow_mod_matches_naive() {
        for base in [0u64, 1, 2, 7, 65_520] {
            for exp in 0..20u64 {
                let mut naive = 1u64;
                for _ in 0..exp {
                    naive = naive * base % 65_521;
                }
                assert_eq!(pow_mod(base, exp, 65_521), naive);
            }
        }
    }
}
