//! `F_16777213`: the field for 24-bit identifiers.
//!
//! 24-bit identifiers trade quACK size against collision probability (paper
//! Table 3: 6.0e-05 at n = 1000). Products fit comfortably in `u64`, so
//! multiplication is a widening multiply plus one hardware remainder.

use crate::field::impl_field_ops;
use crate::{Field, P24};

const P: u32 = P24 as u32;

/// An element of `F_16777213` (24-bit identifiers, paper §4.2).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Fp24(u32);

impl Fp24 {
    #[inline]
    pub(crate) const fn raw_zero() -> Self {
        Fp24(0)
    }

    #[inline]
    pub(crate) const fn raw_one() -> Self {
        Fp24(1)
    }

    #[inline]
    pub(crate) fn raw_add(self, rhs: Self) -> Self {
        let sum = self.0 + rhs.0; // both < 2^24, cannot overflow u32
        Fp24(if sum >= P { sum - P } else { sum })
    }

    #[inline]
    pub(crate) fn raw_sub(self, rhs: Self) -> Self {
        let (diff, borrow) = self.0.overflowing_sub(rhs.0);
        Fp24(if borrow { diff.wrapping_add(P) } else { diff })
    }

    #[inline]
    pub(crate) fn raw_mul(self, rhs: Self) -> Self {
        Fp24(((self.0 as u64 * rhs.0 as u64) % P24) as u32)
    }
}

impl_field_ops!(Fp24);

impl Field for Fp24 {
    const MODULUS: u64 = P24;
    const BITS: u32 = 24;
    const ZERO: Self = Fp24(0);
    const ONE: Self = Fp24(1);

    #[inline]
    fn from_u64(value: u64) -> Self {
        Fp24((value % P24) as u32)
    }

    #[inline]
    fn to_u64(self) -> u64 {
        self.0 as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Fp24::from_u64(12_345_678);
        let b = Fp24::from_u64(16_000_000);
        assert_eq!(a + Fp24::ZERO, a);
        assert_eq!(a * Fp24::ONE, a);
        assert_eq!(a - a, Fp24::ZERO);
        assert_eq!(a + b, b + a);
        assert_eq!(a * b, b * a);
        assert_eq!((a + b) * a, a * a + b * a);
    }

    #[test]
    fn mul_matches_u128_reference() {
        for a in (0..P24).step_by(987_653) {
            for b in (0..P24).step_by(1_234_577) {
                let expected = ((a as u128 * b as u128) % P24 as u128) as u64;
                assert_eq!((Fp24::from_u64(a) * Fp24::from_u64(b)).to_u64(), expected);
            }
        }
    }

    #[test]
    fn inverse_roundtrip() {
        for v in [1u64, 2, 3, P24 - 1, 8_388_608] {
            let x = Fp24::from_u64(v);
            assert_eq!(x * x.inv(), Fp24::ONE);
        }
    }

    #[test]
    fn aliasing_of_wide_identifiers() {
        // 24-bit identifiers in [p, 2^24) reduce onto [0, 3).
        assert_eq!(Fp24::from_u64((1 << 24) - 1).to_u64(), 2);
        assert_eq!(Fp24::from_u64(P24).to_u64(), 0);
    }
}
