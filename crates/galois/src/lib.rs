//! Prime-field arithmetic and polynomial machinery for the quACK power-sum
//! sketch ([Sidecar, HotNets '22]).
//!
//! The quACK represents a multiset of `b`-bit packet identifiers by its first
//! `t` power sums modulo the largest prime `p < 2^b` (paper §3.2). Decoding
//! converts power-sum differences into the coefficients of an error-locator
//! polynomial via Newton's identities and then finds that polynomial's roots.
//! This crate provides everything below the sketch itself:
//!
//! * [`Field`] — a common interface over concrete prime fields.
//! * [`Fp16`], [`Fp24`], [`Fp32`], [`Fp64`] — fields for the identifier
//!   widths evaluated in the paper (16/24/32 bits) plus a 64-bit extension.
//!   Each width uses width-appropriate arithmetic, mirroring the paper's
//!   observation (§4.2) that "b determines which hardware instructions and,
//!   in the 16-bit case, pre-computation optimizations the arithmetic can
//!   use": [`Fp16`] multiplies through discrete exp/log tables, [`Fp24`] and
//!   [`Fp32`] through `u64` widening, and [`Fp64`] through `u128` widening.
//! * [`Monty64`] — a Montgomery-form alternative to [`Fp64`] that avoids the
//!   `u128` modulo in the hot loop (an ablation target; see the `field_ops`
//!   bench).
//! * [`batch`] — lane-batched power-sum accumulation and strength-reduced
//!   power ladders: the per-packet hot path behind
//!   [`Field::fold_power_sums`].
//! * [`poly`] — Horner evaluation, synthetic deflation, and dense polynomial
//!   helpers used by the decoder and its tests.
//! * [`newton`] — Newton's identities: power sums → elementary symmetric
//!   polynomial coefficients.
//! * [`prime`] — deterministic Miller–Rabin and `largest_prime_below`,
//!   used to validate the hard-coded moduli and to derive moduli for
//!   non-standard widths.
//!
//! [Sidecar, HotNets '22]: https://doi.org/10.1145/3563766.3564113

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod factor;
pub mod field;
pub mod newton;
pub mod poly;
pub mod prime;

mod fp16;
mod fp24;
mod fp32;
mod fp64;
mod monty;

pub use batch::{PowerTable, LANES};
pub use factor::find_roots;
pub use field::Field;
pub use fp16::{Fp16, Fp16Table};
pub use fp24::Fp24;
pub use fp32::Fp32;
pub use fp64::Fp64;
pub use monty::Monty64;
pub use newton::{power_sums_to_coefficients, NewtonWorkspace, PooledWorkspace, WorkspacePool};
pub use poly::Poly;

/// The largest prime representable in 16 bits: `2^16 - 15`.
pub const P16: u64 = 65_521;
/// The largest prime representable in 24 bits: `2^24 - 3`.
pub const P24: u64 = 16_777_213;
/// The largest prime representable in 32 bits: `2^32 - 5`.
pub const P32: u64 = 4_294_967_291;
/// The largest prime representable in 64 bits: `2^64 - 59`.
pub const P64: u64 = 18_446_744_073_709_551_557;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::{is_prime, largest_prime_below};

    #[test]
    fn moduli_are_the_largest_primes_below_their_width() {
        assert_eq!(largest_prime_below(1 << 16), Some(P16));
        assert_eq!(largest_prime_below(1 << 24), Some(P24));
        assert_eq!(largest_prime_below(1 << 32), Some(P32));
        // 2^64 overflows `largest_prime_below`'s bound argument; check
        // primality of P64 and that everything above it is composite.
        assert!(is_prime(P64));
        let mut v = P64 + 1;
        loop {
            assert!(!is_prime(v), "{v} would be a larger 64-bit prime");
            if v == u64::MAX {
                break;
            }
            v += 1;
        }
    }
}
