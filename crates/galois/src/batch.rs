//! Batched power-sum accumulation: the quACK's per-packet hot path.
//!
//! The power-sum quACK folds every forwarded packet into `t` running sums
//! (paper §3.2), so the sketch's scaling ceiling is how fast
//! `sums[i] ± x^(i+1)` can run. The scalar update is a *serial* chain —
//! `pow *= x` has a data dependency on itself, so each of the `t` rungs
//! waits out a full multiply latency. This module restructures the work two
//! ways:
//!
//! * **Row-major batching** ([`fold_converted`]): accumulate a whole batch
//!   of identifiers rung by rung. Each rung multiplies up to [`LANES`]
//!   *independent* running powers, so the CPU pipelines (and, for the
//!   narrow fields, vectorizes) the multiplies instead of serializing them.
//!   Identifiers are converted into the field representation once, before
//!   the first rung — for Montgomery-form fields they stay in the
//!   Montgomery domain across the entire batch.
//! * **Strength-reduced ladders** ([`PowerTable`]): for a single identifier
//!   the powers `x, x², x³, …` are generated from a small precomputed
//!   stride table as four interleaved chains (`x^(i+4) = x^i · x⁴`),
//!   quartering the dependency depth versus the naive Horner walk.
//!
//! Fields can override [`Field::fold_power_sums`] to route the fold through
//! a faster internal domain; [`fold_via`] implements the general
//! cross-domain fold used by `Fp64` (accumulate with Montgomery `REDC`
//! multiplies, convert only the `t` rung totals back per chunk).

use crate::Field;

/// Batch width: identifiers folded per chunk. Chosen so the per-chunk
/// scratch (`2 × LANES` field elements) stays comfortably inside one page
/// of stack and the compiler can keep the rung loop in registers.
pub const LANES: usize = 32;

#[inline]
fn apply<F: Field>(sum: &mut F, row: F, negate: bool) {
    if negate {
        *sum -= row;
    } else {
        *sum += row;
    }
}

/// Precomputed stride table for the powers of a single field element.
///
/// Holds `x, x², x³, x⁴`; consecutive powers are then generated as four
/// independent chains (`x^(i+4) = x^i · x⁴`), so the dependency depth of
/// producing `x¹..x^t` drops from `t` sequential multiplies to `⌈t/4⌉`.
/// Instantiated per field (`Fp16`/`Fp24`/`Fp32`/`Fp64`/`Monty64`) by the
/// batch fold and the hot-path benchmarks.
#[derive(Clone, Copy, Debug)]
pub struct PowerTable<F: Field> {
    /// `strides[k] = x^(k+1)` for `k < 4`.
    strides: [F; 4],
}

impl<F: Field> PowerTable<F> {
    /// Precomputes the stride table for `x`.
    #[inline]
    pub fn new(x: F) -> Self {
        let x2 = x * x;
        PowerTable {
            strides: [x, x2, x2 * x, x2 * x2],
        }
    }

    /// The base element `x`.
    #[inline]
    pub fn base(&self) -> F {
        self.strides[0]
    }

    /// Fills `out[i] = x^(i+1)` using the four-chain ladder.
    pub fn fill(&self, out: &mut [F]) {
        let s4 = self.strides[3];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = if i < 4 {
                self.strides[i]
            } else {
                // Safe: out[i - 4] was written on an earlier iteration.
                s4
            };
        }
        for i in 4..out.len() {
            out[i] = out[i - 4] * s4;
        }
    }

    /// Folds `± x^(i+1)` into `sums[i]` for every rung, without a scratch
    /// buffer: a four-element ring carries the ladder state.
    pub fn fold_into(&self, sums: &mut [F], negate: bool) {
        let s4 = self.strides[3];
        let mut ring = self.strides;
        for (i, sum) in sums.iter_mut().enumerate() {
            if i >= 4 {
                let next = ring[i & 3] * s4;
                ring[i & 3] = next;
            }
            apply(sum, ring[i & 3], negate);
        }
    }
}

/// Folds a batch of already-converted field elements into running power
/// sums: `sums[i] ± Σ_j xs[j]^(i+1)`.
///
/// This is the batched Horner ladder: rung `i+1` reuses rung `i`'s powers
/// (one multiply per lane instead of an exponentiation — strength
/// reduction), and the lanes are independent, so every rung is a burst of
/// parallel multiplies. `xs.len()` must be at most [`LANES`].
pub fn fold_converted<F: Field>(sums: &mut [F], xs: &[F], negate: bool) {
    assert!(xs.len() <= LANES, "batch chunk exceeds LANES");
    match xs.len() {
        0 => return,
        1 => return PowerTable::new(xs[0]).fold_into(sums, negate),
        _ => {}
    }
    let mut pows = [F::ZERO; LANES];
    let pows = &mut pows[..xs.len()];
    pows.copy_from_slice(xs);
    let mut rungs = sums.iter_mut();
    if let Some(first) = rungs.next() {
        let row: F = pows.iter().copied().sum();
        apply(first, row, negate);
    }
    for sum in rungs {
        let mut row = F::ZERO;
        for (p, &x) in pows.iter_mut().zip(xs.iter()) {
            *p *= x;
            row += *p;
        }
        apply(sum, row, negate);
    }
}

/// Folds raw identifiers into running power sums, chunking by [`LANES`]
/// and hoisting the `u64 → F` conversion out of the rung loop (one
/// conversion per identifier per batch, exactly as in the scalar path —
/// but never repeated per rung).
pub fn fold_power_sums_generic<F: Field>(sums: &mut [F], ids: &[u64], negate: bool) {
    for chunk in ids.chunks(LANES) {
        let mut xs = [F::ZERO; LANES];
        for (slot, &id) in xs.iter_mut().zip(chunk) {
            *slot = F::from_u64(id);
        }
        fold_converted(sums, &xs[..chunk.len()], negate);
    }
}

/// Cross-domain fold: accumulates in field `D` (same modulus, faster
/// multiply) and converts only the per-rung totals back into `F`.
///
/// `Fp64` routes its batches through [`crate::Monty64`] this way: each
/// identifier is converted into the Montgomery domain once, all
/// `LANES × t` rung multiplies are Montgomery `REDC`s, and only `t` values
/// per chunk pay the conversion out — amortized to `t / LANES` extra
/// multiplies per identifier.
pub fn fold_via<F: Field, D: Field>(sums: &mut [F], ids: &[u64], negate: bool) {
    debug_assert_eq!(
        F::MODULUS,
        D::MODULUS,
        "cross-domain fold needs equal moduli"
    );
    for chunk in ids.chunks(LANES) {
        let mut xs = [D::ZERO; LANES];
        for (slot, &id) in xs.iter_mut().zip(chunk) {
            *slot = D::from_u64(id);
        }
        let xs = &xs[..chunk.len()];
        let mut pows = [D::ZERO; LANES];
        let pows = &mut pows[..xs.len()];
        pows.copy_from_slice(xs);
        let mut rungs = sums.iter_mut();
        if let Some(first) = rungs.next() {
            let row: D = pows.iter().copied().sum();
            apply(first, F::from_u64(row.to_u64()), negate);
        }
        for sum in rungs {
            let mut row = D::ZERO;
            for (p, &x) in pows.iter_mut().zip(xs.iter()) {
                *p *= x;
                row += *p;
            }
            apply(sum, F::from_u64(row.to_u64()), negate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fp16, Fp24, Fp32, Fp64, Monty64};

    /// Scalar reference: the naive per-identifier walk.
    fn scalar_fold<F: Field>(sums: &mut [F], ids: &[u64], negate: bool) {
        for &id in ids {
            let x = F::from_u64(id);
            let mut pow = F::ONE;
            for sum in sums.iter_mut() {
                pow *= x;
                apply(sum, pow, negate);
            }
        }
    }

    fn ids(n: usize, seed: u64) -> Vec<u64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state
            })
            .collect()
    }

    fn check_field<F: Field>() {
        for n in [0usize, 1, 2, 3, 31, 32, 33, 100] {
            let ids = ids(n, 0xB47C + n as u64);
            for negate in [false, true] {
                for t in [1usize, 4, 5, 20] {
                    let mut expect = vec![F::ZERO; t];
                    let mut got = vec![F::ZERO; t];
                    scalar_fold(&mut expect, &ids, negate);
                    F::fold_power_sums(&mut got, &ids, negate);
                    assert_eq!(expect, got, "n={n} t={t} negate={negate}");
                }
            }
        }
    }

    #[test]
    fn batched_fold_matches_scalar_all_fields() {
        check_field::<Fp16>();
        check_field::<Fp24>();
        check_field::<Fp32>();
        check_field::<Fp64>();
        check_field::<Monty64>();
    }

    #[test]
    fn power_table_matches_pow() {
        fn check<F: Field>(raw: u64) {
            let x = F::from_u64(raw);
            let table = PowerTable::new(x);
            assert_eq!(table.base(), x);
            let mut out = vec![F::ZERO; 23];
            table.fill(&mut out);
            for (i, &p) in out.iter().enumerate() {
                assert_eq!(p, x.pow(i as u64 + 1), "power {}", i + 1);
            }
            let mut sums = vec![F::ZERO; 23];
            table.fold_into(&mut sums, false);
            assert_eq!(sums, out);
            table.fold_into(&mut sums, true);
            assert!(sums.iter().all(|s| s.is_zero()));
        }
        for raw in [0u64, 1, 2, 0xDEAD_BEEF, u64::MAX - 3] {
            check::<Fp16>(raw);
            check::<Fp24>(raw);
            check::<Fp32>(raw);
            check::<Fp64>(raw);
            check::<Monty64>(raw);
        }
    }

    #[test]
    fn power_table_short_outputs() {
        let x = Fp32::from_u64(7);
        let table = PowerTable::new(x);
        for len in 0..4usize {
            let mut out = vec![Fp32::ZERO; len];
            table.fill(&mut out);
            for (i, &p) in out.iter().enumerate() {
                assert_eq!(p, x.pow(i as u64 + 1));
            }
        }
    }

    #[test]
    fn cross_domain_fold_matches_native() {
        let ids = ids(77, 0x5EED);
        let mut native = vec![Fp64::ZERO; 20];
        let mut cross = vec![Fp64::ZERO; 20];
        fold_power_sums_generic(&mut native, &ids, false);
        fold_via::<Fp64, Monty64>(&mut cross, &ids, false);
        assert_eq!(native, cross);
        fold_via::<Fp64, Monty64>(&mut cross, &ids, true);
        assert!(cross.iter().all(|s| s.is_zero()));
    }

    #[test]
    #[should_panic(expected = "exceeds LANES")]
    fn oversized_chunk_rejected() {
        let xs = vec![Fp32::ONE; LANES + 1];
        let mut sums = vec![Fp32::ZERO; 4];
        fold_converted(&mut sums, &xs, false);
    }
}
