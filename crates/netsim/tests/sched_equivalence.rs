//! Scheduler equivalence: the timer wheel must replay every scenario
//! bit-identically to the legacy binary heap.
//!
//! The world's determinism contract is that events execute in strict
//! `(time, insertion sequence)` order. The heap implements that order
//! directly, so it serves as the oracle: each generated scenario runs once
//! per backend (selected via [`set_thread_scheduler`], no topology code
//! changes) and everything observable — arrival sequences, final clock,
//! event count, link stats, the rendered event trace, and the metrics
//! snapshot — must match byte for byte. The committed golden fixtures add a
//! third leg: both backends must also still reproduce the committed
//! renderings, pinning the order across releases, not just across backends.

use proptest::prelude::*;
use sidecar_netsim::fault::FaultPlan;
use sidecar_netsim::link::{LinkConfig, LossModel};
use sidecar_netsim::node::NodeId;
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_netsim::transport::{
    CcAlgorithm, ReceiverConfig, ReceiverNode, SenderConfig, SenderNode,
};
use sidecar_netsim::world::World;
use sidecar_netsim::{set_thread_scheduler, Forwarder, SchedulerKind};

/// Everything observable about one finished run.
#[derive(PartialEq, Debug)]
struct RunDigest {
    now: SimTime,
    events: u64,
    delivered: u64,
    received: u64,
    #[cfg(feature = "obs")]
    trace: String,
    #[cfg(feature = "obs")]
    metrics: String,
}

/// Sender ⇄ forwarder ⇄ receiver chain (the topology every protocol
/// scenario reduces to), with optional blackout + crash faults — the full
/// event-kind mix: arrivals, timers (incl. cancellations via the transport
/// guards), and fault edges.
fn run_chain(
    kind: SchedulerKind,
    seed: u64,
    total: u64,
    loss_milli: u64,
    delay_ms: u64,
    with_faults: bool,
) -> RunDigest {
    set_thread_scheduler(Some(kind));
    let mut w = World::new(seed);
    set_thread_scheduler(None);
    assert_eq!(w.scheduler(), kind);

    let s = w.add_node(SenderNode::boxed(SenderConfig {
        total_packets: Some(total),
        cc: CcAlgorithm::NewReno,
        ..SenderConfig::default()
    }));
    let fwd = w.add_node(Forwarder::boxed());
    let r = w.add_node(ReceiverNode::boxed(ReceiverConfig::default()));
    let lossy = LinkConfig {
        rate_bps: 10_000_000,
        delay: SimDuration::from_millis(delay_ms),
        loss: if loss_milli == 0 {
            LossModel::None
        } else {
            LossModel::Bernoulli {
                p: loss_milli as f64 / 1000.0,
            }
        },
        ..LinkConfig::default()
    };
    let clean = LinkConfig {
        rate_bps: 10_000_000,
        delay: SimDuration::from_millis(delay_ms),
        ..LinkConfig::default()
    };
    w.connect(s, fwd, lossy, clean.clone());
    w.connect(fwd, r, clean.clone(), clean);
    if with_faults {
        let ms = SimDuration::from_millis;
        let at = |m: u64| SimTime::ZERO + ms(m);
        w.install_faults(
            FaultPlan::new(seed ^ 0x5eed)
                .blackout_between(fwd, NodeId(2), at(150), at(250))
                .crash_restart(fwd, at(400), at(500)),
        );
    }
    w.run_until(SimTime::ZERO + SimDuration::from_secs(30));
    RunDigest {
        now: w.now(),
        events: w.events_processed(),
        delivered: w.link_stats(s, sidecar_netsim::IfaceId(0)).delivered,
        received: w.node_as::<ReceiverNode>(r).stats().received_packets,
        #[cfg(feature = "obs")]
        trace: w.obs().trace.render(),
        #[cfg(feature = "obs")]
        metrics: w.obs().metrics.snapshot().encode(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated chains replay identically under both backends.
    #[test]
    fn wheel_matches_heap_oracle(
        seed in 0u64..1_000_000,
        total in 50u64..400,
        loss_milli in 0u64..80,
        delay_ms in 1u64..30,
        with_faults in proptest::bool::weighted(0.5),
    ) {
        let wheel = run_chain(SchedulerKind::Wheel, seed, total, loss_milli, delay_ms, with_faults);
        let heap = run_chain(SchedulerKind::Heap, seed, total, loss_milli, delay_ms, with_faults);
        prop_assert_eq!(wheel, heap);
    }
}

/// The committed golden fixtures were regenerated on the wheel (the
/// default); the heap must reproduce them too, so the fixtures pin one
/// event order for both backends.
#[cfg(feature = "obs")]
#[test]
fn heap_reproduces_committed_goldens() {
    let fixture = |name: &str| {
        let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/fixtures")
            .join(name);
        std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()))
    };
    // Exactly the two scenarios of the `golden_trace` suite.
    let lossy = run_chain(SchedulerKind::Heap, 42, 300, 20, 10, false);
    assert_eq!(lossy.trace, fixture("golden_lossy.trace"));
    assert_eq!(lossy.metrics, fixture("golden_lossy.metrics"));
    let blackout = run_chain(SchedulerKind::Heap, 7, 400, 0, 10, true);
    assert_eq!(blackout.trace, fixture("golden_blackout.trace"));
    assert_eq!(blackout.metrics, fixture("golden_blackout.metrics"));
}
