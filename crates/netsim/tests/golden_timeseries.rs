//! Golden time-series regression test for the driver-clocked sampler.
//!
//! A seeded lossy chain is driven through [`run_sampled`] and the rendered
//! [`TimeSeries`](sidecar_obs::TimeSeries) is compared byte-for-byte
//! against a committed fixture. Because `run_sampled` snapshots at exact
//! `start + k·interval` sim-time ticks and the simulator is deterministic
//! in `(topology, seed)`, the windowed rates are stable across machines
//! and runs; any diff means the sampling contract, the instrumentation
//! points, or the series encoding changed, and that change must be
//! reviewed.
//!
//! A second (fixture-free) test runs the same chain under a
//! blackout+crash-restart fault plan: node restarts must not corrupt the
//! series — the world-owned registry survives node crashes, so the series
//! stays monotone, validates, and replays identically.
//!
//! To regenerate the fixture after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p sidecar-netsim --test golden_timeseries
//! git diff crates/netsim/tests/fixtures/   # review, then commit
//! ```
#![cfg(feature = "obs")]

use sidecar_netsim::fault::FaultPlan;
use sidecar_netsim::link::{LinkConfig, LossModel};
use sidecar_netsim::node::NodeId;
use sidecar_netsim::telemetry::run_sampled;
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_netsim::transport::{
    CcAlgorithm, ReceiverConfig, ReceiverNode, SenderConfig, SenderNode,
};
use sidecar_netsim::world::World;
use sidecar_netsim::Forwarder;
use sidecar_obs::Sampler;
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Compares `got` against the named fixture, or rewrites the fixture when
/// `UPDATE_GOLDEN` is set.
fn assert_golden(name: &str, got: &str) {
    let path = fixture_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        eprintln!("updated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "sampled time-series diverged from {} — if intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff",
        path.display()
    );
}

/// Sender ⇄ forwarder ⇄ receiver over moderate 10 Mbit/s links — the same
/// chain the golden-trace tests pin, so the two fixture families watch the
/// same world through different encodings.
fn chain_world(seed: u64, total: u64, loss: LossModel) -> (World, NodeId) {
    let mut w = World::new(seed);
    let s = w.add_node(SenderNode::boxed(SenderConfig {
        total_packets: Some(total),
        cc: CcAlgorithm::NewReno,
        ..SenderConfig::default()
    }));
    let fwd = w.add_node(Forwarder::boxed());
    let r = w.add_node(ReceiverNode::boxed(ReceiverConfig::default()));
    let lossy = LinkConfig {
        rate_bps: 10_000_000,
        delay: SimDuration::from_millis(10),
        loss,
        ..LinkConfig::default()
    };
    let clean = LinkConfig {
        rate_bps: 10_000_000,
        delay: SimDuration::from_millis(10),
        ..LinkConfig::default()
    };
    w.connect(s, fwd, lossy, clean.clone());
    w.connect(fwd, r, clean.clone(), clean);
    (w, fwd)
}

/// Samples a world every 250 ms out to `horizon_secs`, returning the
/// rendered series.
fn sample_chain(mut w: World, horizon_secs: u64) -> String {
    let registry = w.obs().metrics.clone();
    let mut sampler = Sampler::with_capacity(256);
    let end = run_sampled(
        &mut w,
        &registry,
        SimTime::ZERO + SimDuration::from_secs(horizon_secs),
        SimDuration::from_millis(250),
        &mut sampler,
    );
    assert_eq!(end, SimTime::ZERO + SimDuration::from_secs(horizon_secs));
    sampler.series().render()
}

#[test]
fn lossy_chain_series_matches_golden() {
    let run = || {
        let (w, _) = chain_world(42, 300, LossModel::Bernoulli { p: 0.02 });
        sample_chain(w, 30)
    };
    let got = run();
    let series = sidecar_obs::TimeSeries::parse(&got).expect("rendered series parses");
    series.validate().expect("rendered series validates");
    assert!(
        series.len() > 2,
        "a 300-packet transfer spans several 250 ms windows:\n{got}"
    );
    // Determinism first: the golden file is only meaningful if two
    // in-process replays agree byte-for-byte.
    assert_eq!(run(), got);
    assert_golden("golden_lossy.timeseries", &got);
}

#[test]
fn crash_restart_series_stays_valid_and_deterministic() {
    let ms = SimDuration::from_millis;
    let at = |m: u64| SimTime::ZERO + ms(m);
    let run = || {
        let (mut w, fwd) = chain_world(7, 400, LossModel::None);
        let plan = FaultPlan::new(99)
            .blackout_between(fwd, NodeId(2), at(150), at(250))
            .crash_restart(fwd, at(400), at(500));
        w.install_faults(plan);
        sample_chain(w, 30)
    };
    let got = run();
    let series = sidecar_obs::TimeSeries::parse(&got).expect("rendered series parses");
    // The registry is world-owned: a node crash+restart must not reset it,
    // so the series stays strictly monotone and validates — no negative
    // rates, no duplicate ticks, no restart glitch.
    series.validate().expect("faulted series validates");
    assert!(series.len() > 2, "faulted run still spans windows:\n{got}");
    assert_eq!(run(), got, "faulted sampled replay must be byte-stable");
}
