//! Integration tests for the deterministic fault-injection layer
//! (`sidecar_netsim::fault`): scripted crashes, blackouts, and
//! control-channel mangling, all reproducible from `(topology, seed, plan)`.

use sidecar_netsim::fault::FaultPlan;
use sidecar_netsim::link::LinkConfig;
use sidecar_netsim::node::{Context, IfaceId, NodeId};
use sidecar_netsim::packet::{FlowId, Packet, Payload};
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_netsim::trace::{DropReason, TraceEvent};
use sidecar_netsim::transport::{
    CcAlgorithm, ReceiverConfig, ReceiverNode, SenderConfig, SenderNode,
};
use sidecar_netsim::world::World;
use sidecar_netsim::{Forwarder, Node};
use std::any::Any;

const SEC: u64 = 1_000_000_000;

fn t(ns: u64) -> SimTime {
    SimTime::from_nanos(ns)
}

/// Sender ⇄ forwarder ⇄ receiver, the topology every protocol scenario
/// uses. 10 Mbps links keep multi-hundred-packet transfers running for a
/// second or more so mid-flow fault windows actually land mid-flow, and the
/// light random loss makes the world seed observable in traces.
fn chain_world(seed: u64, total: u64) -> (World, NodeId, NodeId, NodeId) {
    let mut w = World::new(seed);
    let s = w.add_node(SenderNode::boxed(SenderConfig {
        total_packets: Some(total),
        cc: CcAlgorithm::NewReno,
        ..SenderConfig::default()
    }));
    let fwd = w.add_node(Forwarder::boxed());
    let r = w.add_node(ReceiverNode::boxed(ReceiverConfig::default()));
    let link = LinkConfig {
        rate_bps: 10_000_000,
        delay: SimDuration::from_millis(10),
        loss: sidecar_netsim::link::LossModel::Bernoulli { p: 0.01 },
        ..LinkConfig::default()
    };
    w.connect(s, fwd, link.clone(), link.clone());
    w.connect(fwd, r, link.clone(), link);
    (w, s, fwd, r)
}

/// Emits one fixed-body sidecar packet per millisecond plus one data packet,
/// so control faults have something to chew on while the data path stays
/// observable.
struct ControlBlaster {
    total: u64,
    sent: u64,
}

impl Node for ControlBlaster {
    fn on_start(&mut self, ctx: &mut Context) {
        ctx.set_timer_after(SimDuration::ZERO, 0);
    }

    fn on_packet(&mut self, _iface: IfaceId, _packet: Packet, _ctx: &mut Context) {}

    fn on_timer(&mut self, _token: u64, ctx: &mut Context) {
        if self.sent < self.total {
            let now = ctx.now();
            ctx.send(
                IfaceId(0),
                Packet::sidecar(FlowId(0), 1, vec![0xAA; 16], 100, now),
            );
            ctx.send(
                IfaceId(0),
                Packet::data(FlowId(0), self.sent, self.sent * 13 + 1, 1200, now),
            );
            self.sent += 1;
            ctx.set_timer_after(SimDuration::from_millis(1), 0);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Records every arrival's payload and timestamp.
#[derive(Default)]
struct RecordingSink {
    sidecar_bodies: Vec<Vec<u8>>,
    sidecar_times: Vec<SimTime>,
    data_count: u64,
}

impl Node for RecordingSink {
    fn on_packet(&mut self, _iface: IfaceId, packet: Packet, ctx: &mut Context) {
        match packet.payload {
            Payload::Sidecar { bytes, .. } => {
                self.sidecar_bodies.push(bytes);
                self.sidecar_times.push(ctx.now());
            }
            _ => self.data_count += 1,
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Counts restarts delivered through the `on_restart` hook.
#[derive(Default)]
struct RestartCounter {
    restarts: u64,
    packets: u64,
}

impl Node for RestartCounter {
    fn on_packet(&mut self, _iface: IfaceId, _packet: Packet, _ctx: &mut Context) {
        self.packets += 1;
    }

    fn on_restart(&mut self, _ctx: &mut Context) {
        self.restarts += 1;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn blaster_to_sink(seed: u64, total: u64, plan: Option<FaultPlan>) -> (World, NodeId) {
    let mut w = World::new(seed);
    let src = w.add_node(Box::new(ControlBlaster { total, sent: 0 }));
    let dst = w.add_node(Box::new(RecordingSink::default()));
    w.connect(src, dst, LinkConfig::default(), LinkConfig::default());
    if let Some(plan) = plan {
        w.install_faults(plan);
    }
    (w, dst)
}

#[test]
fn identical_seed_and_plan_identical_traces() {
    let run = |seed: u64| {
        let plan = FaultPlan::new(99)
            .crash_restart(NodeId(1), t(SEC), t(2 * SEC))
            .blackout_between(NodeId(1), NodeId(2), t(3 * SEC), t(7 * SEC / 2))
            .corrupt_control(8, t(0), t(10 * SEC))
            .drop_control_from(NodeId(0), t(4 * SEC), t(5 * SEC));
        let (mut w, _, _, _) = chain_world(seed, 400);
        w.enable_trace(500_000);
        w.install_faults(plan);
        w.run_until_idle(5_000_000);
        (w.trace().render(), w.now(), w.events_processed())
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.0, b.0, "traces must be byte-identical");
    assert_eq!((a.1, a.2), (b.1, b.2));
    // A different world seed genuinely changes the run.
    assert_ne!(a.0, run(8).0);
}

#[test]
fn transport_survives_forwarder_crash() {
    // Kill the only middlebox for a full second mid-transfer: every packet
    // in that window dies at its door, and the E2E transport's RTO machinery
    // must carry the flow to completion anyway.
    let (mut w, s, fwd, r) = chain_world(21, 2000);
    w.enable_trace(200_000);
    w.install_faults(FaultPlan::new(0).crash_restart(fwd, t(SEC / 2), t(3 * SEC / 2)));
    w.run_until_idle(10_000_000);
    let sender = w.node_as::<SenderNode>(s);
    assert!(sender.core().is_complete(), "{:?}", sender.stats());
    assert!(sender.stats().retransmissions > 0, "crash forced no retx?");
    assert_eq!(w.node_as::<ReceiverNode>(r).stats().unique_units, 2000);
    let node_down_drops = w
        .trace()
        .filtered(|e| {
            matches!(
                e,
                TraceEvent::Drop {
                    reason: DropReason::NodeDown,
                    ..
                }
            )
        })
        .count();
    assert!(node_down_drops > 0, "outage should have eaten packets");
    let fault_edges: Vec<_> = w
        .trace()
        .filtered(|e| matches!(e, TraceEvent::Fault { .. }))
        .cloned()
        .collect();
    assert_eq!(
        fault_edges,
        vec![
            TraceEvent::Fault {
                at: t(SEC / 2),
                node: fwd,
                up: false
            },
            TraceEvent::Fault {
                at: t(3 * SEC / 2),
                node: fwd,
                up: true
            },
        ]
    );
}

#[test]
fn transport_survives_link_blackout() {
    let (mut w, s, fwd, r) = chain_world(22, 2000);
    w.enable_trace(200_000);
    w.install_faults(FaultPlan::new(0).blackout_between(fwd, r, t(SEC / 2), t(SEC)));
    w.run_until_idle(10_000_000);
    assert!(w.node_as::<SenderNode>(s).core().is_complete());
    let blackout_drops = w
        .trace()
        .filtered(|e| {
            matches!(
                e,
                TraceEvent::Drop {
                    reason: DropReason::Blackout,
                    ..
                }
            )
        })
        .count();
    assert!(blackout_drops > 0);
}

#[test]
fn kill_without_restart_stays_down() {
    let (mut w, s, fwd, _) = chain_world(23, 200);
    w.install_faults(FaultPlan::new(0).kill(fwd, t(SEC / 20)));
    // The flow can never finish; run to a deadline instead of idle (the
    // sender's RTO keeps rescheduling forever against a dead middlebox).
    w.run_until(t(20 * SEC));
    assert!(w.is_node_down(fwd));
    assert!(!w.node_as::<SenderNode>(s).core().is_complete());
}

#[test]
fn on_restart_hook_fires_once_per_outage() {
    let mut w = World::new(1);
    let src = w.add_node(Box::new(ControlBlaster {
        total: 3000,
        sent: 0,
    }));
    let node = w.add_node(Box::new(RestartCounter::default()));
    w.connect(src, node, LinkConfig::default(), LinkConfig::default());
    w.install_faults(
        FaultPlan::new(0)
            .crash_restart(node, t(SEC / 2), t(SEC))
            .crash_restart(node, t(2 * SEC), t(5 * SEC / 2)),
    );
    w.run_until_idle(5_000_000);
    let counter = w.node_as::<RestartCounter>(node);
    assert_eq!(counter.restarts, 2);
    // 3 s of two packets per ms, minus two half-second outages.
    assert!(counter.packets > 0);
    assert!((counter.packets as i64 - 4000).unsigned_abs() < 400);
}

#[test]
fn corruption_touches_only_sidecar_payloads() {
    let original = vec![0xAA; 16];
    let window_end = 2 * SEC;
    let (mut w, dst) = blaster_to_sink(
        5,
        5000,
        Some(FaultPlan::new(77).corrupt_control(12, t(0), t(window_end))),
    );
    w.run_until_idle(1_000_000);
    let sink = w.node_as::<RecordingSink>(dst);
    // Data packets are untouched (the rule keys on PacketKind::Sidecar).
    assert_eq!(sink.data_count, 5000);
    let corrupted = sink
        .sidecar_bodies
        .iter()
        .filter(|b| **b != original)
        .count();
    let pristine = sink.sidecar_bodies.len() - corrupted;
    // Packets sent inside the window always differ (≥1 bit flipped); the
    // tail sent after the window is intact.
    assert!(corrupted > 1500, "corrupted {corrupted}");
    assert!(pristine > 2000, "pristine {pristine}");
    // Corruption never changes sizes.
    assert!(sink.sidecar_bodies.iter().all(|b| b.len() == 16));
}

#[test]
fn duplicate_and_drop_control_change_arrival_counts() {
    let total = 2000u64;
    let arrivals = |plan: Option<FaultPlan>| {
        let (mut w, dst) = blaster_to_sink(9, total, plan);
        w.run_until_idle(1_000_000);
        let sink = w.node_as::<RecordingSink>(dst);
        (sink.sidecar_bodies.len() as u64, sink.data_count)
    };
    let (clean_sc, clean_data) = arrivals(None);
    assert_eq!((clean_sc, clean_data), (total, total));
    // Duplicate every control packet for the first half of the run.
    let (dup_sc, dup_data) = arrivals(Some(FaultPlan::new(0).duplicate_control(t(0), t(SEC))));
    assert!(dup_sc > total + 800, "duplicated {dup_sc}");
    assert_eq!(dup_data, total);
    // Drop every control packet for the first half of the run.
    let (drop_sc, drop_data) = arrivals(Some(FaultPlan::new(0).drop_control(t(0), t(SEC))));
    assert!(drop_sc < total - 800, "dropped down to {drop_sc}");
    assert_eq!(drop_data, total);
}

#[test]
fn delay_control_defers_delivery() {
    let first_sidecar_arrival = |plan: Option<FaultPlan>| {
        let (mut w, dst) = blaster_to_sink(11, 50, plan);
        w.run_until_idle(1_000_000);
        let sink = w.node_as::<RecordingSink>(dst);
        assert!(!sink.sidecar_bodies.is_empty());
        sink.sidecar_times[0]
    };
    let base = first_sidecar_arrival(None);
    let delayed = first_sidecar_arrival(Some(FaultPlan::new(0).delay_control(
        SimDuration::from_millis(50),
        t(0),
        t(10 * SEC),
    )));
    assert_eq!(delayed, base + SimDuration::from_millis(50));
}

#[test]
fn empty_plan_is_a_noop() {
    let run = |plan: Option<FaultPlan>| {
        let (mut w, _, _, _) = chain_world(13, 300);
        w.enable_trace(500_000);
        if let Some(plan) = plan {
            w.install_faults(plan);
        }
        w.run_until_idle(5_000_000);
        w.trace().render()
    };
    assert_eq!(run(None), run(Some(FaultPlan::new(123))));
}

#[test]
#[should_panic(expected = "unknown")]
fn plan_referencing_missing_node_panics() {
    let (mut w, _, _, _) = chain_world(1, 10);
    w.install_faults(FaultPlan::new(0).kill(NodeId(99), t(SEC)));
}
