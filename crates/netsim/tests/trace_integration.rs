//! Integration: the world trace captures a faithful causal record of a
//! transport flow.

use sidecar_netsim::link::{LinkConfig, LossModel};
use sidecar_netsim::trace::TraceEvent;
use sidecar_netsim::transport::{ReceiverConfig, ReceiverNode, SenderConfig, SenderNode};
use sidecar_netsim::world::World;
use sidecar_netsim::PacketKind;

#[test]
fn trace_records_arrivals_drops_and_timers() {
    let mut w = World::new(5);
    w.enable_trace(100_000);
    let s = w.add_node(SenderNode::boxed(SenderConfig {
        total_packets: Some(200),
        ..SenderConfig::default()
    }));
    let r = w.add_node(ReceiverNode::boxed(ReceiverConfig::default()));
    w.connect(
        s,
        r,
        LinkConfig {
            loss: LossModel::Bernoulli { p: 0.05 },
            ..LinkConfig::default()
        },
        LinkConfig::default(),
    );
    w.run_until_idle(10_000_000);

    let trace = w.trace();
    assert!(trace.is_enabled());

    // Data arrivals at the receiver match the receiver's own count.
    let receiver_stats = w.node_as::<ReceiverNode>(r).stats().clone();
    let data_arrivals = trace
        .filtered(|e| {
            matches!(
                e,
                TraceEvent::Arrival { node, kind: PacketKind::Data, .. } if *node == r
            )
        })
        .count() as u64;
    assert_eq!(data_arrivals, receiver_stats.received_packets);

    // Loss drops in the trace match the data link's stats.
    let link_stats = w.link_stats(s, sidecar_netsim::IfaceId(0)).clone();
    let (loss_drops, queue_drops) = trace.drop_counts();
    assert_eq!(loss_drops, link_stats.dropped_loss);
    assert_eq!(queue_drops, link_stats.dropped_queue);
    assert!(loss_drops > 0, "5% loss over 200+ packets must drop some");

    // ACKs flowed back.
    let ack_arrivals = trace
        .filtered(|e| {
            matches!(
                e,
                TraceEvent::Arrival { node, kind: PacketKind::Ack, .. } if *node == s
            )
        })
        .count();
    assert!(ack_arrivals > 0);

    // Events are time-ordered.
    let times: Vec<_> = trace.events().map(|e| e.at()).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));

    // The rendering mentions drops with their reason.
    let text = trace.render();
    assert!(text.contains("(Loss)"));
    assert!(text.contains("← Data"));
}

#[test]
fn bounded_trace_evicts_oldest() {
    let mut w = World::new(6);
    w.enable_trace(50);
    let s = w.add_node(SenderNode::boxed(SenderConfig {
        total_packets: Some(300),
        ..SenderConfig::default()
    }));
    let r = w.add_node(ReceiverNode::boxed(ReceiverConfig::default()));
    w.connect(s, r, LinkConfig::default(), LinkConfig::default());
    w.run_until_idle(10_000_000);
    let trace = w.trace();
    assert_eq!(trace.events().count(), 50);
    assert!(trace.total_recorded > 600, "{}", trace.total_recorded);
}

#[test]
fn disabled_trace_costs_nothing_and_records_nothing() {
    let mut w = World::new(7);
    let s = w.add_node(SenderNode::boxed(SenderConfig {
        total_packets: Some(50),
        ..SenderConfig::default()
    }));
    let r = w.add_node(ReceiverNode::boxed(ReceiverConfig::default()));
    w.connect(s, r, LinkConfig::default(), LinkConfig::default());
    w.run_until_idle(10_000_000);
    assert!(!w.trace().is_enabled());
    assert_eq!(w.trace().events().count(), 0);
    assert_eq!(w.trace().total_recorded, 0);
}
