//! Golden-trace regression tests for the observability layer.
//!
//! Two seeded scenarios — a lossy link and a scripted blackout+crash fault
//! plan — are replayed and their observability output (the event-trace
//! rendering and the metrics-snapshot encoding) is compared byte-for-byte
//! against committed fixtures in `tests/fixtures/`. Because the simulator
//! is deterministic in `(topology, seed)` and the obs layer timestamps with
//! sim-time only, these fixtures are stable across machines and runs; any
//! diff means the simulator's event order, the instrumentation points, or
//! the encodings changed, and that change must be reviewed.
//!
//! To regenerate the fixtures after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p sidecar-netsim --test golden_trace
//! git diff crates/netsim/tests/fixtures/   # review, then commit
//! ```
#![cfg(feature = "obs")]

use sidecar_netsim::fault::FaultPlan;
use sidecar_netsim::link::{LinkConfig, LossModel};
use sidecar_netsim::node::NodeId;
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_netsim::transport::{
    CcAlgorithm, ReceiverConfig, ReceiverNode, SenderConfig, SenderNode,
};
use sidecar_netsim::world::World;
use sidecar_netsim::Forwarder;
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Compares `got` against the named fixture, or rewrites the fixture when
/// `UPDATE_GOLDEN` is set.
fn assert_golden(name: &str, got: &str) {
    let path = fixture_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        eprintln!("updated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "observability output diverged from {} — if intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff",
        path.display()
    );
}

/// Sender ⇄ forwarder ⇄ receiver over moderate 10 Mbit/s links: the
/// topology every protocol scenario reduces to.
fn chain_world(seed: u64, total: u64, loss: LossModel) -> (World, NodeId) {
    let mut w = World::new(seed);
    let s = w.add_node(SenderNode::boxed(SenderConfig {
        total_packets: Some(total),
        cc: CcAlgorithm::NewReno,
        ..SenderConfig::default()
    }));
    let fwd = w.add_node(Forwarder::boxed());
    let r = w.add_node(ReceiverNode::boxed(ReceiverConfig::default()));
    let lossy = LinkConfig {
        rate_bps: 10_000_000,
        delay: SimDuration::from_millis(10),
        loss,
        ..LinkConfig::default()
    };
    let clean = LinkConfig {
        rate_bps: 10_000_000,
        delay: SimDuration::from_millis(10),
        ..LinkConfig::default()
    };
    w.connect(s, fwd, lossy, clean.clone());
    w.connect(fwd, r, clean.clone(), clean);
    (w, fwd)
}

/// One full observability rendering: the event trace followed by the
/// metrics snapshot, separated so a diff names the half that moved.
fn render_obs(w: &World) -> (String, String) {
    (w.obs().trace.render(), w.obs().metrics.snapshot().encode())
}

#[test]
fn lossy_link_trace_matches_golden() {
    let run = || {
        let (mut w, _) = chain_world(42, 300, LossModel::Bernoulli { p: 0.02 });
        w.run_until(SimTime::ZERO + SimDuration::from_secs(30));
        render_obs(&w)
    };
    let (trace, metrics) = run();
    assert!(
        trace.lines().count() > 0,
        "2% loss over 300 packets must drop something"
    );
    // Determinism first: the golden files are only meaningful if two
    // in-process replays agree byte-for-byte.
    assert_eq!(run(), (trace.clone(), metrics.clone()));
    assert_golden("golden_lossy.trace", &trace);
    assert_golden("golden_lossy.metrics", &metrics);
}

#[test]
fn blackout_fault_trace_matches_golden() {
    let ms = SimDuration::from_millis;
    let at = |m: u64| SimTime::ZERO + ms(m);
    let run = || {
        let (mut w, fwd) = chain_world(7, 400, LossModel::None);
        let plan = FaultPlan::new(99)
            .blackout_between(fwd, NodeId(2), at(150), at(250))
            .crash_restart(fwd, at(400), at(500));
        w.install_faults(plan);
        w.run_until(SimTime::ZERO + SimDuration::from_secs(30));
        render_obs(&w)
    };
    let (trace, metrics) = run();
    assert!(
        trace.contains("outage") && trace.contains("restart"),
        "fault plan must leave outage + restart events in the trace:\n{trace}"
    );
    assert_eq!(run(), (trace.clone(), metrics.clone()));
    assert_golden("golden_blackout.trace", &trace);
    assert_golden("golden_blackout.metrics", &metrics);
}
