//! Property-based tests of the simulator's core guarantees: determinism,
//! packet conservation, FIFO delivery, and transport reliability under
//! arbitrary loss.

use proptest::prelude::*;
use sidecar_netsim::link::{Link, LinkConfig, LinkOutcome, LossModel};
use sidecar_netsim::rng::SimRng;
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_netsim::transport::{
    CcAlgorithm, ReceiverConfig, ReceiverNode, SenderConfig, SenderNode,
};
use sidecar_netsim::world::World;

/// Builds a two-host world from generated parameters.
fn build(
    seed: u64,
    total: u64,
    loss_milli: u64,
    delay_ms: u64,
    rate_mbps: u64,
    cc: CcAlgorithm,
    ack_every: u32,
) -> (World, sidecar_netsim::NodeId, sidecar_netsim::NodeId) {
    let mut w = World::new(seed);
    let s = w.add_node(SenderNode::boxed(SenderConfig {
        total_packets: Some(total),
        cc,
        ..SenderConfig::default()
    }));
    let r = w.add_node(ReceiverNode::boxed(ReceiverConfig {
        ack_every,
        ..ReceiverConfig::default()
    }));
    let cfg = LinkConfig {
        rate_bps: rate_mbps * 1_000_000,
        delay: SimDuration::from_millis(delay_ms),
        loss: if loss_milli == 0 {
            LossModel::None
        } else {
            LossModel::Bernoulli {
                p: loss_milli as f64 / 1000.0,
            }
        },
        ..LinkConfig::default()
    };
    w.connect(s, r, cfg, LinkConfig::default());
    (w, s, r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Reliability: the transport delivers every unit for any loss rate up
    /// to 20% and any parameter mix.
    #[test]
    fn transport_is_reliable_under_arbitrary_loss(
        seed in any::<u64>(),
        total in 20u64..150,
        loss_milli in 0u64..200,
        delay_ms in 1u64..40,
        rate_mbps in 5u64..200,
        cc in prop_oneof![Just(CcAlgorithm::NewReno), Just(CcAlgorithm::Cubic)],
        ack_every in 1u32..8,
    ) {
        let (mut w, s, r) = build(seed, total, loss_milli, delay_ms, rate_mbps, cc, ack_every);
        w.run_until_idle(20_000_000);
        let sender = w.node_as::<SenderNode>(s);
        prop_assert!(
            sender.core().is_complete(),
            "flow stalled: {:?}",
            sender.stats()
        );
        prop_assert_eq!(sender.stats().delivered_packets, total);
        let receiver = w.node_as::<ReceiverNode>(r);
        prop_assert_eq!(receiver.stats().unique_units, total);
        // Conservation at the sender: everything transmitted was either
        // delivered or declared lost eventually, nothing double-counted.
        prop_assert!(sender.stats().sent_packets >= total);
    }

    /// Determinism: identical parameters and seed give identical stats.
    #[test]
    fn identical_seeds_reproduce_exactly(
        seed in any::<u64>(),
        total in 20u64..100,
        loss_milli in 0u64..150,
    ) {
        let run = || {
            let (mut w, s, _) = build(seed, total, loss_milli, 10, 50, CcAlgorithm::NewReno, 2);
            w.run_until_idle(20_000_000);
            (
                w.node_as::<SenderNode>(s).stats().clone(),
                w.now(),
                w.events_processed(),
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// Link conservation: offered = delivered + dropped, and FIFO order is
    /// preserved when jitter is zero.
    #[test]
    fn link_conserves_and_orders_packets(
        seed in any::<u64>(),
        offers in 1usize..200,
        loss_milli in 0u64..500,
        rate_mbps in 1u64..1000,
        queue in 1usize..64,
    ) {
        let mut link = Link::new(LinkConfig {
            rate_bps: rate_mbps * 1_000_000,
            loss: LossModel::Bernoulli { p: loss_milli as f64 / 1000.0 },
            queue_packets: queue,
            ..LinkConfig::default()
        });
        let mut rng = SimRng::new(seed);
        let mut last_arrival = SimTime::ZERO;
        for i in 0..offers {
            let now = SimTime::ZERO + SimDuration::from_micros(i as u64 * 10);
            if let LinkOutcome::Deliver(at) = link.offer(now, 1500, &mut rng) {
                prop_assert!(at >= last_arrival, "FIFO violated");
                prop_assert!(at > now, "arrival not after offer");
                last_arrival = at;
            }
        }
        let st = &link.stats;
        prop_assert_eq!(st.offered, offers as u64);
        prop_assert_eq!(st.delivered + st.dropped_loss + st.dropped_queue, st.offered);
        prop_assert_eq!(st.delivered_bytes, st.delivered * 1500);
    }

    /// The Gilbert–Elliott model's empirical loss tracks its stationary
    /// mean within statistical tolerance.
    #[test]
    fn gilbert_elliott_mean_tracks_stationary(
        seed in any::<u64>(),
        p_bad_pct in 10u64..90,
        g2b_pct in 1u64..20,
        b2g_pct in 5u64..40,
    ) {
        let model = LossModel::GilbertElliott {
            p_good: 0.0,
            p_bad: p_bad_pct as f64 / 100.0,
            good_to_bad: g2b_pct as f64 / 100.0,
            bad_to_good: b2g_pct as f64 / 100.0,
        };
        let mean = model.mean_loss_rate();
        let mut link = Link::new(LinkConfig {
            loss: model,
            queue_packets: usize::MAX,
            ..LinkConfig::default()
        });
        let mut rng = SimRng::new(seed);
        let n = 60_000u64;
        for i in 0..n {
            let _ = link.offer(SimTime::ZERO + SimDuration::from_micros(i), 100, &mut rng);
        }
        let measured = link.stats.dropped_loss as f64 / n as f64;
        // Burst correlation inflates the variance; allow a wide band.
        prop_assert!(
            (measured - mean).abs() < 0.05 + mean * 0.35,
            "measured {measured:.4} vs stationary {mean:.4}"
        );
    }
}

mod receiver_range_model {
    use super::*;
    use sidecar_netsim::packet::{FlowId, Packet};
    use sidecar_netsim::transport::ReceiverCore;
    use std::collections::BTreeSet;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The receiver's merged packet-number ranges always equal the set
        /// model, for arbitrary arrival orders with duplicates.
        #[test]
        fn ranges_match_set_model(pns in proptest::collection::vec(0u64..200, 1..120)) {
            let mut core = ReceiverCore::new(ReceiverConfig {
                ack_every: 1,
                max_ranges: usize::MAX,
                ..ReceiverConfig::default()
            });
            let mut model = BTreeSet::new();
            let mut last_ack = None;
            for (i, &pn) in pns.iter().enumerate() {
                let pkt = Packet::data(FlowId(0), pn, pn * 7 + 1, 1500,
                    SimTime::ZERO + SimDuration::from_micros(i as u64));
                last_ack = core.on_data(&pkt, SimTime::ZERO + SimDuration::from_micros(i as u64));
                model.insert(pn);
            }
            // The final ACK's ranges cover exactly the model.
            let ack = last_ack.expect("ack_every=1 always acks");
            let info = match ack.payload {
                sidecar_netsim::Payload::Ack(info) => info,
                _ => unreachable!(),
            };
            let mut covered = BTreeSet::new();
            for (s, e) in &info.ranges {
                prop_assert!(s <= e);
                for pn in *s..=*e {
                    prop_assert!(covered.insert(pn), "overlapping ranges");
                }
            }
            prop_assert_eq!(covered, model);
            prop_assert_eq!(info.largest, *pns.iter().max().unwrap());
            prop_assert_eq!(core.largest_pn(), Some(info.largest));
        }
    }
}
