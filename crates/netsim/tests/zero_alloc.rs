//! Steady-state zero-allocation proof for the engine's dispatch loop.
//!
//! A counting global allocator wraps the system allocator; the test warms a
//! periodic-traffic world past every capacity plateau (wheel slots, slab,
//! action pool, obs trace ring), snapshots the allocation counter, runs two
//! more simulated seconds, and requires the counter unchanged: packets move
//! by value into the link and out of the event slab, callback actions reuse
//! the pooled buffer, hot metrics are pre-interned atomics, and the trace
//! ring recycles its capacity — nothing on the path touches the allocator.
//!
//! This file holds exactly one test: the harness runs test files in one
//! process per file but multiple tests per process on worker threads, and a
//! concurrent test's allocations would race the counter.

use sidecar_netsim::link::LinkConfig;
use sidecar_netsim::node::{Context, IfaceId, Node};
use sidecar_netsim::packet::{FlowId, Packet};
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_netsim::world::World;
use std::alloc::{GlobalAlloc, Layout, System};
use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocator entry point that can acquire memory.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to the system allocator; the counter is a relaxed
// atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Emits one heap-free data packet per period and re-arms itself — the
/// steady-state workload shape (packet + timer churn, no per-event state).
struct Pulse {
    flow: FlowId,
    period: SimDuration,
    seq: u64,
}

impl Node for Pulse {
    fn on_start(&mut self, ctx: &mut Context) {
        ctx.set_timer_after(self.period, 0);
    }
    fn on_packet(&mut self, _iface: IfaceId, _packet: Packet, _ctx: &mut Context) {}
    fn on_timer(&mut self, _token: u64, ctx: &mut Context) {
        let pkt = Packet::data(self.flow, self.seq, self.seq * 31 + 7, 1200, ctx.now());
        assert!(pkt.is_heap_free(), "pulse packets must not own heap memory");
        ctx.send(IfaceId(0), pkt);
        self.seq += 1;
        ctx.set_timer_after(self.period, 0);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Swallows arrivals.
struct Drain;

impl Node for Drain {
    fn on_packet(&mut self, _iface: IfaceId, _packet: Packet, _ctx: &mut Context) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn steady_state_dispatch_is_zero_alloc() {
    let mut w = World::new(2024);
    let sink = w.add_node(Box::new(Drain));
    // Periods are exact slot multiples (the wheel slot is 2^13 ns), so the
    // workload's slot-occupancy pattern repeats every wheel lap and all
    // capacities reach their plateau during warmup.
    for i in 0..32u32 {
        let pulse = w.add_node(Box::new(Pulse {
            flow: FlowId(i),
            period: SimDuration::from_nanos((1 << 13) * (64 + (i as u64 % 7) * 16)),
            seq: 0,
        }));
        w.connect(pulse, sink, LinkConfig::default(), LinkConfig::default());
    }

    // Warmup: several wheel laps (the horizon is ~134 ms) and, with `obs`
    // on, enough events to fill the 16384-entry trace ring into its
    // recycling regime.
    w.run_until(SimTime::ZERO + SimDuration::from_millis(3_000));
    let warm_events = w.events_processed();
    let before = ALLOCS.load(Ordering::Relaxed);

    w.run_until(SimTime::ZERO + SimDuration::from_millis(5_000));
    let after = ALLOCS.load(Ordering::Relaxed);
    let measured_events = w.events_processed() - warm_events;

    assert!(
        measured_events > 100_000,
        "measurement window too small: {measured_events} events"
    );
    assert_eq!(
        after - before,
        0,
        "dispatch loop allocated {} times over {measured_events} events",
        after - before
    );
}
