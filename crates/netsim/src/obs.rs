//! Per-world observability handle (feature `obs`).
//!
//! Every [`World`](crate::World) owns one [`WorldObs`]: a *fresh* metrics
//! registry plus an event-trace ring, both scoped to that world. Scoping per
//! world (rather than using `sidecar_obs::global()`) keeps metric-asserting
//! tests exactly reproducible even though the Rust test harness runs tests
//! on concurrent threads, and it means a scenario's snapshot contains only
//! that scenario's events.
//!
//! The counters the event loop touches on *every* event are interned up
//! front as [`HotCounters`]: pre-resolved [`Counter`](sidecar_obs::Counter)
//! handles (a lock-free atomic each), so the dispatch path never pays the
//! registry's mutex + name lookup per event and `obs`-on runs no longer
//! distort scheduler timing.
//!
//! With the `obs` feature disabled, [`WorldObs`] is a zero-sized unit type
//! and a compile-time assertion pins that — the obs-off build carries no
//! registry state and no instrumentation code, which is how the PR-2 perf
//! gate can vouch for zero hot-path cost.

/// Pre-resolved handles for the counters the world's dispatch loop bumps
/// per event. Registered eagerly at world construction, so they appear in
/// every snapshot (at zero when untouched) and cost one atomic add to bump.
#[cfg(feature = "obs")]
#[derive(Debug)]
pub struct HotCounters {
    /// `netsim.delivered` — packets accepted by a link for delivery.
    pub delivered: sidecar_obs::Counter,
    /// `netsim.drop.loss` — random-loss drops.
    pub drop_loss: sidecar_obs::Counter,
    /// `netsim.drop.queue` — drop-tail queue overflows.
    pub drop_queue: sidecar_obs::Counter,
    /// `netsim.drop.node_down` — arrivals at a crashed node.
    pub drop_node_down: sidecar_obs::Counter,
    /// `netsim.drop.blackout` — transmissions into a blacked-out link.
    pub drop_blackout: sidecar_obs::Counter,
    /// `netsim.drop.injected` — fault-plan (adversary/firewall) drops.
    pub drop_injected: sidecar_obs::Counter,
    /// `netsim.fault.outage` — scripted crash edges.
    pub fault_outage: sidecar_obs::Counter,
    /// `netsim.fault.restore` — scripted restart edges.
    pub fault_restore: sidecar_obs::Counter,
    /// `netsim.restart` — `on_restart` dispatches.
    pub restart: sidecar_obs::Counter,
}

#[cfg(feature = "obs")]
impl HotCounters {
    fn new(metrics: &sidecar_obs::MetricsRegistry) -> Self {
        HotCounters {
            delivered: metrics.counter("netsim.delivered"),
            drop_loss: metrics.counter("netsim.drop.loss"),
            drop_queue: metrics.counter("netsim.drop.queue"),
            drop_node_down: metrics.counter("netsim.drop.node_down"),
            drop_blackout: metrics.counter("netsim.drop.blackout"),
            drop_injected: metrics.counter("netsim.drop.injected"),
            fault_outage: metrics.counter("netsim.fault.outage"),
            fault_restore: metrics.counter("netsim.fault.restore"),
            restart: metrics.counter("netsim.restart"),
        }
    }
}

/// The observability state attached to one world.
#[cfg(feature = "obs")]
#[derive(Debug)]
pub struct WorldObs {
    /// Metrics registry scoped to this world.
    pub metrics: sidecar_obs::MetricsRegistry,
    /// Interned per-event counter handles (see [`HotCounters`]).
    pub hot: HotCounters,
    /// Event-trace ring scoped to this world (sim-time timestamps only).
    pub trace: sidecar_obs::EventTrace,
    /// Per-flow health scoreboard, fed by the protocols' trouble taps
    /// (proxy retx, decode failures, auth rejections, evictions) through
    /// [`Context::obs_flow_health`](crate::node::Context::obs_flow_health).
    /// The handle is `Clone`-shared, so a live admin thread can rank flows
    /// while the dispatch thread records.
    pub scoreboard: sidecar_obs::FlowScoreboard,
    /// World-scoped control-datagram sequence, allocated through
    /// [`Context::next_ctrl_seq`](crate::node::Context::next_ctrl_seq) to
    /// stamp sidecar control packets with a flight-recorder `TraceId`. Data
    /// packets need no allocator — their packet number is the stamp.
    pub ctrl_seq: u64,
}

#[cfg(feature = "obs")]
impl WorldObs {
    /// A fresh registry (hot counters pre-registered) and a
    /// default-capacity trace.
    pub fn new() -> Self {
        let metrics = sidecar_obs::MetricsRegistry::default();
        let hot = HotCounters::new(&metrics);
        WorldObs {
            metrics,
            hot,
            trace: sidecar_obs::EventTrace::default(),
            scoreboard: sidecar_obs::FlowScoreboard::default(),
            ctrl_seq: 0,
        }
    }
}

#[cfg(feature = "obs")]
impl Default for WorldObs {
    fn default() -> Self {
        WorldObs::new()
    }
}

/// Zero-sized stand-in when the `obs` feature is compiled out.
#[cfg(not(feature = "obs"))]
#[derive(Copy, Clone, Debug, Default)]
pub struct WorldObs;

#[cfg(not(feature = "obs"))]
impl WorldObs {
    /// The unit value.
    pub fn new() -> Self {
        WorldObs
    }
}

// Compile-time proof that disabling `obs` leaves no instrumentation state
// behind: the world's observability handle must vanish entirely. CI's
// `--no-default-features` leg compiles this assertion.
#[cfg(not(feature = "obs"))]
const _: () = assert!(core::mem::size_of::<WorldObs>() == 0);
