//! Per-world observability handle (feature `obs`).
//!
//! Every [`World`](crate::World) owns one [`WorldObs`]: a *fresh* metrics
//! registry plus an event-trace ring, both scoped to that world. Scoping per
//! world (rather than using `sidecar_obs::global()`) keeps metric-asserting
//! tests exactly reproducible even though the Rust test harness runs tests
//! on concurrent threads, and it means a scenario's snapshot contains only
//! that scenario's events.
//!
//! With the `obs` feature disabled, [`WorldObs`] is a zero-sized unit type
//! and a compile-time assertion pins that — the obs-off build carries no
//! registry state and no instrumentation code, which is how the PR-2 perf
//! gate can vouch for zero hot-path cost.

/// The observability state attached to one world.
#[cfg(feature = "obs")]
#[derive(Debug, Default)]
pub struct WorldObs {
    /// Metrics registry scoped to this world.
    pub metrics: sidecar_obs::MetricsRegistry,
    /// Event-trace ring scoped to this world (sim-time timestamps only).
    pub trace: sidecar_obs::EventTrace,
    /// World-scoped control-datagram sequence, allocated through
    /// [`Context::next_ctrl_seq`](crate::node::Context::next_ctrl_seq) to
    /// stamp sidecar control packets with a flight-recorder `TraceId`. Data
    /// packets need no allocator — their packet number is the stamp.
    pub ctrl_seq: u64,
}

#[cfg(feature = "obs")]
impl WorldObs {
    /// A fresh registry and a default-capacity trace.
    pub fn new() -> Self {
        WorldObs::default()
    }
}

/// Zero-sized stand-in when the `obs` feature is compiled out.
#[cfg(not(feature = "obs"))]
#[derive(Copy, Clone, Debug, Default)]
pub struct WorldObs;

#[cfg(not(feature = "obs"))]
impl WorldObs {
    /// The unit value.
    pub fn new() -> Self {
        WorldObs
    }
}

// Compile-time proof that disabling `obs` leaves no instrumentation state
// behind: the world's observability handle must vanish entirely. CI's
// `--no-default-features` leg compiles this assertion.
#[cfg(not(feature = "obs"))]
const _: () = assert!(core::mem::size_of::<WorldObs>() == 0);
