//! The [`Driver`] seam: what a host must provide to run sans-IO [`Node`]
//! state machines.
//!
//! Every protocol in this reproduction is written against [`Node`] and
//! [`Context`](crate::node::Context) — callbacks *record* sends and timer
//! arms, and the host applies them. That contract never mentions the
//! simulator, so the same state machine can be hosted by two very
//! different drivers:
//!
//! * [`World`] — the discrete-event simulator: virtual time, perfectly
//!   FIFO links, exact one-shot timers, seeded determinism;
//! * `sidecar-live`'s `LiveDriver` — real `UdpSocket`s, wall-clock time
//!   mapped onto the same nanosecond [`SimTime`] axis, reader threads and
//!   a binary-heap timer set.
//!
//! The trait is deliberately small: a clock, node installation, a packet
//! ingress tap, and a bounded run loop. Everything else (what a "send"
//! means, how timers fire) is the driver's business, constrained only by
//! the dispatch rules below.
//!
//! # Dispatch rules every driver must uphold
//!
//! 1. **Monotone clock.** `Context::now()` never decreases across
//!    callbacks on the same driver.
//! 2. **Timers fire at their armed deadline.** A timer armed for `at` is
//!    dispatched with `Context::now() == max(at, arm time)` — protocols
//!    (e.g. `GuardedTimer`) compare the fire time against the armed
//!    deadline by equality. A live driver that wakes late must still
//!    dispatch the callback at the armed timestamp, in deadline order.
//! 3. **One-shot, cancellable timers.** A cancelled handle never reaches
//!    `on_timer`; an uncancelled one fires exactly once.
//! 4. **Unique timer handles.** Handle values never repeat across the
//!    run (drivers thread a monotone base through
//!    [`Context::set_handle_base`](crate::node::Context::set_handle_base)).
//! 5. **Actions apply after the callback**, in recorded order.
//!
//! What the simulator additionally guarantees — FIFO per-link delivery,
//! loss only where the model says so, bit-exact reproducibility from a
//! seed — real sockets do *not*. Protocols must not rely on those; the
//! live loopback suite exists to catch any that do.

use crate::node::{IfaceId, Node, NodeId};
use crate::packet::Packet;
use crate::time::SimTime;
use crate::world::World;

/// A host for sans-IO [`Node`] state machines. See the module docs for the
/// dispatch rules implementations must uphold.
pub trait Driver {
    /// The driver's current time on the shared nanosecond axis.
    fn now(&self) -> SimTime;

    /// Installs a node; its `on_start` runs before the first packet or
    /// timer is dispatched to it.
    fn install(&mut self, node: Box<dyn Node>) -> NodeId;

    /// Hands an externally received packet to a hosted node, as if it had
    /// just arrived on `iface`. The dispatch happens inside the driver's
    /// run loop, not re-entrantly.
    fn inject(&mut self, node: NodeId, iface: IfaceId, packet: Packet);

    /// Runs dispatches until `deadline` (driver time), then returns the
    /// clock. For the simulator this drains due events and clamps the
    /// virtual clock; for a live driver it blocks on sockets and timers
    /// until the wall clock passes the deadline.
    fn run_until(&mut self, deadline: SimTime) -> SimTime;

    /// Whether any work (queued events, pending timers) remains.
    fn is_idle(&self) -> bool;

    /// Borrows a hosted node.
    ///
    /// # Panics
    ///
    /// May panic if `id` was not returned by this driver's `install`.
    fn node_dyn(&self, id: NodeId) -> &dyn Node;

    /// Mutably borrows a hosted node.
    ///
    /// # Panics
    ///
    /// May panic if `id` was not returned by this driver's `install`.
    fn node_dyn_mut(&mut self, id: NodeId) -> &mut dyn Node;
}

impl dyn Driver + '_ {
    /// Borrows a hosted node downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the node is of a different type.
    pub fn node_as<T: Node>(&self, id: NodeId) -> &T {
        self.node_dyn(id)
            .as_any()
            .downcast_ref::<T>()
            .expect("node type mismatch")
    }

    /// Mutably borrows a hosted node downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the node is of a different type.
    pub fn node_as_mut<T: Node>(&mut self, id: NodeId) -> &mut T {
        self.node_dyn_mut(id)
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("node type mismatch")
    }
}

impl Driver for World {
    fn now(&self) -> SimTime {
        World::now(self)
    }

    fn install(&mut self, node: Box<dyn Node>) -> NodeId {
        self.add_node(node)
    }

    fn inject(&mut self, node: NodeId, iface: IfaceId, packet: Packet) {
        World::inject(self, node, iface, packet);
    }

    fn run_until(&mut self, deadline: SimTime) -> SimTime {
        World::run_until(self, deadline)
    }

    fn is_idle(&self) -> bool {
        self.events_pending() == 0
    }

    fn node_dyn(&self, id: NodeId) -> &dyn Node {
        World::node_dyn(self, id)
    }

    fn node_dyn_mut(&mut self, id: NodeId) -> &mut dyn Node {
        World::node_dyn_mut(self, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Context;
    use crate::time::SimDuration;

    /// A node that echoes every data packet back out its ingress interface
    /// after a fixed timer delay, counting dispatches.
    struct Echo {
        delay: SimDuration,
        held: Vec<(IfaceId, Packet)>,
        packets: u64,
        timers: u64,
    }

    impl Node for Echo {
        fn name(&self) -> &str {
            "echo"
        }

        fn on_packet(&mut self, iface: IfaceId, packet: Packet, ctx: &mut Context) {
            self.packets += 1;
            self.held.push((iface, packet));
            ctx.set_timer_after(self.delay, 7);
        }

        fn on_timer(&mut self, token: u64, ctx: &mut Context) {
            assert_eq!(token, 7);
            self.timers += 1;
            if let Some((iface, pkt)) = self.held.pop() {
                ctx.send(iface, pkt);
            }
        }

        fn as_any(&self) -> &dyn std::any::Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    /// Counts packets delivered to it.
    struct Sink {
        packets: u64,
    }

    impl Node for Sink {
        fn name(&self) -> &str {
            "sink"
        }

        fn on_packet(&mut self, _iface: IfaceId, _packet: Packet, _ctx: &mut Context) {
            self.packets += 1;
        }

        fn as_any(&self) -> &dyn std::any::Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn world_hosts_nodes_behind_the_driver_seam() {
        use crate::link::LinkConfig;

        let mut world = World::new(7);
        // Topology is driver-specific (the trait only covers hosting), so
        // wire the echo to a sink with World's own API first.
        let echo_id = world.add_node(Box::new(Echo {
            delay: SimDuration::from_millis(5),
            held: Vec::new(),
            packets: 0,
            timers: 0,
        }));
        let sink_id = world.add_node(Box::new(Sink { packets: 0 }));
        world.connect(
            echo_id,
            sink_id,
            LinkConfig::default(),
            LinkConfig::default(),
        );

        let driver: &mut dyn Driver = &mut world;
        let pkt = Packet::data(crate::packet::FlowId(3), 1, 42, 1500, SimTime::ZERO);
        driver.inject(echo_id, IfaceId(0), pkt);
        assert!(!driver.is_idle());
        driver.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        assert!(driver.is_idle());
        let echo: &Echo = driver.node_as(echo_id);
        assert_eq!((echo.packets, echo.timers), (1, 1));
        let sink: &Sink = driver.node_as(sink_id);
        assert_eq!(sink.packets, 1, "echoed packet crossed the link");
    }
}
