//! The receiving side of the "paranoid" base transport.
//!
//! [`ReceiverCore`] tracks received packet numbers as merged ranges
//! (QUIC-style) and builds ACKs on a configurable frequency — the knob the
//! ACK-reduction protocol turns down (paper §2.2: the client "can also
//! transmit fewer ACKs using the proposed ACK frequency extension in
//! QUIC").

use crate::packet::{AckInfo, FlowId, Packet, Payload};
use crate::time::{SimDuration, SimTime};
use std::collections::HashSet;

/// Configuration of a transport receiver.
#[derive(Clone, Debug)]
pub struct ReceiverConfig {
    /// Flow identifier for ACK packets.
    pub flow: FlowId,
    /// Send an ACK after this many ack-eliciting packets (QUIC default 2;
    /// the ACK-frequency extension raises it).
    pub ack_every: u32,
    /// Send a pending ACK no later than this after the packet that created
    /// it (QUIC `max_ack_delay`).
    pub max_ack_delay: SimDuration,
    /// ACK packet size on the wire, bytes.
    pub ack_size: u32,
    /// Maximum ACK ranges carried (older history is dropped, QUIC-style).
    pub max_ranges: usize,
    /// ACK immediately when a gap in packet numbers is observed (fast loss
    /// signal), regardless of `ack_every`.
    pub immediate_on_gap: bool,
    /// Identifier width for ACK packets' own identifiers.
    pub id_bits: u32,
    /// Seed for ACK identifiers.
    pub id_seed: u64,
}

impl Default for ReceiverConfig {
    fn default() -> Self {
        ReceiverConfig {
            flow: FlowId(0),
            ack_every: 2,
            max_ack_delay: SimDuration::from_millis(25),
            ack_size: 60,
            max_ranges: 32,
            immediate_on_gap: true,
            id_bits: 32,
            id_seed: 0xACC_5EED,
        }
    }
}

/// Aggregate receiver statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReceiverStats {
    /// Data packets received (including duplicates).
    pub received_packets: u64,
    /// Distinct data units received.
    pub unique_units: u64,
    /// Duplicate data units (spurious retransmissions observed).
    pub duplicate_units: u64,
    /// ACK packets emitted.
    pub acks_sent: u64,
    /// Packets that arrived above a gap (out of order or after loss).
    pub gaps_observed: u64,
    /// Time the last new unit arrived.
    pub last_new_unit_at: Option<SimTime>,
}

/// A data-packet observation drained by sidecar wrappers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReceiverEvent {
    /// Packet number received.
    pub pn: u64,
    /// Its opaque identifier.
    pub id: u64,
}

/// The sans-IO transport receiver.
pub struct ReceiverCore {
    cfg: ReceiverConfig,
    /// Received packet numbers as inclusive ranges, sorted ascending,
    /// disjoint and non-adjacent.
    ranges: Vec<(u64, u64)>,
    units_seen: HashSet<u64>,
    unacked: u32,
    /// Earliest unsent-ACK deadline, if an ACK is pending.
    ack_deadline: Option<SimTime>,
    id_state: u64,
    id_mask: u64,
    stats: ReceiverStats,
    events: Vec<ReceiverEvent>,
}

impl ReceiverCore {
    /// Creates a receiver.
    pub fn new(cfg: ReceiverConfig) -> Self {
        let id_mask = if cfg.id_bits == 64 {
            u64::MAX
        } else {
            (1u64 << cfg.id_bits) - 1
        };
        let id_state = cfg.id_seed;
        ReceiverCore {
            cfg,
            ranges: Vec::new(),
            units_seen: HashSet::new(),
            unacked: 0,
            ack_deadline: None,
            id_state,
            id_mask,
            stats: ReceiverStats::default(),
            events: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ReceiverConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ReceiverStats {
        &self.stats
    }

    /// Drains data-packet observations (sidecar hook).
    pub fn drain_events(&mut self) -> Vec<ReceiverEvent> {
        std::mem::take(&mut self.events)
    }

    /// Handles one data packet; returns an ACK packet if one is due now.
    pub fn on_data(&mut self, pkt: &Packet, now: SimTime) -> Option<Packet> {
        let unit = match pkt.payload {
            Payload::Data { unit } => unit,
            // Not transport data; ignore.
            _ => return None,
        };
        self.stats.received_packets += 1;
        self.events.push(ReceiverEvent {
            pn: pkt.seq,
            id: pkt.id,
        });
        if self.units_seen.insert(unit) {
            self.stats.unique_units += 1;
            self.stats.last_new_unit_at = Some(now);
        } else {
            self.stats.duplicate_units += 1;
        }
        let gap = self.record_pn(pkt.seq);
        if gap {
            self.stats.gaps_observed += 1;
        }
        self.unacked = self.unacked.saturating_add(1);
        let immediate = (self.cfg.immediate_on_gap && gap) || self.unacked >= self.cfg.ack_every;
        if immediate {
            Some(self.build_ack(now, gap))
        } else {
            if self.ack_deadline.is_none() {
                self.ack_deadline = Some(now + self.cfg.max_ack_delay);
            }
            None
        }
    }

    /// If a delayed ACK is due at `now`, build it.
    pub fn poll_delayed_ack(&mut self, now: SimTime) -> Option<Packet> {
        match self.ack_deadline {
            Some(deadline) if now >= deadline => Some(self.build_ack(now, false)),
            _ => None,
        }
    }

    /// Deadline of the pending delayed ACK, if any.
    pub fn ack_deadline(&self) -> Option<SimTime> {
        self.ack_deadline
    }

    /// The highest packet number received, if any.
    pub fn largest_pn(&self) -> Option<u64> {
        self.ranges.last().map(|&(_, e)| e)
    }

    /// Number of distinct packet-number ranges currently tracked.
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// Inserts `pn` into the range set; returns whether the packet revealed
    /// a gap (arrived non-contiguously above the previous largest).
    fn record_pn(&mut self, pn: u64) -> bool {
        let gap = match self.ranges.last() {
            // Checked: a peer controls `pn` on a real socket, and the top
            // range can legitimately end at u64::MAX.
            Some(&(_, e)) => pn > e.saturating_add(1),
            None => pn > 0,
        };
        // Find insertion point.
        match self.ranges.binary_search_by(|&(s, e)| {
            if pn < s {
                std::cmp::Ordering::Greater
            } else if pn > e {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(_) => return false, // duplicate pn; no new gap
            Err(idx) => {
                // Try to extend neighbors (checked: `pn` may be u64::MAX
                // and a neighbor may end there).
                let extends_prev = idx > 0 && self.ranges[idx - 1].1.checked_add(1) == Some(pn);
                let extends_next =
                    idx < self.ranges.len() && pn.checked_add(1) == Some(self.ranges[idx].0);
                match (extends_prev, extends_next) {
                    (true, true) => {
                        self.ranges[idx - 1].1 = self.ranges[idx].1;
                        self.ranges.remove(idx);
                    }
                    (true, false) => self.ranges[idx - 1].1 = pn,
                    (false, true) => self.ranges[idx].0 = pn,
                    (false, false) => self.ranges.insert(idx, (pn, pn)),
                }
            }
        }
        // Bound the *internal* set too, not just the ACK encoding: an
        // adversarial every-other-pn pattern would otherwise grow this Vec
        // without limit. Old history is droppable (QUIC-style).
        if self.ranges.len() > self.cfg.max_ranges {
            let excess = self.ranges.len() - self.cfg.max_ranges;
            self.ranges.drain(..excess);
        }
        gap
    }

    /// Builds an ACK covering everything received.
    fn build_ack(&mut self, now: SimTime, immediate: bool) -> Packet {
        self.unacked = 0;
        self.ack_deadline = None;
        self.stats.acks_sent += 1;
        let largest = self.largest_pn().unwrap_or(0);
        // Newest ranges first, truncated.
        let ranges: Vec<(u64, u64)> = self
            .ranges
            .iter()
            .rev()
            .take(self.cfg.max_ranges)
            .copied()
            .collect();
        let info = AckInfo {
            largest,
            ranges,
            immediate,
        };
        let id = self.next_id();
        Packet::ack(self.cfg.flow, id, info, self.cfg.ack_size, now)
    }

    fn next_id(&mut self) -> u64 {
        self.id_state = self.id_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.id_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) & self.id_mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(pn: u64) -> Packet {
        Packet::data(
            FlowId(0),
            pn,
            pn.wrapping_mul(13).wrapping_add(5),
            1500,
            SimTime::ZERO,
        )
    }

    fn recv() -> ReceiverCore {
        ReceiverCore::new(ReceiverConfig::default())
    }

    #[test]
    fn acks_every_second_packet() {
        let mut r = recv();
        assert!(r.on_data(&data(0), SimTime::ZERO).is_none());
        let ack = r.on_data(&data(1), SimTime::ZERO).unwrap();
        match ack.payload {
            Payload::Ack(info) => {
                assert_eq!(info.largest, 1);
                assert_eq!(info.ranges, vec![(0, 1)]);
                assert!(!info.immediate);
            }
            _ => panic!("not an ack"),
        }
        assert_eq!(r.stats().acks_sent, 1);
    }

    #[test]
    fn gap_triggers_immediate_ack() {
        let mut r = recv();
        let _ = r.on_data(&data(0), SimTime::ZERO);
        // pn 2 skips pn 1.
        let ack = r.on_data(&data(2), SimTime::ZERO).unwrap();
        match ack.payload {
            Payload::Ack(info) => {
                assert!(info.immediate);
                assert_eq!(info.ranges, vec![(2, 2), (0, 0)]);
            }
            _ => panic!("not an ack"),
        }
        assert_eq!(r.stats().gaps_observed, 1);
    }

    #[test]
    fn ranges_merge_when_holes_fill() {
        let mut r = recv();
        for pn in [0u64, 2, 4] {
            let _ = r.on_data(&data(pn), SimTime::ZERO);
        }
        assert_eq!(r.range_count(), 3);
        let _ = r.on_data(&data(1), SimTime::ZERO);
        assert_eq!(r.range_count(), 2);
        let _ = r.on_data(&data(3), SimTime::ZERO);
        assert_eq!(r.range_count(), 1);
        assert_eq!(r.largest_pn(), Some(4));
    }

    #[test]
    fn duplicates_counted_not_reranged() {
        let mut r = recv();
        let _ = r.on_data(&data(0), SimTime::ZERO);
        let _ = r.on_data(&data(0), SimTime::ZERO);
        assert_eq!(r.stats().received_packets, 2);
        assert_eq!(r.stats().unique_units, 1);
        assert_eq!(r.stats().duplicate_units, 1);
        assert_eq!(r.range_count(), 1);
    }

    #[test]
    fn delayed_ack_fires_at_deadline() {
        let mut r = recv();
        let t0 = SimTime::ZERO;
        assert!(r.on_data(&data(0), t0).is_none());
        let deadline = r.ack_deadline().unwrap();
        assert_eq!(deadline, t0 + SimDuration::from_millis(25));
        assert!(r
            .poll_delayed_ack(t0 + SimDuration::from_millis(10))
            .is_none());
        let ack = r.poll_delayed_ack(deadline).unwrap();
        assert!(matches!(ack.payload, Payload::Ack(_)));
        // Deadline cleared.
        assert!(r.ack_deadline().is_none());
        assert!(r
            .poll_delayed_ack(deadline + SimDuration::from_millis(1))
            .is_none());
    }

    #[test]
    fn ack_frequency_extension_reduces_acks() {
        let mut frequent = recv();
        let mut reduced = ReceiverCore::new(ReceiverConfig {
            ack_every: 32, // §4.3: "the receiver could quACK e.g. every n = 32 packets"
            ..ReceiverConfig::default()
        });
        for pn in 0..64u64 {
            let _ = frequent.on_data(&data(pn), SimTime::ZERO);
            let _ = reduced.on_data(&data(pn), SimTime::ZERO);
        }
        assert_eq!(frequent.stats().acks_sent, 32);
        assert_eq!(reduced.stats().acks_sent, 2);
    }

    #[test]
    fn range_cap_drops_oldest_history() {
        let mut r = ReceiverCore::new(ReceiverConfig {
            max_ranges: 2,
            ack_every: 1,
            ..ReceiverConfig::default()
        });
        // Every other pn: ranges (0,0), (2,2), (4,4)…
        let mut last_ack = None;
        for pn in [0u64, 2, 4, 6] {
            last_ack = r.on_data(&data(pn), SimTime::ZERO);
        }
        match last_ack.unwrap().payload {
            Payload::Ack(info) => {
                assert_eq!(info.ranges, vec![(6, 6), (4, 4)]);
                assert_eq!(info.largest, 6);
            }
            _ => panic!("not an ack"),
        }
    }

    #[test]
    fn extreme_pns_survive_reorder_and_duplication() {
        // Regression: `record_pn` computed `e + 1` / `pn + 1` unchecked. A
        // packet number of u64::MAX — attacker-settable on a real socket —
        // followed by a duplicate or reordered neighbors overflowed (debug
        // panic; wrapped gap detection in release).
        let mut r = recv();
        let _ = r.on_data(&data(u64::MAX), SimTime::ZERO);
        let _ = r.on_data(&data(u64::MAX), SimTime::ZERO); // duplicate at the top
        let _ = r.on_data(&data(u64::MAX - 2), SimTime::ZERO); // reordered below
        let _ = r.on_data(&data(u64::MAX - 1), SimTime::ZERO); // fills the hole
        assert_eq!(r.largest_pn(), Some(u64::MAX));
        assert_eq!(r.range_count(), 1);
        // Duplicates adjacent to the top must not register fresh gaps.
        let before = r.stats().gaps_observed;
        let _ = r.on_data(&data(u64::MAX), SimTime::ZERO);
        assert_eq!(r.stats().gaps_observed, before);
    }

    #[test]
    fn internal_range_set_is_bounded() {
        // Regression: only the ACK *encoding* honored `max_ranges`; the
        // internal Vec grew one range per every-other-pn packet, unbounded
        // on adversarial input.
        let mut r = ReceiverCore::new(ReceiverConfig {
            max_ranges: 8,
            ack_every: u32::MAX,
            immediate_on_gap: false,
            ..ReceiverConfig::default()
        });
        for pn in 0..4096u64 {
            let _ = r.on_data(&data(pn * 2), SimTime::ZERO);
        }
        assert!(r.range_count() <= 8, "ranges = {}", r.range_count());
        assert_eq!(r.largest_pn(), Some(8190));
    }

    #[test]
    fn receiver_events_capture_identifiers() {
        let mut r = recv();
        let _ = r.on_data(&data(0), SimTime::ZERO);
        let _ = r.on_data(&data(1), SimTime::ZERO);
        let events = r.drain_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0], ReceiverEvent { pn: 0, id: 5 });
        assert_eq!(events[1], ReceiverEvent { pn: 1, id: 18 });
        assert!(r.drain_events().is_empty());
    }

    #[test]
    fn non_data_payloads_ignored() {
        let mut r = recv();
        let ack_pkt = Packet::ack(FlowId(0), 1, AckInfo::default(), 60, SimTime::ZERO);
        assert!(r.on_data(&ack_pkt, SimTime::ZERO).is_none());
        assert_eq!(r.stats().received_packets, 0);
    }
}
