//! The QUIC-like "paranoid" base transport.
//!
//! The paper's premise is a transport whose headers and payloads are
//! encrypted and authenticated so middleboxes cannot split, parse, or spoof
//! it (§1). This module provides that base protocol for the simulator:
//! reliable delivery over [`SenderCore`]/[`ReceiverCore`] state machines
//! (sans-IO, so the sidecar crate can compose them into modified end
//! hosts), plus ready-to-use [`SenderNode`]/[`ReceiverNode`] wrappers for
//! plain unmodified hosts.

pub mod cc;
pub mod receiver;
pub mod rtt;
pub mod sender;

pub use cc::{Bbr, CcAlgorithm, CongestionControl, Cubic, FixedWindow, NewReno};
pub use receiver::{ReceiverConfig, ReceiverCore, ReceiverEvent, ReceiverStats};
pub use rtt::RttEstimator;
pub use sender::{SenderConfig, SenderCore, SenderEvent, SenderStats};

use crate::node::{Context, IfaceId, Node};
use crate::packet::{Packet, PacketKind, Payload};
use std::any::Any;

/// Drains `core`'s transport events and mirrors end-to-end loss/recovery
/// into the flight recorder: `Lost` becomes [`sidecar_obs::Event::E2eLost`]
/// (the pn→unit join point) and retransmitting `Sent`s become
/// [`sidecar_obs::Event::E2eRetx`]. Every node wrapping a [`SenderCore`]
/// (the plain [`SenderNode`] here, the CCD/ACK-reduction servers in the
/// sidecar crate) calls this from its pump so lifecycle reconstruction sees
/// recovery no matter which protocol owns the core.
#[cfg(feature = "obs")]
pub fn emit_sender_lifecycle(core: &mut SenderCore, ctx: &mut Context) {
    let node = ctx.node_id().0 as u32;
    let flow = core.config().flow.0;
    for event in core.drain_events() {
        match event {
            SenderEvent::Lost { pn, unit, .. } => ctx.obs_event(sidecar_obs::Event::E2eLost {
                node,
                flow,
                seq: pn,
                unit,
            }),
            SenderEvent::Sent {
                pn,
                unit,
                retx: true,
                ..
            } => ctx.obs_event(sidecar_obs::Event::E2eRetx {
                node,
                flow,
                seq: pn,
                unit,
            }),
            _ => {}
        }
    }
}

/// Timer token used by [`SenderNode`] for retransmission timeouts.
const TOKEN_RTO: u64 = 1;
/// Timer token used by [`ReceiverNode`] for delayed ACKs.
const TOKEN_DELAYED_ACK: u64 = 2;

/// An unmodified sending end host: a [`SenderCore`] attached to interface 0.
pub struct SenderNode {
    core: SenderCore,
}

impl SenderNode {
    /// Creates the node.
    pub fn new(cfg: SenderConfig) -> Self {
        SenderNode {
            core: SenderCore::new(cfg),
        }
    }

    /// Boxed convenience constructor for `World::add_node`.
    pub fn boxed(cfg: SenderConfig) -> Box<Self> {
        Box::new(Self::new(cfg))
    }

    /// Sender statistics.
    pub fn stats(&self) -> &SenderStats {
        self.core.stats()
    }

    /// The underlying core (read access for assertions).
    pub fn core(&self) -> &SenderCore {
        &self.core
    }

    /// The underlying core (mutable; used by scenario drivers).
    pub fn core_mut(&mut self) -> &mut SenderCore {
        &mut self.core
    }

    /// Transmit whatever the window allows and keep the RTO timer armed.
    fn pump(core: &mut SenderCore, ctx: &mut Context) {
        for pkt in core.poll_send(ctx.now()) {
            ctx.send(IfaceId(0), pkt);
        }
        #[cfg(feature = "obs")]
        emit_sender_lifecycle(core, ctx);
        if let Some(deadline) = core.next_timeout() {
            ctx.set_timer_at(deadline.max(ctx.now()), TOKEN_RTO);
        }
    }
}

impl Node for SenderNode {
    fn on_start(&mut self, ctx: &mut Context) {
        Self::pump(&mut self.core, ctx);
    }

    fn on_packet(&mut self, _iface: IfaceId, packet: Packet, ctx: &mut Context) {
        if let Payload::Ack(ref info) = packet.payload {
            self.core.on_ack(info, ctx.now());
        }
        Self::pump(&mut self.core, ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context) {
        if token != TOKEN_RTO {
            return;
        }
        match self.core.next_timeout() {
            Some(deadline) if ctx.now() >= deadline => {
                self.core.on_rto(ctx.now());
                Self::pump(&mut self.core, ctx);
            }
            Some(_) | None => {
                // Stale timer; pump re-arms if needed.
                Self::pump(&mut self.core, ctx);
            }
        }
    }

    fn name(&self) -> &str {
        "transport-sender"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// An unmodified receiving end host: a [`ReceiverCore`] attached to
/// interface 0.
pub struct ReceiverNode {
    core: ReceiverCore,
}

impl ReceiverNode {
    /// Creates the node.
    pub fn new(cfg: ReceiverConfig) -> Self {
        ReceiverNode {
            core: ReceiverCore::new(cfg),
        }
    }

    /// Boxed convenience constructor for `World::add_node`.
    pub fn boxed(cfg: ReceiverConfig) -> Box<Self> {
        Box::new(Self::new(cfg))
    }

    /// Receiver statistics.
    pub fn stats(&self) -> &ReceiverStats {
        self.core.stats()
    }

    /// The underlying core.
    pub fn core(&self) -> &ReceiverCore {
        &self.core
    }

    /// The underlying core (mutable).
    pub fn core_mut(&mut self) -> &mut ReceiverCore {
        &mut self.core
    }
}

impl Node for ReceiverNode {
    fn on_packet(&mut self, _iface: IfaceId, packet: Packet, ctx: &mut Context) {
        if packet.kind != PacketKind::Data {
            return;
        }
        if let Some(ack) = self.core.on_data(&packet, ctx.now()) {
            ctx.send(IfaceId(0), ack);
        } else if let Some(deadline) = self.core.ack_deadline() {
            ctx.set_timer_at(deadline, TOKEN_DELAYED_ACK);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context) {
        if token != TOKEN_DELAYED_ACK {
            return;
        }
        if let Some(ack) = self.core.poll_delayed_ack(ctx.now()) {
            ctx.send(IfaceId(0), ack);
        }
    }

    fn name(&self) -> &str {
        "transport-receiver"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{LinkConfig, LossModel};
    use crate::time::{SimDuration, SimTime};
    use crate::world::World;

    fn two_hosts(
        seed: u64,
        loss: LossModel,
        total: u64,
        cc: CcAlgorithm,
    ) -> (World, crate::node::NodeId, crate::node::NodeId) {
        let mut w = World::new(seed);
        let s = w.add_node(SenderNode::boxed(SenderConfig {
            total_packets: Some(total),
            cc,
            ..SenderConfig::default()
        }));
        let r = w.add_node(ReceiverNode::boxed(ReceiverConfig::default()));
        let data_link = LinkConfig {
            rate_bps: 100_000_000,
            delay: SimDuration::from_millis(20),
            loss,
            ..LinkConfig::default()
        };
        let ack_link = LinkConfig {
            rate_bps: 100_000_000,
            delay: SimDuration::from_millis(20),
            ..LinkConfig::default()
        };
        w.connect(s, r, data_link, ack_link);
        (w, s, r)
    }

    #[test]
    fn lossless_flow_completes() {
        let (mut w, s, r) = two_hosts(1, LossModel::None, 500, CcAlgorithm::NewReno);
        w.run_until_idle(10_000_000);
        let sender = w.node_as::<SenderNode>(s);
        assert!(sender.core().is_complete());
        assert_eq!(sender.stats().delivered_packets, 500);
        assert_eq!(sender.stats().retransmissions, 0);
        let receiver = w.node_as::<ReceiverNode>(r);
        assert_eq!(receiver.stats().unique_units, 500);
    }

    #[test]
    fn flow_completes_despite_loss() {
        let (mut w, s, r) = two_hosts(
            2,
            LossModel::Bernoulli { p: 0.05 },
            500,
            CcAlgorithm::NewReno,
        );
        w.run_until_idle(10_000_000);
        let sender = w.node_as::<SenderNode>(s);
        assert!(
            sender.core().is_complete(),
            "flow stalled: {:?}",
            sender.stats()
        );
        assert_eq!(sender.stats().delivered_packets, 500);
        assert!(sender.stats().retransmissions > 0);
        let receiver = w.node_as::<ReceiverNode>(r);
        assert_eq!(receiver.stats().unique_units, 500);
    }

    #[test]
    fn flow_completes_with_cubic_and_heavy_loss() {
        let (mut w, s, _r) =
            two_hosts(3, LossModel::Bernoulli { p: 0.15 }, 300, CcAlgorithm::Cubic);
        w.run_until_idle(50_000_000);
        let sender = w.node_as::<SenderNode>(s);
        assert!(sender.core().is_complete(), "{:?}", sender.stats());
    }

    #[test]
    fn completion_time_grows_with_loss() {
        let time_for = |p: f64| {
            let loss = if p == 0.0 {
                LossModel::None
            } else {
                LossModel::Bernoulli { p }
            };
            let (mut w, s, _) = two_hosts(4, loss, 400, CcAlgorithm::NewReno);
            w.run_until_idle(50_000_000);
            w.node_as::<SenderNode>(s)
                .stats()
                .completed_at
                .expect("flow completed")
        };
        let clean = time_for(0.0);
        let lossy = time_for(0.08);
        assert!(
            lossy > clean,
            "loss should slow completion: clean {clean}, lossy {lossy}"
        );
    }

    #[test]
    fn rtt_estimate_tracks_path() {
        let (mut w, s, _) = two_hosts(5, LossModel::None, 200, CcAlgorithm::NewReno);
        w.run_until_idle(10_000_000);
        let sender = w.node_as::<SenderNode>(s);
        let srtt_ms = sender.core().rtt().srtt().as_nanos() as f64 / 1e6;
        // Path RTT is 40 ms propagation + serialization + delayed acks.
        assert!((40.0..80.0).contains(&srtt_ms), "srtt {srtt_ms}ms");
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let (mut w, s, _) = two_hosts(
                seed,
                LossModel::Bernoulli { p: 0.05 },
                300,
                CcAlgorithm::NewReno,
            );
            w.run_until_idle(50_000_000);
            let st = w.node_as::<SenderNode>(s).stats().clone();
            (st.sent_packets, st.retransmissions, st.completed_at)
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn bbr_tolerates_noncongestive_loss_better_than_newreno() {
        // The property that motivates §2.1's baseline choice: on a random-
        // loss path, a model-based sender barely slows down while AIMD
        // collapses.
        let time_for = |cc: CcAlgorithm, p: f64| {
            let loss = if p == 0.0 {
                LossModel::None
            } else {
                LossModel::Bernoulli { p }
            };
            let (mut w, s, _) = two_hosts(31, loss, 600, cc);
            w.run_until_idle(100_000_000);
            w.node_as::<SenderNode>(s)
                .stats()
                .completed_at
                .expect("completed")
                .as_secs_f64()
        };
        let newreno_penalty =
            time_for(CcAlgorithm::NewReno, 0.02) / time_for(CcAlgorithm::NewReno, 0.0);
        let bbr_penalty = time_for(CcAlgorithm::Bbr, 0.02) / time_for(CcAlgorithm::Bbr, 0.0);
        assert!(
            bbr_penalty < newreno_penalty,
            "bbr {bbr_penalty:.2}x vs newreno {newreno_penalty:.2}x"
        );
        assert!(bbr_penalty < 2.0, "bbr penalty {bbr_penalty:.2}x too high");
    }

    #[test]
    fn unbounded_flow_runs_to_deadline() {
        let mut w = World::new(9);
        let s = w.add_node(SenderNode::boxed(SenderConfig {
            total_packets: None,
            ..SenderConfig::default()
        }));
        let r = w.add_node(ReceiverNode::boxed(ReceiverConfig::default()));
        w.connect(s, r, LinkConfig::default(), LinkConfig::default());
        w.run_until(SimTime::from_nanos(200_000_000)); // 200 ms
        let sender = w.node_as::<SenderNode>(s);
        assert!(!sender.core().is_complete());
        assert!(sender.stats().sent_packets > 100);
    }
}
