//! The sending side of the "paranoid" base transport.
//!
//! [`SenderCore`] is a sans-IO state machine: feed it ACKs and timer
//! expirations, poll it for packets to transmit. [`SenderNode`](super::SenderNode)
//! wraps the core as a simulator [`Node`](crate::node::Node). The split exists so the sidecar crate can
//! build *modified end hosts* (paper §2.1: "the only changes that need to be
//! made to the end hosts are installing a library…") by composing the same
//! core with sidecar logic, without forking the transport.
//!
//! Transport model (QUIC-flavored):
//!
//! * every transmission gets a fresh monotonically-increasing packet number
//!   (`pn`) and a fresh pseudo-random identifier (a retransmitted data unit
//!   is a *new* encrypted packet on the wire, so it gets a new identifier —
//!   exactly why a sidecar can treat identifiers as unique coupons);
//! * loss detection by packet-number threshold (QUIC's default 3) plus an
//!   RTO fallback with exponential backoff;
//! * at most one congestion event per window (recovery epoch tracking).

use super::cc::{CcAlgorithm, CongestionControl};
use super::rtt::RttEstimator;
use crate::packet::{AckInfo, FlowId, Packet};
use crate::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashSet, VecDeque};

/// Configuration of a transport sender.
#[derive(Clone, Debug)]
pub struct SenderConfig {
    /// Flow identifier stamped on every packet.
    pub flow: FlowId,
    /// Size of every data packet on the wire, bytes.
    pub mtu: u32,
    /// How many data units to deliver; `None` means an unbounded flow
    /// (run the world with a deadline instead of to idle).
    pub total_packets: Option<u64>,
    /// Congestion-control algorithm.
    pub cc: CcAlgorithm,
    /// Initial congestion window, packets.
    pub initial_cwnd: u64,
    /// Packet-number reordering threshold for declaring loss.
    pub reorder_threshold: u64,
    /// Identifier width in bits (paper parameter `b`).
    pub id_bits: u32,
    /// Seed of this sender's identifier stream.
    pub id_seed: u64,
    /// Floor for the retransmission timeout.
    pub min_rto: SimDuration,
    /// Slack added to the RTO deadline for the peer's ACK delay (QUIC's
    /// PTO adds `max_ack_delay`; without it, sparse/delayed ACKs cause
    /// spurious timeouts).
    pub peer_max_ack_delay: SimDuration,
}

impl Default for SenderConfig {
    fn default() -> Self {
        SenderConfig {
            flow: FlowId(0),
            mtu: 1500,
            total_packets: None,
            cc: CcAlgorithm::NewReno,
            initial_cwnd: 10,
            reorder_threshold: 3,
            id_bits: 32,
            id_seed: 0x5EED_CAFE,
            min_rto: SimDuration::from_millis(10),
            peer_max_ack_delay: SimDuration::from_millis(25),
        }
    }
}

/// What happened inside the core — drained by wrappers that need to observe
/// the flow (the sidecar library mirrors `Sent` events into its power sums).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SenderEvent {
    /// A packet left the sender.
    Sent {
        /// Packet number.
        pn: u64,
        /// Opaque identifier on the wire.
        id: u64,
        /// Data unit carried.
        unit: u64,
        /// Whether this was a retransmission of the unit.
        retx: bool,
    },
    /// A packet number was acknowledged.
    Acked {
        /// Packet number.
        pn: u64,
        /// Its identifier.
        id: u64,
    },
    /// A packet number was declared lost.
    Lost {
        /// Packet number.
        pn: u64,
        /// Its identifier.
        id: u64,
        /// The data unit it carried. Retransmissions travel under a fresh
        /// packet number, so the unit is the only stable key joining a loss
        /// to its eventual recovery (the flight recorder leans on this).
        unit: u64,
    },
}

/// Aggregate sender statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SenderStats {
    /// Total packets transmitted (including retransmissions).
    pub sent_packets: u64,
    /// Retransmitted packets.
    pub retransmissions: u64,
    /// Distinct data units acknowledged.
    pub delivered_packets: u64,
    /// Packet numbers declared lost.
    pub lost_packets: u64,
    /// Congestion events signaled to the controller.
    pub congestion_events: u64,
    /// Retransmission timeouts fired.
    pub rtos: u64,
    /// Completion time of the flow (all units delivered), if finished.
    pub completed_at: Option<SimTime>,
    /// Bytes transmitted.
    pub bytes_sent: u64,
}

impl SenderStats {
    /// Application goodput in bits/s over `[0, completed_at]`, given the
    /// per-unit payload size. `None` if the flow hasn't completed.
    pub fn goodput_bps(&self, mtu: u32) -> Option<f64> {
        let done = self.completed_at?;
        let secs = done.as_secs_f64();
        if secs == 0.0 {
            return None;
        }
        Some(self.delivered_packets as f64 * mtu as f64 * 8.0 / secs)
    }
}

/// Book-keeping for one in-flight transmission.
#[derive(Clone, Copy, Debug)]
struct InFlight {
    unit: u64,
    id: u64,
    sent_at: SimTime,
}

/// Deterministic identifier stream (SplitMix64 — matches the quACK crate's
/// simulation identifiers).
#[derive(Clone, Debug)]
struct IdStream {
    state: u64,
    mask: u64,
}

impl IdStream {
    fn new(bits: u32, seed: u64) -> Self {
        assert!((1..=64).contains(&bits));
        IdStream {
            state: seed,
            mask: if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            },
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) & self.mask
    }
}

/// The sans-IO transport sender.
pub struct SenderCore {
    cfg: SenderConfig,
    cc: Box<dyn CongestionControl>,
    rtt: RttEstimator,
    ids: IdStream,
    next_pn: u64,
    next_unit: u64,
    /// Units awaiting (re)transmission after being declared lost.
    retx_queue: VecDeque<u64>,
    /// In-flight transmissions by packet number (ordered: oldest first).
    in_flight: BTreeMap<u64, InFlight>,
    largest_acked: Option<u64>,
    /// Packets declared lost whose ACK may still arrive late (reordering,
    /// §3.3 "Re-ordered packets"); a late ACK cancels the retransmission.
    lost_unacked: BTreeMap<u64, InFlight>,
    delivered_units: HashSet<u64>,
    /// Packet numbers below this have already triggered a congestion event.
    recovery_until: u64,
    rto_backoff: u32,
    /// External window cap steered by a sidecar (paper §2.1), if any.
    cwnd_cap: Option<u64>,
    /// Packet numbers released from window accounting by a sidecar
    /// (ACK-reduction, paper §2.2): still awaiting end-to-end ACKs for
    /// reliability, but no longer holding back new transmissions.
    window_released: HashSet<u64>,
    stats: SenderStats,
    events: Vec<SenderEvent>,
}

impl SenderCore {
    /// Creates a sender from configuration (congestion controller built from
    /// `cfg.cc`).
    pub fn new(cfg: SenderConfig) -> Self {
        let cc = cfg.cc.build(cfg.initial_cwnd);
        Self::with_cc(cfg, cc)
    }

    /// Creates a sender with an explicit congestion controller.
    pub fn with_cc(cfg: SenderConfig, cc: Box<dyn CongestionControl>) -> Self {
        let ids = IdStream::new(cfg.id_bits, cfg.id_seed);
        let min_rto = cfg.min_rto;
        SenderCore {
            cfg,
            cc,
            rtt: RttEstimator::new(min_rto),
            ids,
            next_pn: 0,
            next_unit: 0,
            retx_queue: VecDeque::new(),
            in_flight: BTreeMap::new(),
            largest_acked: None,
            lost_unacked: BTreeMap::new(),
            delivered_units: HashSet::new(),
            recovery_until: 0,
            rto_backoff: 0,
            cwnd_cap: None,
            window_released: HashSet::new(),
            stats: SenderStats::default(),
            events: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SenderConfig {
        &self.cfg
    }

    /// Current effective congestion window (controller window, clamped by
    /// the sidecar cap if set).
    pub fn effective_cwnd(&self) -> u64 {
        let w = self.cc.cwnd();
        match self.cwnd_cap {
            Some(cap) => w.min(cap).max(1),
            None => w,
        }
    }

    /// Sets or clears the sidecar-steered window cap (paper §2.1: "the
    /// server end host … can decrease the congestion window").
    pub fn set_cwnd_cap(&mut self, cap: Option<u64>) {
        self.cwnd_cap = cap;
    }

    /// Replaces the congestion controller mid-flow, starting it at
    /// `initial_cwnd` (floored at the minimum window). Used by the sidecar
    /// supervision layer: a CCD server steered by a `Fixed` controller falls
    /// back to a real end-to-end controller when its sidecar goes dark, and
    /// swaps back on recovery. RTT state, the in-flight map, and the loss
    /// log all survive the swap — only the window policy changes.
    pub fn swap_cc(&mut self, algo: CcAlgorithm, initial_cwnd: u64) {
        self.cc = algo.build(initial_cwnd.max(2));
    }

    /// The RTT estimator.
    pub fn rtt(&self) -> &RttEstimator {
        &self.rtt
    }

    /// Statistics so far.
    pub fn stats(&self) -> &SenderStats {
        &self.stats
    }

    /// Whether every data unit has been acknowledged.
    pub fn is_complete(&self) -> bool {
        self.stats.completed_at.is_some()
    }

    /// Packets currently in flight.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Drains the event log (sidecar hook).
    pub fn drain_events(&mut self) -> Vec<SenderEvent> {
        std::mem::take(&mut self.events)
    }

    /// Releases `pn` from congestion-window accounting without treating it
    /// as delivered: the ACK-reduction sidecar calls this when a proxy
    /// quACK confirms the packet crossed the server–proxy segment (§2.2
    /// "enable the server to move its sending window ahead more quickly").
    /// End-to-end reliability is untouched — the packet stays in flight for
    /// loss detection and RTO.
    pub fn mark_window_released(&mut self, pn: u64) {
        if self.in_flight.contains_key(&pn) {
            self.window_released.insert(pn);
        }
    }

    /// In-flight packets that still count against the congestion window.
    pub fn window_in_flight(&self) -> u64 {
        (self.in_flight.len() - self.window_released.len()) as u64
    }

    /// Credits the congestion controller with `acked` packets confirmed by
    /// a sidecar quACK rather than an end-to-end ACK (§2.2: the server need
    /// not "rely on end-to-end ACKs to make decisions to increase the
    /// cwnd"). Does not touch reliability state — only window growth.
    pub fn sidecar_ack_credit(&mut self, acked: u64, now: SimTime) {
        if acked > 0 {
            self.cc.on_ack(acked, now, &self.rtt);
        }
    }

    /// Produces every packet the window currently allows.
    pub fn poll_send(&mut self, now: SimTime) -> Vec<Packet> {
        let mut out = Vec::new();
        while self.window_in_flight() < self.effective_cwnd() {
            let Some((unit, retx)) = self.next_work() else {
                break;
            };
            let pn = self.next_pn;
            self.next_pn += 1;
            let id = self.ids.next();
            self.in_flight.insert(
                pn,
                InFlight {
                    unit,
                    id,
                    sent_at: now,
                },
            );
            self.stats.sent_packets += 1;
            self.stats.bytes_sent += self.cfg.mtu as u64;
            if retx {
                self.stats.retransmissions += 1;
            }
            self.events.push(SenderEvent::Sent { pn, id, unit, retx });
            out.push(Packet::data_unit(
                self.cfg.flow,
                pn,
                unit,
                id,
                self.cfg.mtu,
                now,
            ));
        }
        out
    }

    /// Picks the next data unit to transmit: lost units first, then fresh.
    fn next_work(&mut self) -> Option<(u64, bool)> {
        while let Some(unit) = self.retx_queue.pop_front() {
            if !self.delivered_units.contains(&unit) {
                return Some((unit, true));
            }
            // Spurious retransmission avoided: original arrived after all.
        }
        match self.cfg.total_packets {
            Some(total) if self.next_unit >= total => None,
            _ => {
                let unit = self.next_unit;
                self.next_unit += 1;
                Some((unit, false))
            }
        }
    }

    /// Processes an end-to-end ACK.
    pub fn on_ack(&mut self, ack: &AckInfo, now: SimTime) {
        let mut newly_acked = 0u64;
        let mut ack_of_largest: Option<InFlight> = None;
        let mut max_acked_pn: Option<u64> = None;
        // Collect acked packet numbers (ranges are few; in-flight is a map).
        let acked_pns: Vec<u64> = self
            .in_flight
            .keys()
            .copied()
            .filter(|&pn| ack.acks(pn))
            .collect();
        for pn in acked_pns {
            let info = self.in_flight.remove(&pn).expect("collected above");
            self.window_released.remove(&pn);
            newly_acked += 1;
            max_acked_pn = Some(max_acked_pn.map_or(pn, |m: u64| m.max(pn)));
            if pn == ack.largest {
                ack_of_largest = Some(info);
            }
            if self.delivered_units.insert(info.unit) {
                self.stats.delivered_packets += 1;
            }
            self.events.push(SenderEvent::Acked { pn, id: info.id });
        }
        // Late ACKs for packets we already wrote off: the data arrived after
        // all, so cancel the pending retransmission of their units.
        let late_pns: Vec<u64> = self
            .lost_unacked
            .keys()
            .copied()
            .filter(|&pn| ack.acks(pn))
            .collect();
        for pn in late_pns {
            let info = self.lost_unacked.remove(&pn).expect("collected above");
            newly_acked += 1;
            max_acked_pn = Some(max_acked_pn.map_or(pn, |m: u64| m.max(pn)));
            if self.delivered_units.insert(info.unit) {
                self.stats.delivered_packets += 1;
            }
            self.events.push(SenderEvent::Acked { pn, id: info.id });
        }
        if newly_acked == 0 {
            return;
        }
        self.rto_backoff = 0;
        if let Some(info) = ack_of_largest {
            self.rtt.on_sample(now - info.sent_at);
        }
        // Advance loss detection only from packet numbers this sender
        // actually sent and saw acknowledged — never from the wire-supplied
        // `ack.largest`, which a forged or corrupted ACK could set to
        // u64::MAX and instantly declare the whole window lost via the
        // reorder threshold. For an honest peer the two agree: its largest
        // is always a packet we transmitted.
        let advanced = max_acked_pn.expect("newly_acked > 0 implies an acked pn");
        self.largest_acked = Some(self.largest_acked.map_or(advanced, |l| l.max(advanced)));
        self.cc.on_ack(newly_acked, now, &self.rtt);
        self.detect_losses(now);
        self.check_complete(now);
    }

    /// Packet-number-threshold loss detection.
    fn detect_losses(&mut self, now: SimTime) {
        let Some(largest) = self.largest_acked else {
            return;
        };
        // A packet is lost once `threshold` later packets were acked past
        // it: pn + threshold <= largest (QUIC's packet-number threshold).
        if largest < self.cfg.reorder_threshold {
            return;
        }
        let cutoff = largest - self.cfg.reorder_threshold;
        let lost_pns: Vec<u64> = self.in_flight.range(..=cutoff).map(|(&pn, _)| pn).collect();
        let mut congestion = false;
        for pn in lost_pns {
            let info = self.in_flight.remove(&pn).expect("ranged above");
            self.window_released.remove(&pn);
            self.stats.lost_packets += 1;
            self.events.push(SenderEvent::Lost {
                pn,
                id: info.id,
                unit: info.unit,
            });
            if !self.delivered_units.contains(&info.unit) {
                self.retx_queue.push_back(info.unit);
                self.lost_unacked.insert(pn, info);
            }
            if pn >= self.recovery_until {
                congestion = true;
            }
        }
        // Bound the late-ACK record: entries whose unit has since been
        // delivered can never cancel anything anymore.
        self.lost_unacked
            .retain(|_, info| !self.delivered_units.contains(&info.unit));
        if congestion {
            self.recovery_until = self.next_pn;
            self.stats.congestion_events += 1;
            self.cc.on_congestion_event(now);
        }
    }

    /// The deadline of the retransmission timer, if any packets are in
    /// flight.
    pub fn next_timeout(&self) -> Option<SimTime> {
        let oldest = self.in_flight.values().map(|i| i.sent_at).min()?;
        let rto = self
            .rtt
            .rto()
            .saturating_mul(1u64 << self.rto_backoff.min(16));
        Some(oldest + rto + self.cfg.peer_max_ack_delay)
    }

    /// Fires the retransmission timeout: declares everything in flight
    /// lost (classic TCP go-back semantics — a late ACK for any of it
    /// still cancels the retransmission), collapses the window, and backs
    /// off. Draining the in-flight set is what lets the now-unit window
    /// admit the retransmission immediately.
    pub fn on_rto(&mut self, now: SimTime) {
        if self.in_flight.is_empty() {
            return;
        }
        self.stats.rtos += 1;
        let pns: Vec<u64> = self.in_flight.keys().copied().collect();
        for pn in pns {
            let info = self.in_flight.remove(&pn).expect("keyed above");
            self.window_released.remove(&pn);
            self.stats.lost_packets += 1;
            self.events.push(SenderEvent::Lost {
                pn,
                id: info.id,
                unit: info.unit,
            });
            if !self.delivered_units.contains(&info.unit) {
                self.retx_queue.push_back(info.unit);
                self.lost_unacked.insert(pn, info);
            }
        }
        self.rto_backoff += 1;
        self.recovery_until = self.next_pn;
        self.cc.on_rto();
        let _ = now;
    }

    fn check_complete(&mut self, now: SimTime) {
        if self.stats.completed_at.is_none() {
            if let Some(total) = self.cfg.total_packets {
                if self.delivered_units.len() as u64 >= total {
                    self.stats.completed_at = Some(now);
                }
            }
        }
    }

    /// Name of the congestion controller.
    pub fn cc_name(&self) -> &'static str {
        self.cc.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack_for(pns: &[u64]) -> AckInfo {
        let largest = *pns.iter().max().unwrap();
        let mut sorted = pns.to_vec();
        sorted.sort_unstable();
        // Collapse into ranges.
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for &pn in &sorted {
            match ranges.last_mut() {
                Some((_, e)) if *e + 1 == pn => *e = pn,
                _ => ranges.push((pn, pn)),
            }
        }
        ranges.reverse();
        AckInfo {
            largest,
            ranges,
            immediate: false,
        }
    }

    fn core(total: u64) -> SenderCore {
        SenderCore::new(SenderConfig {
            total_packets: Some(total),
            initial_cwnd: 4,
            ..SenderConfig::default()
        })
    }

    #[test]
    fn initial_poll_respects_cwnd() {
        let mut s = core(100);
        let pkts = s.poll_send(SimTime::ZERO);
        assert_eq!(pkts.len(), 4);
        assert_eq!(s.in_flight_count(), 4);
        // No window space left.
        assert!(s.poll_send(SimTime::ZERO).is_empty());
        // Packet numbers and units are sequential; ids pseudo-random.
        for (i, p) in pkts.iter().enumerate() {
            assert_eq!(p.seq, i as u64);
            assert!(matches!(p.payload, crate::packet::Payload::Data { unit } if unit == i as u64));
        }
    }

    #[test]
    fn ack_opens_window_and_samples_rtt() {
        let mut s = core(100);
        let pkts = s.poll_send(SimTime::ZERO);
        let t1 = SimTime::from_nanos(60_000_000);
        s.on_ack(&ack_for(&[0, 1, 2, 3]), t1);
        assert_eq!(s.stats().delivered_packets, 4);
        assert_eq!(s.rtt().latest(), Some(SimDuration::from_millis(60)));
        // NewReno slow start: window grew, more packets flow.
        let next = s.poll_send(t1);
        assert!(next.len() > pkts.len());
    }

    #[test]
    fn reorder_threshold_declares_loss_and_retransmits() {
        let mut s = core(100);
        let _ = s.poll_send(SimTime::ZERO); // pns 0..4 in flight
                                            // Ack pns 1..=3 — pn 0 is 3 below largest: declared lost.
        s.on_ack(&ack_for(&[1, 2, 3]), SimTime::from_nanos(1_000_000));
        assert_eq!(s.stats().lost_packets, 1);
        assert_eq!(s.stats().congestion_events, 1);
        let retx = s.poll_send(SimTime::from_nanos(1_100_000));
        // First packet out is the retransmission of unit 0 with a fresh pn.
        let first = &retx[0];
        assert!(matches!(
            first.payload,
            crate::packet::Payload::Data { unit: 0 }
        ));
        assert!(first.seq >= 4);
        assert_eq!(s.stats().retransmissions, 1);
        // The retransmission's identifier differs from the original's.
        let events = s.drain_events();
        let ids: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                SenderEvent::Sent { unit: 0, id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(ids.len(), 2);
        assert_ne!(ids[0], ids[1]);
    }

    #[test]
    fn one_congestion_event_per_window() {
        let mut s = core(100);
        let _ = s.poll_send(SimTime::ZERO); // pns 0..4
                                            // Lose pns 0 and 1 in the same window: one congestion event.
        s.on_ack(&ack_for(&[3]), SimTime::from_nanos(1)); // ack pn 3
        assert_eq!(s.stats().congestion_events, 1);
        let _ = s.poll_send(SimTime::from_nanos(2));
        // pn 1 and 2 still outstanding? ack a later pn to flush them.
        let in_flight_before = s.in_flight_count();
        assert!(in_flight_before > 0);
    }

    #[test]
    fn rto_fires_and_backs_off() {
        let mut s = core(10);
        let sent = s.poll_send(SimTime::ZERO);
        let deadline = s.next_timeout().unwrap();
        assert!(deadline > SimTime::ZERO);
        s.on_rto(deadline);
        assert_eq!(s.stats().rtos, 1);
        // Everything in flight was written off (TCP go-back).
        assert_eq!(s.in_flight_count(), 0);
        assert_eq!(s.stats().lost_packets, sent.len() as u64);
        // Window collapsed to 1, admitting exactly the first retransmission.
        assert_eq!(s.effective_cwnd(), 1);
        let retx = s.poll_send(deadline);
        assert_eq!(retx.len(), 1);
        assert!(matches!(
            retx[0].payload,
            crate::packet::Payload::Data { unit: 0 }
        ));
        // Backoff pushes the next deadline beyond one plain RTO from now.
        let d2 = s.next_timeout().unwrap();
        assert!(d2 > deadline);
    }

    #[test]
    fn forged_largest_cannot_nuke_the_window() {
        // Regression: `largest_acked` used to advance straight to the
        // wire-supplied `ack.largest`. A forged ACK claiming
        // largest = u64::MAX (while genuinely acking one real pn so the
        // early-return didn't save us) pushed the loss cutoff past every
        // in-flight packet and declared the whole window lost.
        let mut s = core(100);
        let _ = s.poll_send(SimTime::ZERO); // pns 0..4 in flight
        let forged = AckInfo {
            largest: u64::MAX,
            ranges: vec![(u64::MAX, u64::MAX), (0, 0)],
            immediate: false,
        };
        s.on_ack(&forged, SimTime::from_nanos(1_000_000));
        // pn 0 was genuinely acked; the forged largest must not have
        // written off pns 1..4.
        assert_eq!(s.stats().delivered_packets, 1);
        assert_eq!(s.stats().lost_packets, 0);
        assert_eq!(s.in_flight_count(), 3);
        // Loss detection still keys off real acknowledgments afterwards.
        s.on_ack(&ack_for(&[1, 2, 3]), SimTime::from_nanos(2_000_000));
        assert_eq!(s.in_flight_count(), 0);
        assert_eq!(s.stats().lost_packets, 0);
    }

    #[test]
    fn completion_detected() {
        let mut s = core(4);
        let pkts = s.poll_send(SimTime::ZERO);
        assert_eq!(pkts.len(), 4);
        assert!(!s.is_complete());
        s.on_ack(&ack_for(&[0, 1, 2, 3]), SimTime::from_nanos(500));
        assert!(s.is_complete());
        assert_eq!(s.stats().completed_at, Some(SimTime::from_nanos(500)));
        // No more work.
        assert!(s.poll_send(SimTime::from_nanos(600)).is_empty());
        assert_eq!(s.next_timeout(), None);
    }

    #[test]
    fn spurious_retransmission_suppressed() {
        let mut s = core(10);
        let _ = s.poll_send(SimTime::ZERO); // pns 0..4
                                            // pn 0 declared lost via threshold…
        s.on_ack(&ack_for(&[3]), SimTime::from_nanos(1000));
        // …but unit 0's original arrives late (pn 0 acked) before retx sent.
        s.on_ack(&ack_for(&[0, 1, 2, 3]), SimTime::from_nanos(2000));
        let out = s.poll_send(SimTime::from_nanos(3000));
        // No packet re-carries unit 0.
        assert!(out
            .iter()
            .all(|p| !matches!(p.payload, crate::packet::Payload::Data { unit: 0 })));
        assert_eq!(s.stats().retransmissions, 0);
    }

    #[test]
    fn cwnd_cap_steers_window() {
        let mut s = core(1000);
        assert_eq!(s.effective_cwnd(), 4);
        s.set_cwnd_cap(Some(2));
        assert_eq!(s.effective_cwnd(), 2);
        assert_eq!(s.poll_send(SimTime::ZERO).len(), 2);
        s.set_cwnd_cap(None);
        assert_eq!(s.effective_cwnd(), 4);
        s.set_cwnd_cap(Some(0));
        assert_eq!(s.effective_cwnd(), 1, "cap clamps to at least 1");
    }

    #[test]
    fn goodput_requires_completion() {
        let mut s = core(2);
        assert_eq!(s.stats().goodput_bps(1500), None);
        let _ = s.poll_send(SimTime::ZERO);
        s.on_ack(&ack_for(&[0, 1]), SimTime::from_nanos(1_000_000_000));
        // 2 × 1500 B in 1 s = 24 kbit/s.
        let g = s.stats().goodput_bps(1500).unwrap();
        assert!((g - 24_000.0).abs() < 1.0, "{g}");
    }
}
