//! Pluggable congestion control for the simulated transport.
//!
//! The base protocol ships NewReno and CUBIC (the two algorithms smoltcp
//! also implements) plus a fixed-window control used by benchmarks and by
//! the congestion-control-division protocol's proxy segment. Windows are
//! counted in packets (MTU-sized segments), which keeps invariants crisp at
//! the fidelity this reproduction needs.

use super::rtt::RttEstimator;
use crate::time::{SimDuration, SimTime};

/// Congestion-control algorithm driving a sender's window.
pub trait CongestionControl: Send {
    /// Current congestion window, in packets (always ≥ 1).
    fn cwnd(&self) -> u64;

    /// `acked` packets newly acknowledged.
    fn on_ack(&mut self, acked: u64, now: SimTime, rtt: &RttEstimator);

    /// One congestion event (at most once per round trip; the sender
    /// deduplicates).
    fn on_congestion_event(&mut self, now: SimTime);

    /// Retransmission timeout: collapse the window.
    fn on_rto(&mut self);

    /// Algorithm name for reports.
    fn name(&self) -> &'static str;
}

/// Which congestion controller to instantiate (config-friendly handle).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CcAlgorithm {
    /// TCP NewReno-style AIMD.
    NewReno,
    /// CUBIC (RFC 8312-style window growth).
    Cubic,
    /// A BBR-flavoured model-based controller: paces to a measured
    /// bottleneck-bandwidth × min-RTT product and ignores individual
    /// losses. The strongest *end-to-end* baseline against
    /// congestion-control division on noncongestive-loss paths.
    Bbr,
    /// A fixed window of the given size: no reaction to loss. Used by
    /// microbenchmarks and as the "rate dictated by the sidecar" mode.
    Fixed(u64),
}

impl CcAlgorithm {
    /// Instantiates the controller with the given initial window.
    pub fn build(self, initial_cwnd: u64) -> Box<dyn CongestionControl> {
        match self {
            CcAlgorithm::NewReno => Box::new(NewReno::new(initial_cwnd)),
            CcAlgorithm::Cubic => Box::new(Cubic::new(initial_cwnd)),
            CcAlgorithm::Bbr => Box::new(Bbr::new(initial_cwnd)),
            CcAlgorithm::Fixed(w) => Box::new(FixedWindow::new(w)),
        }
    }
}

/// TCP NewReno: slow start then AIMD congestion avoidance.
#[derive(Clone, Debug)]
pub struct NewReno {
    cwnd: f64,
    ssthresh: f64,
}

impl NewReno {
    /// Creates NewReno with the given initial window (packets).
    pub fn new(initial_cwnd: u64) -> Self {
        NewReno {
            cwnd: initial_cwnd.max(1) as f64,
            ssthresh: f64::INFINITY,
        }
    }

    /// Whether the controller is in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }
}

impl CongestionControl for NewReno {
    fn cwnd(&self) -> u64 {
        self.cwnd.max(1.0) as u64
    }

    fn on_ack(&mut self, acked: u64, _now: SimTime, _rtt: &RttEstimator) {
        if self.in_slow_start() {
            self.cwnd += acked as f64;
            if self.cwnd > self.ssthresh {
                self.cwnd = self.ssthresh;
            }
        } else {
            // Congestion avoidance: ~1 packet per RTT.
            self.cwnd += acked as f64 / self.cwnd;
        }
    }

    fn on_congestion_event(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = self.ssthresh;
    }

    fn on_rto(&mut self) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
    }

    fn name(&self) -> &'static str {
        "newreno"
    }
}

/// CUBIC (RFC 8312): window growth `W(t) = C·(t − K)³ + W_max` after a
/// congestion event, with a Reno-friendly region for low-BDP paths.
#[derive(Clone, Debug)]
pub struct Cubic {
    cwnd: f64,
    ssthresh: f64,
    w_max: f64,
    k: f64,
    epoch_start: Option<SimTime>,
    /// Reno-friendly window estimate.
    w_est: f64,
}

/// CUBIC constant `C` (units: packets/sec³).
const CUBIC_C: f64 = 0.4;
/// Multiplicative decrease factor `β`.
const CUBIC_BETA: f64 = 0.7;

impl Cubic {
    /// Creates CUBIC with the given initial window (packets).
    pub fn new(initial_cwnd: u64) -> Self {
        Cubic {
            cwnd: initial_cwnd.max(1) as f64,
            ssthresh: f64::INFINITY,
            w_max: 0.0,
            k: 0.0,
            epoch_start: None,
            w_est: 0.0,
        }
    }
}

impl CongestionControl for Cubic {
    fn cwnd(&self) -> u64 {
        self.cwnd.max(1.0) as u64
    }

    fn on_ack(&mut self, acked: u64, now: SimTime, rtt: &RttEstimator) {
        if self.cwnd < self.ssthresh {
            self.cwnd += acked as f64;
            if self.cwnd > self.ssthresh {
                self.cwnd = self.ssthresh;
            }
            return;
        }
        let epoch_start = *self.epoch_start.get_or_insert_with(|| {
            // Fresh congestion-avoidance epoch (e.g. after slow start
            // exited without a loss event).
            self.w_max = self.cwnd;
            self.k = 0.0;
            self.w_est = self.cwnd;
            now
        });
        let t = (now - epoch_start).as_secs_f64();
        let target = CUBIC_C * (t - self.k).powi(3) + self.w_max;
        // Reno-friendly estimate: standard AIMD growth.
        let _ = rtt;
        self.w_est += acked as f64 * 3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA) / self.cwnd;
        let target = target.max(self.w_est);
        if target > self.cwnd {
            // Approach the cubic target over roughly one RTT.
            self.cwnd += (target - self.cwnd) / self.cwnd * acked as f64;
        } else {
            // Minimal growth in the concave plateau.
            self.cwnd += acked as f64 * 0.01 / self.cwnd;
        }
    }

    fn on_congestion_event(&mut self, _now: SimTime) {
        self.w_max = self.cwnd;
        self.cwnd = (self.cwnd * CUBIC_BETA).max(2.0);
        self.ssthresh = self.cwnd;
        self.k = ((self.w_max * (1.0 - CUBIC_BETA)) / CUBIC_C).cbrt();
        self.epoch_start = None;
        self.w_est = self.cwnd;
    }

    fn on_rto(&mut self) {
        self.w_max = self.cwnd;
        self.ssthresh = (self.cwnd * CUBIC_BETA).max(2.0);
        self.cwnd = 1.0;
        self.k = ((self.w_max * (1.0 - CUBIC_BETA)) / CUBIC_C).cbrt();
        self.epoch_start = None;
        self.w_est = self.cwnd;
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

/// A BBR-flavoured model-based controller.
///
/// Keeps a windowed-max estimate of the delivery rate (packets/s) and a
/// min-RTT, and sets `cwnd = gain × rate × min_rtt`. Individual losses are
/// ignored (only the model matters), which is exactly why BBR-like senders
/// tolerate noncongestive loss that collapses AIMD — making this the
/// fairest end-to-end baseline for the §2.1 division experiments.
///
/// Simplifications vs. real BBR: window-based rather than paced, a single
/// 2× startup gain with growth-plateau detection, and a fixed 1.05×
/// steady-state gain instead of the ProbeBW gain cycle.
#[derive(Clone, Debug)]
pub struct Bbr {
    cwnd: f64,
    /// (sample_time, delivery-rate packets/s), pruned to the sample window.
    rate_samples: std::collections::VecDeque<(SimTime, f64)>,
    /// Delivered-count bookkeeping for rate sampling.
    last_ack_at: Option<SimTime>,
    delivered_since_sample: u64,
    /// Best observed rate (windowed max).
    btl_rate: f64,
    /// Startup plateau detection.
    in_startup: bool,
    prev_btl_rate: f64,
    stagnant_rounds: u32,
}

/// How long rate samples stay in the max filter.
const BBR_SAMPLE_WINDOW: SimDuration = SimDuration::from_millis(2_500);

impl Bbr {
    /// Creates the controller with the given initial window (packets).
    pub fn new(initial_cwnd: u64) -> Self {
        Bbr {
            cwnd: initial_cwnd.max(4) as f64,
            rate_samples: std::collections::VecDeque::new(),
            last_ack_at: None,
            delivered_since_sample: 0,
            btl_rate: 0.0,
            in_startup: true,
            prev_btl_rate: 0.0,
            stagnant_rounds: 0,
        }
    }

    /// Whether the controller is still in startup.
    pub fn in_startup(&self) -> bool {
        self.in_startup
    }

    /// The current bottleneck-rate estimate in packets/s.
    pub fn bottleneck_rate(&self) -> f64 {
        self.btl_rate
    }

    fn refresh_btl_rate(&mut self, now: SimTime) {
        let horizon = now.saturating_sub(BBR_SAMPLE_WINDOW);
        while self
            .rate_samples
            .front()
            .is_some_and(|&(at, _)| at < horizon)
        {
            self.rate_samples.pop_front();
        }
        self.btl_rate = self
            .rate_samples
            .iter()
            .map(|&(_, r)| r)
            .fold(0.0, f64::max);
    }
}

impl CongestionControl for Bbr {
    fn cwnd(&self) -> u64 {
        self.cwnd.max(4.0) as u64
    }

    fn on_ack(&mut self, acked: u64, now: SimTime, rtt: &RttEstimator) {
        self.delivered_since_sample += acked;
        let Some(last) = self.last_ack_at else {
            self.last_ack_at = Some(now);
            self.delivered_since_sample = 0;
            return;
        };
        // Accumulate at least a few ms per sample to keep quantization down.
        let elapsed = now - last;
        if elapsed < SimDuration::from_millis(2) {
            return;
        }
        let rate = self.delivered_since_sample as f64 / elapsed.as_secs_f64();
        self.last_ack_at = Some(now);
        self.delivered_since_sample = 0;
        self.rate_samples.push_back((now, rate));
        self.refresh_btl_rate(now);

        let min_rtt = rtt
            .min_rtt()
            .unwrap_or_else(|| rtt.srtt())
            .as_secs_f64()
            .max(1e-4);
        let bdp = (self.btl_rate * min_rtt).max(4.0);
        if self.in_startup {
            // Exponential growth until the rate estimate plateaus for three
            // consecutive samples.
            self.cwnd = (self.cwnd * 1.5).min(bdp * 2.89).max(self.cwnd);
            if self.btl_rate < self.prev_btl_rate * 1.25 {
                self.stagnant_rounds += 1;
                if self.stagnant_rounds >= 3 {
                    self.in_startup = false;
                }
            } else {
                self.stagnant_rounds = 0;
                self.prev_btl_rate = self.btl_rate;
            }
        } else {
            // Steady state: sit slightly above the BDP to keep probing.
            self.cwnd = bdp * 1.25;
        }
    }

    fn on_congestion_event(&mut self, _now: SimTime) {
        // Model-based: individual loss events do not move the window.
    }

    fn on_rto(&mut self) {
        // A real timeout invalidates the model; restart conservatively.
        self.cwnd = 4.0;
        self.in_startup = true;
        self.stagnant_rounds = 0;
        self.rate_samples.clear();
        self.btl_rate = 0.0;
        self.prev_btl_rate = 0.0;
        self.last_ack_at = None;
    }

    fn name(&self) -> &'static str {
        "bbr"
    }
}

/// A constant congestion window: sends at `window` packets in flight
/// regardless of loss. The sidecar's congestion-control-division proxy uses
/// this as the externally-steered mode (the sidecar adjusts the window).
#[derive(Clone, Debug)]
pub struct FixedWindow {
    window: u64,
}

impl FixedWindow {
    /// Creates a fixed window of `window` packets (≥ 1).
    pub fn new(window: u64) -> Self {
        FixedWindow {
            window: window.max(1),
        }
    }

    /// Externally steers the window (sidecar hook).
    pub fn set_window(&mut self, window: u64) {
        self.window = window.max(1);
    }
}

impl CongestionControl for FixedWindow {
    fn cwnd(&self) -> u64 {
        self.window
    }

    fn on_ack(&mut self, _acked: u64, _now: SimTime, _rtt: &RttEstimator) {}

    fn on_congestion_event(&mut self, _now: SimTime) {}

    fn on_rto(&mut self) {}

    fn name(&self) -> &'static str {
        "fixed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn rtt_60ms() -> RttEstimator {
        let mut r = RttEstimator::default();
        r.on_sample(SimDuration::from_millis(60));
        r
    }

    #[test]
    fn newreno_slow_start_doubles_per_rtt() {
        let mut cc = NewReno::new(10);
        assert!(cc.in_slow_start());
        // Acking a full window in slow start doubles it.
        cc.on_ack(10, SimTime::ZERO, &rtt_60ms());
        assert_eq!(cc.cwnd(), 20);
    }

    #[test]
    fn newreno_halves_on_congestion() {
        let mut cc = NewReno::new(64);
        cc.on_congestion_event(SimTime::ZERO);
        assert_eq!(cc.cwnd(), 32);
        assert!(!cc.in_slow_start());
        // Congestion avoidance: one full window of acks grows cwnd by ~1.
        let before = cc.cwnd();
        cc.on_ack(before, SimTime::ZERO, &rtt_60ms());
        assert_eq!(cc.cwnd(), before + 1);
    }

    #[test]
    fn newreno_rto_collapses_to_one() {
        let mut cc = NewReno::new(64);
        cc.on_rto();
        assert_eq!(cc.cwnd(), 1);
        // Recovers through slow start up to ssthresh = 32.
        for _ in 0..10 {
            let w = cc.cwnd();
            cc.on_ack(w, SimTime::ZERO, &rtt_60ms());
        }
        assert!(!cc.in_slow_start());
        assert!(cc.cwnd() >= 32);
    }

    #[test]
    fn newreno_floor_is_one_packet() {
        let mut cc = NewReno::new(1);
        cc.on_congestion_event(SimTime::ZERO);
        cc.on_rto();
        assert!(cc.cwnd() >= 1);
    }

    #[test]
    fn cubic_reduces_by_beta_and_regrows() {
        let mut cc = Cubic::new(100);
        // Leave slow start via a congestion event.
        cc.on_congestion_event(SimTime::ZERO);
        let after_loss = cc.cwnd();
        assert_eq!(after_loss, 70); // 100 · 0.7
                                    // Grow for a simulated 10 seconds of acks.
        let rtt = rtt_60ms();
        let mut now = SimTime::ZERO;
        for _ in 0..200 {
            now += SimDuration::from_millis(60);
            cc.on_ack(after_loss, now, &rtt);
        }
        // Must regain (and eventually exceed) the pre-loss window.
        assert!(cc.cwnd() > 100, "cubic regrowth stalled at {}", cc.cwnd());
    }

    #[test]
    fn cubic_rto_collapses() {
        let mut cc = Cubic::new(50);
        cc.on_rto();
        assert_eq!(cc.cwnd(), 1);
    }

    #[test]
    fn cubic_slow_start_grows() {
        let mut cc = Cubic::new(2);
        cc.on_ack(2, SimTime::ZERO, &rtt_60ms());
        assert_eq!(cc.cwnd(), 4);
    }

    #[test]
    fn bbr_converges_to_bdp_and_ignores_loss() {
        let mut cc = Bbr::new(10);
        let mut rtt = RttEstimator::default();
        rtt.on_sample(SimDuration::from_millis(50));
        // Synthetic steady feed: 100 packets acked every 50 ms ⇒ rate
        // 2000 pkt/s, BDP = 100 packets.
        let mut now = SimTime::ZERO;
        for _ in 0..60 {
            now += SimDuration::from_millis(50);
            cc.on_ack(100, now, &rtt);
        }
        assert!(!cc.in_startup(), "startup should have exited");
        let rate = cc.bottleneck_rate();
        assert!((1500.0..2500.0).contains(&rate), "rate {rate}");
        let w = cc.cwnd();
        assert!((100..=160).contains(&(w as i64)), "cwnd {w} ≉ 1.25×BDP");
        // Congestion events are ignored — the window does not move.
        cc.on_congestion_event(now);
        assert_eq!(cc.cwnd(), w);
        // RTO restarts the model.
        cc.on_rto();
        assert_eq!(cc.cwnd(), 4);
        assert!(cc.in_startup());
    }

    #[test]
    fn bbr_startup_grows_quickly() {
        let mut cc = Bbr::new(10);
        let rtt = rtt_60ms();
        let w0 = cc.cwnd();
        for i in 1..=6u64 {
            let now = SimTime::ZERO + SimDuration::from_millis(i * 60);
            // Growing ack volume mimics an unfilled pipe.
            cc.on_ack(cc.cwnd(), now, &rtt);
        }
        assert!(cc.cwnd() > w0, "{} !> {w0}", cc.cwnd());
    }

    #[test]
    fn fixed_window_ignores_everything() {
        let mut cc = FixedWindow::new(42);
        cc.on_ack(100, SimTime::ZERO, &rtt_60ms());
        cc.on_congestion_event(SimTime::ZERO);
        cc.on_rto();
        assert_eq!(cc.cwnd(), 42);
        cc.set_window(7);
        assert_eq!(cc.cwnd(), 7);
        cc.set_window(0);
        assert_eq!(cc.cwnd(), 1);
    }

    #[test]
    fn builder_dispatches() {
        assert_eq!(CcAlgorithm::NewReno.build(10).name(), "newreno");
        assert_eq!(CcAlgorithm::Cubic.build(10).name(), "cubic");
        let f = CcAlgorithm::Fixed(5).build(10);
        assert_eq!(f.name(), "fixed");
        assert_eq!(f.cwnd(), 5);
    }
}
