//! RTT estimation (RFC 6298 smoothed RTT / RTT variance).

use crate::time::SimDuration;

/// Smoothed round-trip-time estimator with RFC 6298 constants
/// (`α = 1/8`, `β = 1/4`) and a conservative initial RTO.
#[derive(Clone, Debug)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    min_rtt: Option<SimDuration>,
    latest: Option<SimDuration>,
    /// Lower bound on the retransmission timeout (granularity clamp).
    min_rto: SimDuration,
}

impl Default for RttEstimator {
    fn default() -> Self {
        RttEstimator::new(SimDuration::from_millis(10))
    }
}

impl RttEstimator {
    /// Creates an estimator with the given RTO floor.
    pub fn new(min_rto: SimDuration) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            min_rtt: None,
            latest: None,
            min_rto,
        }
    }

    /// Feeds one RTT sample.
    pub fn on_sample(&mut self, rtt: SimDuration) {
        self.latest = Some(rtt);
        self.min_rtt = Some(match self.min_rtt {
            Some(m) => m.min(rtt),
            None => rtt,
        });
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let diff = if srtt >= rtt { srtt - rtt } else { rtt - srtt };
                // rttvar = 3/4 rttvar + 1/4 |srtt - rtt|
                self.rttvar = (self.rttvar * 3 + diff) / 4;
                // srtt = 7/8 srtt + 1/8 rtt
                self.srtt = Some((srtt * 7 + rtt) / 8);
            }
        }
    }

    /// The smoothed RTT, or a 100 ms default before any sample (QUIC's
    /// `kInitialRtt` is 333 ms; we deal in shorter simulated paths).
    pub fn srtt(&self) -> SimDuration {
        self.srtt.unwrap_or(SimDuration::from_millis(100))
    }

    /// Whether at least one sample has been observed.
    pub fn has_sample(&self) -> bool {
        self.srtt.is_some()
    }

    /// Minimum RTT seen.
    pub fn min_rtt(&self) -> Option<SimDuration> {
        self.min_rtt
    }

    /// Most recent sample.
    pub fn latest(&self) -> Option<SimDuration> {
        self.latest
    }

    /// Retransmission timeout: `srtt + max(4·rttvar, floor)`, clamped below
    /// by the configured minimum.
    pub fn rto(&self) -> SimDuration {
        let base = self.srtt() + (self.rttvar * 4).max(SimDuration::from_millis(1));
        base.max(self.min_rto)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::default();
        assert!(!e.has_sample());
        assert_eq!(e.srtt(), SimDuration::from_millis(100));
        e.on_sample(SimDuration::from_millis(60));
        assert!(e.has_sample());
        assert_eq!(e.srtt(), SimDuration::from_millis(60));
        assert_eq!(e.min_rtt(), Some(SimDuration::from_millis(60)));
        assert_eq!(e.latest(), Some(SimDuration::from_millis(60)));
    }

    #[test]
    fn smoothing_converges_toward_stable_rtt() {
        let mut e = RttEstimator::default();
        e.on_sample(SimDuration::from_millis(200));
        for _ in 0..100 {
            e.on_sample(SimDuration::from_millis(50));
        }
        let srtt_ms = e.srtt().as_nanos() / 1_000_000;
        assert!((50..=55).contains(&srtt_ms), "srtt {srtt_ms}ms");
        assert_eq!(e.min_rtt(), Some(SimDuration::from_millis(50)));
    }

    #[test]
    fn rto_exceeds_srtt_and_respects_floor() {
        let mut e = RttEstimator::new(SimDuration::from_millis(200));
        e.on_sample(SimDuration::from_millis(10));
        assert!(e.rto() >= SimDuration::from_millis(200));
        let mut fast = RttEstimator::new(SimDuration::from_millis(1));
        fast.on_sample(SimDuration::from_millis(100));
        assert!(fast.rto() > fast.srtt());
    }

    #[test]
    fn variance_grows_with_jittery_samples() {
        let mut steady = RttEstimator::new(SimDuration::from_nanos(1));
        let mut jittery = RttEstimator::new(SimDuration::from_nanos(1));
        for i in 0..50u64 {
            steady.on_sample(SimDuration::from_millis(50));
            jittery.on_sample(SimDuration::from_millis(if i % 2 == 0 { 20 } else { 80 }));
        }
        assert!(jittery.rto() > steady.rto());
    }
}
