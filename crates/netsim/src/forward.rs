//! A plain store-and-forward router.
//!
//! This is the paper's baseline middlebox: it "act\[s\] as \[a\] regular router
//! for packets between the end hosts — \[it\] can withhold or delay packets,
//! but \[it\] cannot modify the packets or make decisions based on their
//! contents" (§2). Sidecar-enabled proxies in the `sidecar-proto` crate
//! observe the same constraint while additionally running a sidecar beside
//! the forwarding path.

use crate::node::{Context, IfaceId, Node};
use crate::packet::{Packet, PacketKind};
use crate::time::SimDuration;
use std::any::Any;

/// Per-direction forwarding statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ForwardStats {
    /// Data packets forwarded.
    pub data: u64,
    /// ACK packets forwarded.
    pub acks: u64,
    /// Sidecar packets forwarded.
    pub sidecar: u64,
    /// Bytes forwarded.
    pub bytes: u64,
}

impl ForwardStats {
    fn record(&mut self, pkt: &Packet) {
        match pkt.kind {
            PacketKind::Data => self.data += 1,
            PacketKind::Ack => self.acks += 1,
            PacketKind::Sidecar => self.sidecar += 1,
        }
        self.bytes += pkt.size as u64;
    }

    /// Total packets forwarded.
    pub fn packets(&self) -> u64 {
        self.data + self.acks + self.sidecar
    }
}

/// A two-interface router forwarding between interface 0 and interface 1,
/// optionally adding a fixed per-packet processing delay.
pub struct Forwarder {
    processing_delay: SimDuration,
    /// Stats for the 0→1 direction.
    pub stats_01: ForwardStats,
    /// Stats for the 1→0 direction.
    pub stats_10: ForwardStats,
    /// Packets waiting out their processing delay (token = slot index;
    /// slots are tombstoned after dispatch so memory stays bounded by the
    /// packets currently in flight inside the forwarder).
    pending: Vec<Option<(IfaceId, Packet)>>,
}

impl Forwarder {
    /// A forwarder with zero processing delay.
    pub fn new() -> Self {
        Self::with_delay(SimDuration::ZERO)
    }

    /// A forwarder that holds each packet for `processing_delay` before
    /// re-emitting it.
    pub fn with_delay(processing_delay: SimDuration) -> Self {
        Forwarder {
            processing_delay,
            stats_01: ForwardStats::default(),
            stats_10: ForwardStats::default(),
            pending: Vec::new(),
        }
    }

    /// Boxed convenience constructor.
    pub fn boxed() -> Box<Self> {
        Box::new(Self::new())
    }

    fn out_iface(in_iface: IfaceId) -> IfaceId {
        match in_iface {
            IfaceId(0) => IfaceId(1),
            IfaceId(1) => IfaceId(0),
            other => panic!("forwarder has two interfaces, got {other:?}"),
        }
    }
}

impl Default for Forwarder {
    fn default() -> Self {
        Self::new()
    }
}

impl Node for Forwarder {
    fn on_packet(&mut self, iface: IfaceId, packet: Packet, ctx: &mut Context) {
        let out = Self::out_iface(iface);
        match iface {
            IfaceId(0) => self.stats_01.record(&packet),
            _ => self.stats_10.record(&packet),
        }
        if self.processing_delay == SimDuration::ZERO {
            ctx.send(out, packet);
        } else {
            // Reuse a tombstoned slot if one exists, else append.
            let slot = self.pending.iter().position(Option::is_none);
            let token = match slot {
                Some(i) => {
                    self.pending[i] = Some((out, packet));
                    i as u64
                }
                None => {
                    self.pending.push(Some((out, packet)));
                    (self.pending.len() - 1) as u64
                }
            };
            ctx.set_timer_after(self.processing_delay, token);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context) {
        let idx = token as usize;
        if let Some(Some((out, packet))) = self.pending.get_mut(idx).map(Option::take) {
            ctx.send(out, packet);
        }
    }

    fn name(&self) -> &str {
        "forwarder"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::transport::{CcAlgorithm, ReceiverConfig, ReceiverNode, SenderConfig, SenderNode};
    use crate::world::World;

    #[test]
    fn transport_works_through_a_forwarder() {
        let mut w = World::new(11);
        let s = w.add_node(SenderNode::boxed(SenderConfig {
            total_packets: Some(300),
            cc: CcAlgorithm::NewReno,
            ..SenderConfig::default()
        }));
        let fwd = w.add_node(Forwarder::boxed());
        let r = w.add_node(ReceiverNode::boxed(ReceiverConfig::default()));
        // Sender ⇄ forwarder ⇄ receiver. Forwarder iface 0 faces sender.
        w.connect(s, fwd, LinkConfig::default(), LinkConfig::default());
        w.connect(fwd, r, LinkConfig::default(), LinkConfig::default());
        w.run_until_idle(10_000_000);
        let sender = w.node_as::<SenderNode>(s);
        assert!(sender.core().is_complete());
        let f = w.node_as::<Forwarder>(fwd);
        assert_eq!(f.stats_01.data, 300);
        assert!(f.stats_10.acks > 0);
        assert_eq!(f.stats_01.packets(), 300);
    }

    #[test]
    fn processing_delay_inflates_rtt() {
        let rtt_with = |delay_ms: u64| {
            let mut w = World::new(12);
            let s = w.add_node(SenderNode::boxed(SenderConfig {
                total_packets: Some(100),
                ..SenderConfig::default()
            }));
            let fwd = w.add_node(Box::new(Forwarder::with_delay(SimDuration::from_millis(
                delay_ms,
            ))));
            let r = w.add_node(ReceiverNode::boxed(ReceiverConfig::default()));
            w.connect(s, fwd, LinkConfig::default(), LinkConfig::default());
            w.connect(fwd, r, LinkConfig::default(), LinkConfig::default());
            w.run_until_idle(10_000_000);
            w.node_as::<SenderNode>(s).core().rtt().srtt()
        };
        let fast = rtt_with(0);
        let slow = rtt_with(20);
        // 20 ms processing in each direction adds ≈40 ms to the RTT.
        assert!(
            slow > fast + SimDuration::from_millis(30),
            "{fast} vs {slow}"
        );
    }
}
