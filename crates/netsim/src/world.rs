//! The [`World`]: topology plus the discrete-event loop.
//!
//! A world owns nodes, links, and one event queue. Events are totally
//! ordered by `(time, insertion sequence)`, and all randomness flows from
//! the world seed, so a `(topology, seed)` pair reproduces a run exactly —
//! the property every protocol experiment and regression test in this
//! reproduction leans on.

use crate::fault::{ControlAction, FaultPlan, LinkTarget};
use crate::link::{Link, LinkConfig, LinkOutcome, LinkStats};
use crate::node::{Action, Context, IfaceId, LinkId, Node, NodeId, TimerHandle};
#[cfg(feature = "obs")]
use crate::obs::HotCounters;
use crate::obs::WorldObs;
use crate::packet::{FlowId, Packet, Payload};
use crate::rng::SimRng;
use crate::sched::{thread_scheduler, EventQueue, SchedulerKind};
use crate::time::{SimDuration, SimTime};
use crate::trace::{DropReason, Trace, TraceEvent};
#[cfg(feature = "obs")]
use sidecar_obs::{
    ControlKind as ObsControlKind, DropCause as ObsDropCause, Event as ObsEvent, TraceClass,
};
use std::collections::{HashMap, HashSet};

/// One end of a duplex attachment: which link an interface transmits into
/// and who receives.
#[derive(Copy, Clone, Debug)]
struct IfaceEnd {
    link: LinkId,
    peer: NodeId,
    peer_iface: IfaceId,
}

enum EventKind {
    Arrival {
        node: NodeId,
        iface: IfaceId,
        packet: Packet,
    },
    Timer {
        node: NodeId,
        token: u64,
        /// Cancellation identity (see [`TimerHandle`]); world-scheduled
        /// timers always carry a nonzero handle.
        handle: TimerHandle,
    },
    /// A scripted outage edge from an installed [`FaultPlan`].
    Fault {
        node: NodeId,
        /// `false` = crash, `true` = restart.
        up: bool,
    },
}

/// A [`FaultPlan`] resolved against a concrete topology, plus the dedicated
/// corruption RNG (independent of the world's stream so installing a plan
/// never perturbs link loss draws).
struct ActiveFaults {
    plan: FaultPlan,
    rng: SimRng,
    /// Blackout windows with `LinkTarget::Between` lowered to link ids.
    blackout_windows: Vec<(LinkId, SimTime, SimTime)>,
    /// Stateful-firewall memory: when each control flow was last seen.
    ctrl_seen: HashMap<FlowId, SimTime>,
}

impl ActiveFaults {
    fn blacked_out(&self, link: LinkId, now: SimTime) -> bool {
        self.blackout_windows
            .iter()
            .any(|&(l, from, until)| l == link && from <= now && now < until)
    }

    /// Flips 1..=`max_flips` random bits of a sidecar payload body.
    fn corrupt(&mut self, packet: &mut Packet, max_flips: u32) {
        if let Payload::Sidecar { bytes, .. } = &mut packet.payload {
            if bytes.is_empty() {
                return;
            }
            let flips = 1 + self.rng.below(max_flips.max(1) as u64);
            for _ in 0..flips {
                let i = self.rng.below(bytes.len() as u64) as usize;
                let bit = self.rng.below(8) as u32;
                bytes[i] ^= 1 << bit;
            }
        }
    }
}

/// A complete simulated network.
pub struct World {
    nodes: Vec<Option<Box<dyn Node>>>,
    node_ifaces: Vec<Vec<IfaceEnd>>,
    links: Vec<Link>,
    queue: EventQueue<EventKind>,
    now: SimTime,
    rng: SimRng,
    event_seq: u64,
    started: bool,
    events_processed: u64,
    trace: Trace,
    node_down: Vec<bool>,
    faults: Option<ActiveFaults>,
    /// Reused per-dispatch action buffer: the steady-state loop allocates
    /// nothing for callback actions once its capacity has warmed up.
    action_pool: Vec<Action>,
    /// Handles of cancelled-but-not-yet-popped timers.
    cancelled: HashSet<u64>,
    /// True on [`SchedulerKind::Heap`]: besides the heap scheduler itself,
    /// the dispatch loop reproduces the pre-wheel engine's allocation
    /// behavior — a fresh action buffer per dispatch and string-keyed
    /// registry lookups for the per-event counters — so heap-mode runs
    /// measure the engine that actually shipped, not a hybrid. Behavior
    /// (event order, traces, metric values) is identical either way; the
    /// equivalence suite pins that.
    legacy_dispatch: bool,
    /// Next [`TimerHandle`] value to hand out (starts at 1; 0 is the
    /// world-less unit-test base and never reaches this queue).
    timer_handle_seq: u64,
    // Zero-sized when the `obs` feature is off (see crate::obs), hence never
    // read in that configuration.
    #[cfg_attr(not(feature = "obs"), allow(dead_code))]
    obs: WorldObs,
}

impl World {
    /// Creates an empty world with the given determinism seed, scheduled by
    /// [`thread_scheduler`] (the timer wheel unless overridden per thread
    /// or via `SIDECAR_SCHED`).
    pub fn new(seed: u64) -> Self {
        Self::new_with_scheduler(seed, thread_scheduler())
    }

    /// Creates an empty world on an explicit scheduler backend. Event order
    /// is identical across backends (the equivalence tests pin this); the
    /// heap exists as the oracle and for A/B benching.
    pub fn new_with_scheduler(seed: u64, scheduler: SchedulerKind) -> Self {
        World {
            nodes: Vec::new(),
            node_ifaces: Vec::new(),
            links: Vec::new(),
            queue: EventQueue::new(scheduler),
            now: SimTime::ZERO,
            rng: SimRng::new(seed),
            event_seq: 0,
            started: false,
            events_processed: 0,
            trace: Trace::disabled(),
            node_down: Vec::new(),
            faults: None,
            action_pool: Vec::new(),
            cancelled: HashSet::new(),
            legacy_dispatch: scheduler == SchedulerKind::Heap,
            timer_handle_seq: 1,
            obs: WorldObs::new(),
        }
    }

    /// Which scheduler backend this world runs on.
    pub fn scheduler(&self) -> SchedulerKind {
        self.queue.kind()
    }

    /// Events currently queued (scheduler-load metric for benches).
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// This world's observability state: a fresh metrics registry and event
    /// trace, scoped to this world (see [`crate::obs`]).
    #[cfg(feature = "obs")]
    pub fn obs(&self) -> &WorldObs {
        &self.obs
    }

    /// Mutable access to this world's observability state — scenario runners
    /// use it to fold protocol-level stats into the registry before
    /// snapshotting.
    #[cfg(feature = "obs")]
    pub fn obs_mut(&mut self) -> &mut WorldObs {
        &mut self.obs
    }

    /// Enables event tracing, keeping the most recent `capacity` events
    /// (see [`crate::trace`]).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Trace::with_capacity(capacity);
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        assert!(!self.started, "topology is frozen once the world runs");
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(node));
        self.node_ifaces.push(Vec::new());
        self.node_down.push(false);
        id
    }

    /// Installs a fault script (see [`crate::fault`]): schedules every
    /// outage edge as a simulation event, lowers `Between` blackouts to the
    /// concrete links of this topology, and seeds the dedicated corruption
    /// RNG from [`FaultPlan::seed`].
    ///
    /// # Panics
    ///
    /// Panics if the world has already started, if a plan was already
    /// installed, or if the plan references nodes/links that do not exist —
    /// all configuration errors, caught loudly at install time.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        assert!(
            !self.started,
            "faults must be installed before the world runs"
        );
        assert!(self.faults.is_none(), "a fault plan is already installed");
        for outage in &plan.outages {
            assert!(
                outage.node.0 < self.nodes.len(),
                "outage references unknown {:?}",
                outage.node
            );
            for (at, up) in outage.edges() {
                let seq = self.next_seq();
                self.queue.push(
                    at,
                    seq,
                    EventKind::Fault {
                        node: outage.node,
                        up,
                    },
                );
            }
        }
        let mut blackout_windows = Vec::new();
        for blackout in &plan.blackouts {
            match blackout.target {
                LinkTarget::Link(link) => {
                    assert!(
                        link.0 < self.links.len(),
                        "blackout references unknown {link:?}"
                    );
                    blackout_windows.push((link, blackout.from, blackout.until));
                }
                LinkTarget::Between(a, b) => {
                    assert!(a.0 < self.nodes.len(), "blackout references unknown {a:?}");
                    assert!(b.0 < self.nodes.len(), "blackout references unknown {b:?}");
                    let mut found = false;
                    for end in &self.node_ifaces[a.0] {
                        if end.peer == b {
                            blackout_windows.push((end.link, blackout.from, blackout.until));
                            found = true;
                        }
                    }
                    for end in &self.node_ifaces[b.0] {
                        if end.peer == a {
                            blackout_windows.push((end.link, blackout.from, blackout.until));
                            found = true;
                        }
                    }
                    assert!(found, "no links between {a:?} and {b:?}");
                }
            }
        }
        for rule in &plan.control {
            if let Some(source) = rule.source {
                assert!(
                    source.0 < self.nodes.len(),
                    "control fault references unknown {source:?}"
                );
            }
        }
        self.faults = Some(ActiveFaults {
            rng: SimRng::new(plan.seed),
            plan,
            blackout_windows,
            ctrl_seen: HashMap::new(),
        });
    }

    /// Whether `node` is currently down due to a scripted outage.
    pub fn is_node_down(&self, node: NodeId) -> bool {
        self.node_down[node.0]
    }

    /// Connects `a` and `b` with a duplex pair of unidirectional links
    /// (`a→b` configured by `ab`, `b→a` by `ba`). Returns the new interface
    /// ids on `a` and `b` respectively.
    pub fn connect(
        &mut self,
        a: NodeId,
        b: NodeId,
        ab: LinkConfig,
        ba: LinkConfig,
    ) -> (IfaceId, IfaceId) {
        assert!(!self.started, "topology is frozen once the world runs");
        let link_ab = LinkId(self.links.len());
        self.links.push(Link::new(ab));
        let link_ba = LinkId(self.links.len());
        self.links.push(Link::new(ba));
        let iface_a = IfaceId(self.node_ifaces[a.0].len());
        let iface_b = IfaceId(self.node_ifaces[b.0].len());
        self.node_ifaces[a.0].push(IfaceEnd {
            link: link_ab,
            peer: b,
            peer_iface: iface_b,
        });
        self.node_ifaces[b.0].push(IfaceEnd {
            link: link_ba,
            peer: a,
            peer_iface: iface_a,
        });
        (iface_a, iface_b)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far (loop-progress metric for tests).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Statistics of the `a→b` link returned by `connect` as seen from
    /// node `a`'s interface.
    pub fn link_stats(&self, node: NodeId, iface: IfaceId) -> &LinkStats {
        let end = &self.node_ifaces[node.0][iface.0];
        &self.links[end.link.0].stats
    }

    /// Immutable access to a node, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the node is of a different type.
    pub fn node_as<T: Node>(&self, id: NodeId) -> &T {
        self.nodes[id.0]
            .as_ref()
            .expect("node is being dispatched")
            .as_any()
            .downcast_ref::<T>()
            .expect("node type mismatch")
    }

    /// Mutable access to a node, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the node is of a different type.
    pub fn node_as_mut<T: Node>(&mut self, id: NodeId) -> &mut T {
        self.nodes[id.0]
            .as_mut()
            .expect("node is being dispatched")
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("node type mismatch")
    }

    /// Borrows a node as `dyn Node` (no downcast). Drivers use this to
    /// reach hosted state machines without knowing their concrete type.
    ///
    /// # Panics
    ///
    /// Panics if called re-entrantly while `id` is being dispatched.
    pub fn node_dyn(&self, id: NodeId) -> &dyn Node {
        self.nodes[id.0]
            .as_deref()
            .expect("node is being dispatched")
    }

    /// Mutably borrows a node as `dyn Node` (no downcast).
    ///
    /// # Panics
    ///
    /// Panics if called re-entrantly while `id` is being dispatched.
    pub fn node_dyn_mut(&mut self, id: NodeId) -> &mut dyn Node {
        self.nodes[id.0]
            .as_deref_mut()
            .expect("node is being dispatched")
    }

    /// Enqueues a packet arrival at `node`/`iface` for the current time, as
    /// if a link had just delivered it: the ingress seam a
    /// [`Driver`](crate::driver::Driver) uses to hand externally sourced packets to a
    /// hosted node. The event goes through the ordinary queue, so it is
    /// FIFO-ordered after anything already due now and dispatched with full
    /// trace/obs accounting.
    pub fn inject(&mut self, node: NodeId, iface: IfaceId, packet: Packet) {
        let at = self.now;
        let seq = self.next_seq();
        self.queue.push(
            at,
            seq,
            EventKind::Arrival {
                node,
                iface,
                packet,
            },
        );
    }

    /// Runs `on_start` on every node if not yet done.
    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            self.dispatch(NodeId(i), |node, ctx| node.on_start(ctx));
        }
    }

    /// Processes the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        let Some((at, kind)) = self.queue.pop_due(None) else {
            return false;
        };
        self.process(at, kind);
        true
    }

    /// Advances the clock to `at` and handles one popped event.
    fn process(&mut self, at: SimTime, kind: EventKind) {
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.events_processed += 1;
        match kind {
            EventKind::Arrival {
                node,
                iface,
                packet,
            } => {
                if self.node_down[node.0] {
                    // The receiver is crashed: the packet evaporates at its
                    // door.
                    self.trace.record(TraceEvent::Drop {
                        at: self.now,
                        node,
                        iface,
                        kind: packet.kind,
                        id: packet.id,
                        reason: DropReason::NodeDown,
                    });
                    #[cfg(feature = "obs")]
                    {
                        self.bump(|h| &h.drop_node_down, "netsim.drop.node_down");
                        self.obs.trace.record(
                            self.now.as_nanos(),
                            ObsEvent::LinkDrop {
                                node: node.0 as u32,
                                iface: iface.0 as u32,
                                cause: ObsDropCause::NodeDown,
                            },
                        );
                        self.record_hop_drop(node, iface, &packet, ObsDropCause::NodeDown);
                    }
                    return;
                }
                self.trace.record(TraceEvent::Arrival {
                    at: self.now,
                    node,
                    iface,
                    kind: packet.kind,
                    id: packet.id,
                    seq: packet.seq,
                    size: packet.size,
                });
                #[cfg(feature = "obs")]
                if let Some((class, flow, seq)) = Self::hop_identity(&packet) {
                    self.obs.trace.record(
                        self.now.as_nanos(),
                        ObsEvent::HopDeliver {
                            node: node.0 as u32,
                            iface: iface.0 as u32,
                            class,
                            flow,
                            seq,
                        },
                    );
                }
                self.dispatch(node, |n, ctx| n.on_packet(iface, packet, ctx));
            }
            EventKind::Timer {
                node,
                token,
                handle,
            } => {
                if !self.cancelled.is_empty() && self.cancelled.remove(&handle.0) {
                    // Cancelled before firing: the event is consumed silently
                    // (it still counts toward `events_processed`, exactly as
                    // a lazily-ignored stale fire would have).
                    return;
                }
                if self.node_down[node.0] {
                    // Timers firing during an outage are discarded; a node
                    // re-arms what it needs from `on_restart`.
                    return;
                }
                self.trace.record(TraceEvent::Timer {
                    at: self.now,
                    node,
                    token,
                });
                self.dispatch(node, |n, ctx| n.on_timer(token, ctx));
            }
            EventKind::Fault { node, up } => {
                self.trace.record(TraceEvent::Fault {
                    at: self.now,
                    node,
                    up,
                });
                #[cfg(feature = "obs")]
                {
                    if up {
                        self.bump(|h| &h.fault_restore, "netsim.fault.restore");
                    } else {
                        self.bump(|h| &h.fault_outage, "netsim.fault.outage");
                    }
                    self.obs.trace.record(
                        self.now.as_nanos(),
                        ObsEvent::Outage {
                            node: node.0 as u32,
                            up,
                        },
                    );
                }
                self.node_down[node.0] = !up;
                if up {
                    #[cfg(feature = "obs")]
                    {
                        self.bump(|h| &h.restart, "netsim.restart");
                        self.obs.trace.record(
                            self.now.as_nanos(),
                            ObsEvent::Restart {
                                node: node.0 as u32,
                            },
                        );
                    }
                    self.dispatch(node, |n, ctx| n.on_restart(ctx));
                }
            }
        }
    }

    /// Runs until the queue is empty or simulated time would exceed
    /// `deadline`; returns the time of the last processed event.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.ensure_started();
        while let Some((at, kind)) = self.queue.pop_due(Some(deadline)) {
            self.process(at, kind);
        }
        // Clamp the clock forward to the deadline so subsequent scheduling
        // is relative to it.
        if self.now < deadline {
            self.now = deadline;
        }
        self.now
    }

    /// Runs until no events remain (natural quiescence). `max_events` guards
    /// against livelock in buggy protocols.
    ///
    /// # Panics
    ///
    /// Panics if `max_events` is exceeded — a deterministic signal that a
    /// protocol is spinning.
    pub fn run_until_idle(&mut self, max_events: u64) -> SimTime {
        self.ensure_started();
        let mut budget = max_events;
        while self.step() {
            budget = budget
                .checked_sub(1)
                .unwrap_or_else(|| panic!("simulation exceeded {max_events} events; livelock?"));
        }
        self.now
    }

    /// Dispatches a callback on one node, then applies its actions.
    fn dispatch<F>(&mut self, id: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Node, &mut Context),
    {
        let mut node = self.nodes[id.0].take().expect("re-entrant dispatch");
        // Reuse the pooled buffer: after warmup the steady-state dispatch
        // loop performs no heap allocation for actions. Legacy (heap) mode
        // keeps the old engine's fresh-buffer-per-dispatch behavior.
        let mut actions = if self.legacy_dispatch {
            Vec::new()
        } else {
            std::mem::take(&mut self.action_pool)
        };
        debug_assert!(actions.is_empty());
        {
            #[cfg(feature = "obs")]
            let mut ctx = Context::with_obs(
                self.now,
                id,
                &mut self.rng,
                &mut actions,
                Some(&mut self.obs),
            );
            #[cfg(not(feature = "obs"))]
            let mut ctx = Context::new(self.now, id, &mut self.rng, &mut actions);
            ctx.set_handle_base(self.timer_handle_seq);
            f(node.as_mut(), &mut ctx);
        }
        self.nodes[id.0] = Some(node);
        for action in actions.drain(..) {
            match action {
                Action::Send { iface, packet } => self.transmit(id, iface, packet),
                Action::Timer { at, token, handle } => {
                    self.timer_handle_seq = handle.0 + 1;
                    let seq = self.next_seq();
                    self.queue.push(
                        at.max(self.now),
                        seq,
                        EventKind::Timer {
                            node: id,
                            token,
                            handle,
                        },
                    );
                }
                Action::CancelTimer { handle } => {
                    self.cancelled.insert(handle.0);
                }
            }
        }
        if !self.legacy_dispatch {
            self.action_pool = actions;
        }
    }

    /// Bumps one of the per-event hot counters: through the pre-interned
    /// atomic handle on the modern engine, or through the registry's
    /// string-keyed lookup (mutex + hash per event) when reproducing the
    /// legacy engine — the cost the tentpole's key interning removed.
    #[cfg(feature = "obs")]
    #[inline]
    fn bump(&mut self, pick: fn(&HotCounters) -> &sidecar_obs::Counter, name: &'static str) {
        if self.legacy_dispatch {
            self.obs.metrics.inc(name);
        } else {
            pick(&self.obs.hot).inc();
        }
    }

    /// Pushes a packet into the link behind `(node, iface)`, applying any
    /// installed fault rules (blackouts, the stateful firewall, control
    /// mangling, and active-adversary injection) first.
    fn transmit(&mut self, node: NodeId, iface: IfaceId, mut packet: Packet) {
        let end = *self.node_ifaces[node.0]
            .get(iface.0)
            .unwrap_or_else(|| panic!("node {node:?} has no interface {iface:?}"));
        let mut copies = 1u32;
        let mut extra_delay = SimDuration::ZERO;
        // Attacker-injected packets riding the same link: (packet, delay
        // beyond `extra_delay`). Delivered after the original's offers so
        // the honest datagram keeps its queue position.
        let mut replicas: Vec<(Packet, SimDuration)> = Vec::new();
        if let Some(faults) = self.faults.as_mut() {
            if faults.blacked_out(end.link, self.now) {
                self.trace.record(TraceEvent::Drop {
                    at: self.now,
                    node,
                    iface,
                    kind: packet.kind,
                    id: packet.id,
                    reason: DropReason::Blackout,
                });
                #[cfg(feature = "obs")]
                {
                    self.bump(|h| &h.drop_blackout, "netsim.drop.blackout");
                    self.obs.trace.record(
                        self.now.as_nanos(),
                        ObsEvent::LinkDrop {
                            node: node.0 as u32,
                            iface: iface.0 as u32,
                            cause: ObsDropCause::Blackout,
                        },
                    );
                    self.record_hop_drop(node, iface, &packet, ObsDropCause::Blackout);
                }
                return;
            }
            // Stateful firewall: a control flow idle past the timeout loses
            // its next datagram while the middlebox re-establishes state
            // (the timestamp is refreshed, so the packet after this one
            // passes). The very first packet of a flow passes too — the
            // firewall admits new "connections", it only evicts idle ones.
            if let Some(idle) = faults.plan.match_firewall(packet.kind, self.now) {
                let prior = faults.ctrl_seen.insert(packet.flow, self.now);
                if let Some(prev) = prior {
                    if self.now - prev >= idle {
                        self.trace.record(TraceEvent::Drop {
                            at: self.now,
                            node,
                            iface,
                            kind: packet.kind,
                            id: packet.id,
                            reason: DropReason::Injected,
                        });
                        #[cfg(feature = "obs")]
                        {
                            self.record_control_fault(node, ObsControlKind::Firewall);
                            self.bump(|h| &h.drop_injected, "netsim.drop.injected");
                            self.obs.trace.record(
                                self.now.as_nanos(),
                                ObsEvent::LinkDrop {
                                    node: node.0 as u32,
                                    iface: iface.0 as u32,
                                    cause: ObsDropCause::Injected,
                                },
                            );
                            self.record_hop_drop(node, iface, &packet, ObsDropCause::Injected);
                        }
                        return;
                    }
                }
            }
            match faults
                .plan
                .match_control(packet.kind, node, self.now)
                .cloned()
            {
                Some(ControlAction::Drop) => {
                    self.trace.record(TraceEvent::Drop {
                        at: self.now,
                        node,
                        iface,
                        kind: packet.kind,
                        id: packet.id,
                        reason: DropReason::Injected,
                    });
                    #[cfg(feature = "obs")]
                    {
                        self.bump(|h| &h.drop_injected, "netsim.drop.injected");
                        self.obs.trace.record(
                            self.now.as_nanos(),
                            ObsEvent::LinkDrop {
                                node: node.0 as u32,
                                iface: iface.0 as u32,
                                cause: ObsDropCause::Injected,
                            },
                        );
                        self.record_hop_drop(node, iface, &packet, ObsDropCause::Injected);
                    }
                    return;
                }
                Some(ControlAction::Duplicate) => {
                    copies = 2;
                    #[cfg(feature = "obs")]
                    self.record_control_fault(node, ObsControlKind::Duplicate);
                }
                Some(ControlAction::Delay(extra)) => {
                    extra_delay = extra;
                    #[cfg(feature = "obs")]
                    self.record_control_fault(node, ObsControlKind::Delay);
                }
                Some(ControlAction::Corrupt { max_flips }) => {
                    faults.corrupt(&mut packet, max_flips);
                    #[cfg(feature = "obs")]
                    self.record_control_fault(node, ObsControlKind::Corrupt);
                }
                Some(ControlAction::Forge { proto, body }) => {
                    // The adversary crafts its own datagram from whole cloth
                    // and injects it alongside the observed one. It carries
                    // the same flow id (the attacker can read headers) but
                    // attacker-chosen content.
                    let size = (28 + body.len()) as u32;
                    let forged = Packet::sidecar(packet.flow, proto, body, size, self.now);
                    replicas.push((forged, SimDuration::ZERO));
                    #[cfg(feature = "obs")]
                    self.record_control_fault(node, ObsControlKind::Forge);
                }
                Some(ControlAction::Replay { copies: n, delay }) => {
                    for i in 0..n {
                        replicas.push((packet.clone(), delay * (i as u64 + 1)));
                    }
                    #[cfg(feature = "obs")]
                    self.record_control_fault(node, ObsControlKind::Replay);
                }
                Some(ControlAction::Tamper { max_flips }) => {
                    let mut evil = packet.clone();
                    faults.corrupt(&mut evil, max_flips);
                    replicas.push((evil, SimDuration::ZERO));
                    #[cfg(feature = "obs")]
                    self.record_control_fault(node, ObsControlKind::Tamper);
                }
                None => {}
            }
        }
        if copies == 1 && replicas.is_empty() {
            // Steady-state fast path: hand the packet to the link by value —
            // no clone, so plain forwarding traffic allocates nothing here.
            self.offer_to_link(node, iface, end, packet, extra_delay);
            return;
        }
        for _ in 0..copies {
            self.offer_to_link(node, iface, end, packet.clone(), extra_delay);
        }
        for (replica, extra) in replicas {
            self.offer_to_link(node, iface, end, replica, extra_delay + extra);
        }
    }

    /// Offers one packet to the link behind `end`, scheduling the arrival
    /// (plus `extra_delay`) or accounting for the drop.
    fn offer_to_link(
        &mut self,
        node: NodeId,
        iface: IfaceId,
        end: IfaceEnd,
        packet: Packet,
        extra_delay: SimDuration,
    ) {
        let link = &mut self.links[end.link.0];
        match link.offer(self.now, packet.size, &mut self.rng) {
            LinkOutcome::Deliver(at) => {
                #[cfg(feature = "obs")]
                {
                    self.bump(|h| &h.delivered, "netsim.delivered");
                    if let Some((class, flow, pseq)) = Self::hop_identity(&packet) {
                        self.obs.trace.record(
                            self.now.as_nanos(),
                            ObsEvent::HopEnqueue {
                                node: node.0 as u32,
                                iface: iface.0 as u32,
                                class,
                                flow,
                                seq: pseq,
                            },
                        );
                    }
                }
                let seq = self.next_seq();
                self.queue.push(
                    at + extra_delay,
                    seq,
                    EventKind::Arrival {
                        node: end.peer,
                        iface: end.peer_iface,
                        packet,
                    },
                );
            }
            outcome @ (LinkOutcome::DropQueue | LinkOutcome::DropLoss) => {
                // The packet evaporates; link stats recorded it, and the
                // trace (if enabled) remembers what and why.
                self.trace.record(TraceEvent::Drop {
                    at: self.now,
                    node,
                    iface,
                    kind: packet.kind,
                    id: packet.id,
                    reason: if outcome == LinkOutcome::DropQueue {
                        DropReason::QueueFull
                    } else {
                        DropReason::Loss
                    },
                });
                #[cfg(feature = "obs")]
                {
                    let cause = if outcome == LinkOutcome::DropQueue {
                        self.bump(|h| &h.drop_queue, "netsim.drop.queue");
                        ObsDropCause::Queue
                    } else {
                        self.bump(|h| &h.drop_loss, "netsim.drop.loss");
                        ObsDropCause::Loss
                    };
                    self.obs.trace.record(
                        self.now.as_nanos(),
                        ObsEvent::LinkDrop {
                            node: node.0 as u32,
                            iface: iface.0 as u32,
                            cause,
                        },
                    );
                    self.record_hop_drop(node, iface, &packet, cause);
                }
            }
        }
    }

    /// Flight-recorder identity of a packet: data packets are traced by
    /// their packet number, sidecar control datagrams by the world-scoped
    /// control sequence stamped at send time. ACKs are not traced — they all
    /// share seq 0 and the recorder has nothing per-packet to say about
    /// them.
    #[cfg(feature = "obs")]
    fn hop_identity(packet: &Packet) -> Option<(TraceClass, u32, u64)> {
        use crate::packet::PacketKind;
        match packet.kind {
            PacketKind::Data => Some((TraceClass::Data, packet.flow.0, packet.seq)),
            PacketKind::Sidecar => Some((TraceClass::Ctrl, packet.flow.0, packet.seq)),
            _ => None,
        }
    }

    /// Records a flight-recorder hop-drop for a traceable packet.
    #[cfg(feature = "obs")]
    fn record_hop_drop(
        &mut self,
        node: NodeId,
        iface: IfaceId,
        packet: &Packet,
        cause: ObsDropCause,
    ) {
        if let Some((class, flow, seq)) = Self::hop_identity(packet) {
            self.obs.trace.record(
                self.now.as_nanos(),
                ObsEvent::HopDrop {
                    node: node.0 as u32,
                    iface: iface.0 as u32,
                    class,
                    flow,
                    seq,
                    cause,
                },
            );
        }
    }

    /// Counts a fault-plan control rule firing and traces it.
    #[cfg(feature = "obs")]
    fn record_control_fault(&mut self, node: NodeId, kind: ObsControlKind) {
        self.obs.metrics.inc(match kind {
            ObsControlKind::Duplicate => "netsim.fault.duplicate",
            ObsControlKind::Delay => "netsim.fault.delay",
            ObsControlKind::Corrupt => "netsim.fault.corrupt",
            ObsControlKind::Forge => "netsim.fault.forge",
            ObsControlKind::Replay => "netsim.fault.replay",
            ObsControlKind::Tamper => "netsim.fault.tamper",
            ObsControlKind::Firewall => "netsim.fault.firewall",
        });
        self.obs.trace.record(
            self.now.as_nanos(),
            ObsEvent::ControlFault {
                node: node.0 as u32,
                kind,
            },
        );
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.event_seq;
        self.event_seq += 1;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LossModel;
    use crate::packet::{FlowId, PacketKind, Payload};
    use crate::time::SimDuration;
    use std::any::Any;

    /// Sends `total` packets, one per `interval`.
    struct Blaster {
        total: u64,
        sent: u64,
        interval: SimDuration,
    }

    impl Node for Blaster {
        fn on_start(&mut self, ctx: &mut Context) {
            ctx.set_timer_after(SimDuration::ZERO, 0);
        }

        fn on_packet(&mut self, _iface: IfaceId, _packet: Packet, _ctx: &mut Context) {}

        fn on_timer(&mut self, _token: u64, ctx: &mut Context) {
            if self.sent < self.total {
                let pkt = Packet::data(FlowId(0), self.sent, self.sent * 7 + 1, 1500, ctx.now());
                ctx.send(IfaceId(0), pkt);
                self.sent += 1;
                ctx.set_timer_after(self.interval, 0);
            }
        }

        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Counts arrivals and records sequence order.
    #[derive(Default)]
    struct Sink {
        received: Vec<u64>,
        last_arrival: Option<SimTime>,
    }

    impl Node for Sink {
        fn on_packet(&mut self, _iface: IfaceId, packet: Packet, ctx: &mut Context) {
            assert_eq!(packet.kind, PacketKind::Data);
            assert!(matches!(packet.payload, Payload::Data { .. }));
            self.received.push(packet.seq);
            self.last_arrival = Some(ctx.now());
        }

        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn blaster_world(seed: u64, loss: LossModel, total: u64) -> (World, NodeId, NodeId) {
        let mut w = World::new(seed);
        let src = w.add_node(Box::new(Blaster {
            total,
            sent: 0,
            interval: SimDuration::from_micros(100),
        }));
        let dst = w.add_node(Box::new(Sink::default()));
        let cfg = LinkConfig {
            loss,
            ..LinkConfig::default()
        };
        w.connect(src, dst, cfg, LinkConfig::default());
        (w, src, dst)
    }

    #[test]
    fn lossless_delivery_in_order() {
        let (mut w, src, dst) = blaster_world(1, LossModel::None, 100);
        w.run_until_idle(100_000);
        let sink = w.node_as::<Sink>(dst);
        assert_eq!(sink.received.len(), 100);
        assert!(sink.received.windows(2).all(|p| p[0] < p[1]));
        assert_eq!(w.link_stats(src, IfaceId(0)).delivered, 100);
    }

    #[test]
    fn conservation_under_loss() {
        let (mut w, src, dst) = blaster_world(2, LossModel::Bernoulli { p: 0.3 }, 1000);
        w.run_until_idle(1_000_000);
        let stats = w.link_stats(src, IfaceId(0)).clone();
        let sink = w.node_as::<Sink>(dst);
        // Every offered packet is delivered or dropped — none lost track of.
        assert_eq!(stats.offered, 1000);
        assert_eq!(
            stats.delivered + stats.dropped_loss + stats.dropped_queue,
            stats.offered
        );
        assert_eq!(sink.received.len() as u64, stats.delivered);
        // With p=0.3 over 1000 packets, deliveries land far from both ends.
        assert!((500..900).contains(&(stats.delivered as usize)));
    }

    #[test]
    fn identical_seeds_identical_runs() {
        let run = |seed| {
            let (mut w, _, dst) = blaster_world(seed, LossModel::Bernoulli { p: 0.2 }, 500);
            w.run_until_idle(1_000_000);
            let sink = w.node_as::<Sink>(dst);
            (sink.received.clone(), w.now(), w.events_processed())
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77).0, run(78).0);
    }

    #[test]
    fn run_until_respects_deadline() {
        let (mut w, _, dst) = blaster_world(3, LossModel::None, 1000);
        // 1000 packets at 100 us intervals = 100 ms of sending; the first
        // arrival lands just after 1 ms (12 us serialization + 1 ms delay).
        // Stop at 5 ms: roughly 40 arrivals.
        let deadline = SimTime::from_nanos(5_000_000);
        w.run_until(deadline);
        assert_eq!(w.now(), deadline);
        let early = w.node_as::<Sink>(dst).received.len();
        assert!(early > 0 && early < 60, "got {early}");
        // Resume to completion.
        w.run_until_idle(1_000_000);
        assert_eq!(w.node_as::<Sink>(dst).received.len(), 1000);
    }

    #[test]
    fn step_returns_false_when_idle() {
        let mut w = World::new(0);
        let a = w.add_node(Box::new(Sink::default()));
        let b = w.add_node(Box::new(Sink::default()));
        w.connect(a, b, LinkConfig::default(), LinkConfig::default());
        assert!(!w.step()); // no events at all
    }

    #[test]
    #[should_panic(expected = "node type mismatch")]
    fn downcast_mismatch_panics() {
        let mut w = World::new(0);
        let a = w.add_node(Box::new(Sink::default()));
        let _ = w.node_as::<Blaster>(a);
    }

    #[test]
    #[should_panic(expected = "livelock")]
    fn livelock_guard_fires() {
        /// A node that reschedules itself forever.
        struct Spinner;
        impl Node for Spinner {
            fn on_start(&mut self, ctx: &mut Context) {
                ctx.set_timer_after(SimDuration::from_nanos(1), 0);
            }
            fn on_packet(&mut self, _: IfaceId, _: Packet, _: &mut Context) {}
            fn on_timer(&mut self, _: u64, ctx: &mut Context) {
                ctx.set_timer_after(SimDuration::from_nanos(1), 0);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut w = World::new(0);
        w.add_node(Box::new(Spinner));
        w.run_until_idle(10_000);
    }
}
