//! Packets: the unit of transfer between simulated nodes.
//!
//! A packet models an E2E-encrypted datagram. Mirroring the paper's threat
//! model (§2: proxies "cannot modify the packets or make decisions based on
//! their contents"), the fields split into two groups:
//!
//! * **Opaque-but-visible** — what a real middlebox can see on the wire:
//!   the pseudo-random [`identifier`](Packet::id) (a window of encrypted
//!   header bytes, §3.2), the size, and the [`flow`](Packet::flow) (the
//!   cleartext IP/UDP 4-tuple — even fully encrypted transports expose
//!   which connection a datagram belongs to). Sidecars key per-packet
//!   decisions off `id` and per-connection state off `flow`.
//! * **Ground truth** — `seq` and the typed payload, standing in for the
//!   *encrypted* contents only end hosts can decrypt. Simulator
//!   bookkeeping and end-host logic may use them; in-network node
//!   implementations must not (the sidecar crate upholds this by
//!   convention, tested in its integration suite).

use crate::time::SimTime;

/// Identifies a flow (one transport connection direction).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u32);

/// Coarse packet class, used for stats and queue accounting. A real
/// middlebox can approximate this from size/direction; nothing
/// protocol-specific leaks.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PacketKind {
    /// Transport data (MTU-sized in the paper's scenarios).
    Data,
    /// End-to-end transport acknowledgment (encrypted; only hosts parse it).
    Ack,
    /// Sidecar protocol datagram (quACKs and sidecar control), spoken
    /// between sidecars in the clear.
    Sidecar,
}

/// The decrypted payload, accessible to end hosts (and, for
/// [`PacketKind::Sidecar`], to sidecars — the sidecar protocol is not
/// end-to-end encrypted).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Payload {
    /// No payload beyond the (simulated) data bytes.
    None,
    /// Transport data carrying application data unit `unit` (a unit is one
    /// MTU-sized chunk; retransmissions of a unit travel in fresh packets
    /// with fresh packet numbers and fresh identifiers, QUIC-style).
    Data {
        /// Application data-unit number.
        unit: u64,
    },
    /// An end-to-end acknowledgment.
    Ack(AckInfo),
    /// An opaque sidecar-protocol message; the sidecar crate defines the
    /// encoding (`proto` discriminates message types).
    Sidecar {
        /// Sidecar message type tag.
        proto: u8,
        /// Serialized message body.
        bytes: Vec<u8>,
    },
}

/// QUIC-style acknowledgment contents: the largest received packet number
/// plus ranges of received packet numbers below it.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AckInfo {
    /// Largest packet number being acknowledged.
    pub largest: u64,
    /// Inclusive `(start, end)` ranges of received packet numbers, sorted
    /// descending by `end`, the first containing `largest`.
    pub ranges: Vec<(u64, u64)>,
    /// Whether this ACK was triggered by the receiver's ECN/loss heuristics
    /// (immediate) rather than the ack-frequency schedule.
    pub immediate: bool,
}

impl AckInfo {
    /// Whether `seq` is covered by this ACK.
    pub fn acks(&self, seq: u64) -> bool {
        self.ranges.iter().any(|&(s, e)| (s..=e).contains(&seq))
    }
}

/// A simulated packet.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Packet {
    /// Flow this packet belongs to. Models the cleartext IP/UDP 4-tuple:
    /// visible on the wire, so in-network code may key per-connection
    /// state on it (like any NAT or PEP does).
    pub flow: FlowId,
    /// Packet class.
    pub kind: PacketKind,
    /// On-the-wire size in bytes, including all headers.
    pub size: u32,
    /// The opaque identifier a sidecar extracts from the encrypted header
    /// (§3.2). Pseudo-random; the only per-packet value in-network code may
    /// key on.
    pub id: u64,
    /// Transport-level packet number (ground truth; encrypted on the wire).
    pub seq: u64,
    /// When the packet was (first) transmitted by its origin host.
    pub sent_at: SimTime,
    /// Decrypted payload (end hosts only, except `Payload::Sidecar`).
    pub payload: Payload,
}

impl Payload {
    /// Heap bytes owned by this payload. The hot simulation classes —
    /// [`Payload::None`] and [`Payload::Data`] — own none, which is what
    /// lets the world's steady-state dispatch loop move and even clone data
    /// packets without touching the allocator; the zero-alloc engine test
    /// asserts that contract end to end.
    pub fn heap_bytes(&self) -> usize {
        match self {
            Payload::None | Payload::Data { .. } => 0,
            Payload::Ack(info) => info.ranges.capacity() * core::mem::size_of::<(u64, u64)>(),
            Payload::Sidecar { bytes, .. } => bytes.capacity(),
        }
    }
}

impl Packet {
    /// Whether this packet can be moved/cloned without heap allocation (see
    /// [`Payload::heap_bytes`]).
    pub fn is_heap_free(&self) -> bool {
        self.payload.heap_bytes() == 0
    }

    /// A data packet of `size` bytes (data unit defaults to the packet
    /// number; use [`Packet::data_unit`] for retransmissions).
    pub fn data(flow: FlowId, seq: u64, id: u64, size: u32, sent_at: SimTime) -> Self {
        Self::data_unit(flow, seq, seq, id, size, sent_at)
    }

    /// A data packet carrying an explicit data unit.
    pub fn data_unit(
        flow: FlowId,
        seq: u64,
        unit: u64,
        id: u64,
        size: u32,
        sent_at: SimTime,
    ) -> Self {
        Packet {
            flow,
            kind: PacketKind::Data,
            size,
            id,
            seq,
            sent_at,
            payload: Payload::Data { unit },
        }
    }

    /// An end-to-end ACK packet.
    pub fn ack(flow: FlowId, id: u64, ack: AckInfo, size: u32, sent_at: SimTime) -> Self {
        Packet {
            flow,
            kind: PacketKind::Ack,
            size,
            id,
            seq: 0,
            sent_at,
            payload: Payload::Ack(ack),
        }
    }

    /// A sidecar-protocol packet.
    pub fn sidecar(flow: FlowId, proto: u8, bytes: Vec<u8>, size: u32, sent_at: SimTime) -> Self {
        Packet {
            flow,
            kind: PacketKind::Sidecar,
            size,
            id: 0,
            seq: 0,
            sent_at,
            payload: Payload::Sidecar { proto, bytes },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_range_queries() {
        let ack = AckInfo {
            largest: 100,
            ranges: vec![(90, 100), (50, 60), (10, 10)],
            immediate: false,
        };
        assert!(ack.acks(100));
        assert!(ack.acks(90));
        assert!(ack.acks(55));
        assert!(ack.acks(10));
        assert!(!ack.acks(89));
        assert!(!ack.acks(0));
        assert!(!ack.acks(101));
    }

    #[test]
    fn constructors_fill_fields() {
        let d = Packet::data(FlowId(1), 42, 0xABCD, 1500, SimTime::from_nanos(5));
        assert_eq!(d.kind, PacketKind::Data);
        assert_eq!(d.seq, 42);
        assert_eq!(d.payload, Payload::Data { unit: 42 });
        let r = Packet::data_unit(FlowId(1), 50, 42, 0xEE, 1500, SimTime::ZERO);
        assert_eq!(r.seq, 50);
        assert_eq!(r.payload, Payload::Data { unit: 42 });

        let a = Packet::ack(FlowId(1), 7, AckInfo::default(), 40, SimTime::ZERO);
        assert_eq!(a.kind, PacketKind::Ack);
        assert!(matches!(a.payload, Payload::Ack(_)));

        let s = Packet::sidecar(FlowId(1), 3, vec![1, 2, 3], 90, SimTime::ZERO);
        assert_eq!(s.kind, PacketKind::Sidecar);
        assert!(matches!(s.payload, Payload::Sidecar { proto: 3, .. }));
    }
}
