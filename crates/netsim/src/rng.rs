//! Deterministic pseudo-randomness for the simulator.
//!
//! Everything stochastic — loss draws, jitter, identifier generation — pulls
//! from one seeded generator, so a `(topology, seed)` pair fully determines
//! a run (smoltcp-style reproducible fault injection). The generator is
//! implemented in-tree (xoshiro256++ seeded via SplitMix64) rather than via
//! the `rand` crate so traces stay byte-identical across platforms and
//! dependency upgrades.

/// A small, fast, deterministic PRNG (xoshiro256++).
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seeds the generator; any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        // Expand the seed with SplitMix64 as the xoshiro authors recommend.
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SimRng {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Next 64 pseudo-random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Uniform integer in `[0, bound)` (unbiased via rejection).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Forks an independent generator (for per-component streams).
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn chance_extremes_and_rates() {
        let mut rng = SimRng::new(11);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
        let hits = (0..100_000).filter(|_| rng.chance(0.02)).count();
        // 2% ± generous tolerance.
        assert!((1_500..2_500).contains(&hits), "{hits}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = SimRng::new(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fork_streams_are_independent_but_deterministic() {
        let mut root1 = SimRng::new(9);
        let mut root2 = SimRng::new(9);
        let mut f1 = root1.fork();
        let mut f2 = root2.fork();
        for _ in 0..100 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
        // The fork differs from its parent's continued stream.
        assert_ne!(root1.next_u64(), f1.next_u64());
    }
}
