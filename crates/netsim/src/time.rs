//! Simulated time: nanosecond-resolution instants and durations.
//!
//! The simulator is fully deterministic, so time is a plain counter — no
//! wall clocks anywhere. Nanosecond resolution comfortably covers both the
//! paper's microsecond-scale quACK costs and its millisecond-scale RTTs.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "duration_since of a later time");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating subtraction of a duration.
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }

    /// The scheduler tick this instant falls in, for ticks of `2^bits`
    /// nanoseconds — the timer wheel's slot hash (see [`crate::sched`]).
    pub const fn tick(self, bits: u32) -> u64 {
        self.0 >> bits
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Constructs from float seconds (rounds down; reporting/config only).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid duration: {s}");
        SimDuration((s * 1e9) as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Scales by an integer factor, saturating.
    pub const fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Checked scaling by a float factor (RTO backoff etc.).
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(k >= 0.0 && k.is_finite(), "invalid scale: {k}");
        SimDuration((self.0 as f64 * k) as u64)
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "negative duration");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// Transmission (serialization) time of `bytes` at `bits_per_sec`.
pub fn transmission_time(bytes: u32, bits_per_sec: u64) -> SimDuration {
    assert!(bits_per_sec > 0, "link rate must be positive");
    // ns = bits * 1e9 / rate, computed in u128 to avoid overflow.
    let bits = bytes as u128 * 8;
    SimDuration::from_nanos((bits * 1_000_000_000 / bits_per_sec as u128) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimDuration::from_millis(60).as_nanos(), 60_000_000);
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(10);
        assert_eq!((t1 - t0), SimDuration::from_millis(10));
        assert_eq!(t1.saturating_sub(SimDuration::from_secs(1)), SimTime::ZERO);
        let mut t = t1;
        t += SimDuration::from_millis(5);
        assert_eq!(t.as_nanos(), 15_000_000);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(d.mul_f64(1.5), SimDuration::from_millis(15));
        assert!((SimDuration::from_secs(1) / SimDuration::from_millis(250) - 4.0).abs() < 1e-12);
        assert_eq!(
            d.max(SimDuration::from_millis(20)),
            SimDuration::from_millis(20)
        );
        assert_eq!(d.min(SimDuration::from_millis(20)), d);
    }

    #[test]
    fn transmission_time_examples() {
        // 1500 B at 200 Mbit/s = 60 us (the paper's §4.3 back-of-envelope).
        assert_eq!(
            transmission_time(1500, 200_000_000),
            SimDuration::from_micros(60)
        );
        // 1 byte at 8 bit/s = 1 s.
        assert_eq!(transmission_time(1, 8), SimDuration::from_secs(1));
        assert_eq!(transmission_time(0, 1_000), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_nanos(500).to_string(), "500ns");
        assert_eq!(SimDuration::from_micros(1500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_millis(60).to_string(), "60.000ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
        assert_eq!(SimTime::from_nanos(1_500_000).to_string(), "0.001500s");
    }
}
