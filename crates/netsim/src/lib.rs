//! Deterministic discrete-event network simulator for the Sidecar
//! (HotNets '22) reproduction.
//!
//! The paper's sidecar protocols were proposed for real networks with real
//! QUIC endpoints and middleboxes. This crate substitutes a deterministic
//! simulator that exposes exactly the observables those protocols consume:
//!
//! * packets carrying opaque pseudo-random identifiers (encrypted-header
//!   surrogates, paper §3.2),
//! * links with configurable rate, propagation delay, drop-tail queues,
//!   Bernoulli/Gilbert–Elliott loss, and reordering jitter, and
//! * a QUIC-like "paranoid" transport ([`transport`]) with pluggable
//!   congestion control, RFC 6298-style RTT estimation, and QUIC-style loss
//!   detection — the *base protocol* that sidecars accelerate without
//!   modifying.
//!
//! Determinism is end-to-end: a `(topology, seed)` pair reproduces a run
//! byte-for-byte, which the test suites rely on (smoltcp-style reproducible
//! fault injection).
//!
//! # Example: two hosts over a lossy link
//!
//! ```
//! use sidecar_netsim::link::{LinkConfig, LossModel};
//! use sidecar_netsim::time::SimDuration;
//! use sidecar_netsim::transport::{ReceiverNode, SenderConfig, SenderNode};
//! use sidecar_netsim::world::World;
//!
//! let mut world = World::new(7);
//! let sender = world.add_node(SenderNode::boxed(SenderConfig {
//!     total_packets: Some(200),
//!     ..SenderConfig::default()
//! }));
//! let receiver = world.add_node(ReceiverNode::boxed(Default::default()));
//! world.connect(
//!     sender,
//!     receiver,
//!     LinkConfig { loss: LossModel::Bernoulli { p: 0.01 }, ..LinkConfig::default() },
//!     LinkConfig::default(),
//! );
//! world.run_until_idle(1_000_000);
//! let stats = world.node_as::<SenderNode>(sender).stats();
//! assert_eq!(stats.delivered_packets, 200); // reliable despite loss
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod fault;
pub mod forward;
pub mod link;
pub mod node;
pub mod obs;
pub mod packet;
pub mod rng;
pub mod router;
pub mod sched;
#[cfg(feature = "obs")]
pub mod telemetry;
pub mod time;
pub mod trace;
pub mod transport;
pub mod world;

pub use driver::Driver;
pub use fault::FaultPlan;
pub use forward::Forwarder;
pub use link::{Link, LinkConfig, LinkStats, LossModel};
pub use node::{Context, IfaceId, LinkId, Node, NodeId, TimerHandle};
pub use obs::WorldObs;
pub use packet::{AckInfo, FlowId, Packet, PacketKind, Payload};
pub use rng::SimRng;
pub use router::FlowRouter;
pub use sched::{set_thread_scheduler, SchedulerKind};
#[cfg(feature = "obs")]
pub use telemetry::run_sampled;
pub use time::{transmission_time, SimDuration, SimTime};
pub use world::World;
