//! Event tracing: an optional, bounded record of everything the world did.
//!
//! Inspired by smoltcp's pcap option: flip tracing on and every packet
//! arrival, drop, and timer firing is recorded with its timestamp, giving
//! tests and debugging sessions a causal, human-readable account of a run.
//! Traces are bounded (ring semantics) so long simulations cannot exhaust
//! memory.

use crate::node::{IfaceId, NodeId};
use crate::packet::PacketKind;
use crate::time::SimTime;
use std::collections::VecDeque;

/// Why a packet never reached its destination.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// The link's loss model fired.
    Loss,
    /// The link's drop-tail queue was full.
    QueueFull,
    /// The receiving node was down (scripted outage); for this reason the
    /// event's `node`/`iface` are the would-be receiver, not the sender.
    NodeDown,
    /// The link was blacked out by a [`crate::fault::FaultPlan`].
    Blackout,
    /// A scripted control fault dropped the packet.
    Injected,
}

/// One recorded simulation event.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// A packet was delivered to a node.
    Arrival {
        /// When it arrived.
        at: SimTime,
        /// Receiving node.
        node: NodeId,
        /// Receiving interface.
        iface: IfaceId,
        /// Packet class.
        kind: PacketKind,
        /// Opaque identifier.
        id: u64,
        /// Packet number (ground truth).
        seq: u64,
        /// Bytes on the wire.
        size: u32,
    },
    /// A packet was dropped in transit.
    Drop {
        /// When the drop happened (at offer time).
        at: SimTime,
        /// Transmitting node.
        node: NodeId,
        /// Egress interface.
        iface: IfaceId,
        /// Packet class.
        kind: PacketKind,
        /// Opaque identifier.
        id: u64,
        /// Why.
        reason: DropReason,
    },
    /// A timer fired on a node.
    Timer {
        /// When.
        at: SimTime,
        /// The node.
        node: NodeId,
        /// The token it armed.
        token: u64,
    },
    /// A scripted outage edge: a node crashed (`up == false`) or restarted
    /// (`up == true`).
    Fault {
        /// When.
        at: SimTime,
        /// The affected node.
        node: NodeId,
        /// `false` on the crash edge, `true` on the restart edge.
        up: bool,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::Arrival { at, .. }
            | TraceEvent::Drop { at, .. }
            | TraceEvent::Timer { at, .. }
            | TraceEvent::Fault { at, .. } => *at,
        }
    }
}

/// A bounded event recorder.
#[derive(Debug, Default)]
pub struct Trace {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    /// Total events offered (including ones evicted from the ring).
    pub total_recorded: u64,
}

impl Trace {
    /// A disabled trace (records nothing).
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// A trace keeping the most recent `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            total_recorded: 0,
        }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records one event (no-op when disabled).
    pub fn record(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
        self.total_recorded += 1;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Retained events matching a predicate.
    pub fn filtered<'a>(
        &'a self,
        mut pred: impl FnMut(&TraceEvent) -> bool + 'a,
    ) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| pred(e))
    }

    /// Counts retained drops by reason.
    pub fn drop_counts(&self) -> (u64, u64) {
        let mut loss = 0;
        let mut queue = 0;
        for e in &self.events {
            if let TraceEvent::Drop { reason, .. } = e {
                match reason {
                    DropReason::Loss => loss += 1,
                    DropReason::QueueFull => queue += 1,
                    // Scripted drops are counted by the fault tests directly.
                    DropReason::NodeDown | DropReason::Blackout | DropReason::Injected => {}
                }
            }
        }
        (loss, queue)
    }

    /// Renders the retained events as one line each (tcpdump-flavoured).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            match e {
                TraceEvent::Arrival {
                    at,
                    node,
                    iface,
                    kind,
                    id,
                    seq,
                    size,
                } => {
                    out.push_str(&format!(
                        "{at} node{} if{} ← {kind:?} id={id:#010x} pn={seq} {size}B\n",
                        node.0, iface.0
                    ));
                }
                TraceEvent::Drop {
                    at,
                    node,
                    iface,
                    kind,
                    id,
                    reason,
                } => {
                    out.push_str(&format!(
                        "{at} node{} if{} ✗ {kind:?} id={id:#010x} ({reason:?})\n",
                        node.0, iface.0
                    ));
                }
                TraceEvent::Timer { at, node, token } => {
                    out.push_str(&format!("{at} node{} ⏰ token={token}\n", node.0));
                }
                TraceEvent::Fault { at, node, up } => {
                    let edge = if *up { "restart" } else { "crash" };
                    out.push_str(&format!("{at} node{} ⚡ {edge}\n", node.0));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrival(ns: u64) -> TraceEvent {
        TraceEvent::Arrival {
            at: SimTime::from_nanos(ns),
            node: NodeId(1),
            iface: IfaceId(0),
            kind: PacketKind::Data,
            id: 0xAB,
            seq: 7,
            size: 1500,
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        assert!(!t.is_enabled());
        t.record(arrival(1));
        assert_eq!(t.events().count(), 0);
        assert_eq!(t.total_recorded, 0);
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut t = Trace::with_capacity(3);
        for i in 0..5 {
            t.record(arrival(i));
        }
        assert_eq!(t.total_recorded, 5);
        let times: Vec<u64> = t.events().map(|e| e.at().as_nanos()).collect();
        assert_eq!(times, vec![2, 3, 4]);
    }

    #[test]
    fn drop_counting_and_render() {
        let mut t = Trace::with_capacity(16);
        t.record(arrival(1));
        t.record(TraceEvent::Drop {
            at: SimTime::from_nanos(2),
            node: NodeId(0),
            iface: IfaceId(1),
            kind: PacketKind::Data,
            id: 0xCD,
            reason: DropReason::Loss,
        });
        t.record(TraceEvent::Drop {
            at: SimTime::from_nanos(3),
            node: NodeId(0),
            iface: IfaceId(1),
            kind: PacketKind::Ack,
            id: 0xEF,
            reason: DropReason::QueueFull,
        });
        t.record(TraceEvent::Timer {
            at: SimTime::from_nanos(4),
            node: NodeId(2),
            token: 9,
        });
        assert_eq!(t.drop_counts(), (1, 1));
        let text = t.render();
        assert!(text.contains("← Data"));
        assert!(text.contains("(Loss)"));
        assert!(text.contains("(QueueFull)"));
        assert!(text.contains("⏰ token=9"));
        assert_eq!(text.lines().count(), 4);
        assert_eq!(
            t.filtered(|e| matches!(e, TraceEvent::Drop { .. })).count(),
            2
        );
    }
}
