//! Unidirectional links: rate, propagation delay, a drop-tail queue, loss
//! models, and optional reordering jitter.
//!
//! A link is the simulator's stand-in for the path segments the paper's
//! protocols care about: the well-provisioned server–proxy segment and the
//! lossy/slow proxy–client segment (Figs. 1b, 3, 4). Fault injection is
//! part of the link itself (smoltcp-style) so every scenario can dial in
//! loss and reordering reproducibly.

use crate::rng::SimRng;
use crate::time::{transmission_time, SimDuration, SimTime};
use std::collections::VecDeque;

/// Random-loss model applied per packet at transmission.
#[derive(Clone, Debug, PartialEq)]
pub enum LossModel {
    /// No random loss (queue overflow can still drop).
    None,
    /// Independent Bernoulli loss with probability `p`.
    Bernoulli {
        /// Per-packet loss probability in `[0, 1]`.
        p: f64,
    },
    /// Two-state Gilbert–Elliott burst-loss model: in `Good` the packet is
    /// lost with `p_good`, in `Bad` with `p_bad`; states flip with the given
    /// transition probabilities after each packet.
    GilbertElliott {
        /// Loss probability in the good state (often 0).
        p_good: f64,
        /// Loss probability in the bad state.
        p_bad: f64,
        /// P(good → bad) per packet.
        good_to_bad: f64,
        /// P(bad → good) per packet.
        bad_to_good: f64,
    },
}

impl LossModel {
    /// Average loss rate of the model (for reporting and frequency tuning).
    pub fn mean_loss_rate(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { p } => p,
            LossModel::GilbertElliott {
                p_good,
                p_bad,
                good_to_bad,
                bad_to_good,
            } => {
                // Stationary distribution of the two-state chain.
                let denom = good_to_bad + bad_to_good;
                if denom == 0.0 {
                    return p_good;
                }
                let pi_bad = good_to_bad / denom;
                p_good * (1.0 - pi_bad) + p_bad * pi_bad
            }
        }
    }
}

/// Static configuration of a link.
#[derive(Clone, Debug)]
pub struct LinkConfig {
    /// Bottleneck rate in bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Drop-tail queue capacity, in packets (in addition to the packet in
    /// service).
    pub queue_packets: usize,
    /// Random loss model.
    pub loss: LossModel,
    /// Maximum extra random delay added per packet (uniform in
    /// `[0, jitter]`); nonzero values can reorder packets (§3.3
    /// "Re-ordered packets").
    pub jitter: SimDuration,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            rate_bps: 1_000_000_000,
            delay: SimDuration::from_millis(1),
            queue_packets: 256,
            loss: LossModel::None,
            jitter: SimDuration::ZERO,
        }
    }
}

impl LinkConfig {
    /// The paper's §4.3 reference segment: "a 60ms RTT on a 200 Mbps link"
    /// with a 2% worst-case loss rate — as a one-way link of 30 ms.
    pub fn paper_reference() -> Self {
        LinkConfig {
            rate_bps: 200_000_000,
            delay: SimDuration::from_millis(30),
            queue_packets: 1024,
            loss: LossModel::Bernoulli { p: 0.02 },
            jitter: SimDuration::ZERO,
        }
    }
}

/// Per-link transfer statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets offered to the link.
    pub offered: u64,
    /// Packets dropped by the full queue.
    pub dropped_queue: u64,
    /// Packets dropped by the loss model.
    pub dropped_loss: u64,
    /// Packets that will be delivered.
    pub delivered: u64,
    /// Bytes delivered.
    pub delivered_bytes: u64,
}

impl LinkStats {
    /// Fraction of offered packets that were dropped (any cause).
    pub fn drop_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            (self.dropped_queue + self.dropped_loss) as f64 / self.offered as f64
        }
    }
}

/// The outcome of offering one packet to a link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkOutcome {
    /// The packet will arrive at the far end at the contained time.
    Deliver(SimTime),
    /// Dropped: the queue was full.
    DropQueue,
    /// Dropped: the loss model fired.
    DropLoss,
}

/// Runtime state of a unidirectional link.
#[derive(Clone, Debug)]
pub struct Link {
    config: LinkConfig,
    /// When the transmitter finishes the packet currently in service.
    busy_until: SimTime,
    /// Serialization-finish times of queued/in-service packets (front =
    /// oldest); used for exact drop-tail occupancy accounting.
    in_flight: VecDeque<SimTime>,
    /// Gilbert–Elliott state: `true` = bad.
    ge_bad: bool,
    /// Statistics.
    pub stats: LinkStats,
}

impl Link {
    /// Creates an idle link.
    pub fn new(config: LinkConfig) -> Self {
        assert!(config.rate_bps > 0, "link rate must be positive");
        Link {
            config,
            busy_until: SimTime::ZERO,
            in_flight: VecDeque::new(),
            ge_bad: false,
            stats: LinkStats::default(),
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Current queue occupancy (packets queued or in service) at `now`.
    pub fn occupancy(&mut self, now: SimTime) -> usize {
        while self.in_flight.front().is_some_and(|&t| t <= now) {
            self.in_flight.pop_front();
        }
        self.in_flight.len()
    }

    /// Offers a packet of `size` bytes to the link at time `now`, returning
    /// when (and whether) it arrives at the far end.
    ///
    /// Loss is evaluated before queueing (transmission-medium loss), queue
    /// overflow after — so a lossy link still fills its queue realistically.
    pub fn offer(&mut self, now: SimTime, size: u32, rng: &mut SimRng) -> LinkOutcome {
        self.stats.offered += 1;
        if self.draw_loss(rng) {
            self.stats.dropped_loss += 1;
            return LinkOutcome::DropLoss;
        }
        // Occupancy counts the packet in service; capacity is queue + 1.
        if self.occupancy(now) > self.config.queue_packets {
            self.stats.dropped_queue += 1;
            return LinkOutcome::DropQueue;
        }
        let start = self.busy_until.max(now);
        let finish = start + transmission_time(size, self.config.rate_bps);
        self.busy_until = finish;
        self.in_flight.push_back(finish);
        let jitter = if self.config.jitter == SimDuration::ZERO {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(rng.below(self.config.jitter.as_nanos() + 1))
        };
        let arrival = finish + self.config.delay + jitter;
        self.stats.delivered += 1;
        self.stats.delivered_bytes += size as u64;
        LinkOutcome::Deliver(arrival)
    }

    fn draw_loss(&mut self, rng: &mut SimRng) -> bool {
        match self.config.loss {
            LossModel::None => false,
            LossModel::Bernoulli { p } => rng.chance(p),
            LossModel::GilbertElliott {
                p_good,
                p_bad,
                good_to_bad,
                bad_to_good,
            } => {
                let p = if self.ge_bad { p_bad } else { p_good };
                let lost = rng.chance(p);
                // Evolve the channel state after each packet.
                if self.ge_bad {
                    if rng.chance(bad_to_good) {
                        self.ge_bad = false;
                    }
                } else if rng.chance(good_to_bad) {
                    self.ge_bad = true;
                }
                lost
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(42)
    }

    #[test]
    fn delivery_time_includes_serialization_and_delay() {
        let mut link = Link::new(LinkConfig {
            rate_bps: 8_000_000, // 1 byte/us
            delay: SimDuration::from_millis(10),
            ..LinkConfig::default()
        });
        let out = link.offer(SimTime::ZERO, 1000, &mut rng());
        // 1000 B = 1 ms serialization + 10 ms propagation.
        assert_eq!(out, LinkOutcome::Deliver(SimTime::from_nanos(11_000_000)));
    }

    #[test]
    fn back_to_back_packets_queue_behind_each_other() {
        let mut link = Link::new(LinkConfig {
            rate_bps: 8_000_000,
            delay: SimDuration::ZERO,
            ..LinkConfig::default()
        });
        let mut r = rng();
        let t0 = SimTime::ZERO;
        let a = link.offer(t0, 1000, &mut r);
        let b = link.offer(t0, 1000, &mut r);
        assert_eq!(a, LinkOutcome::Deliver(SimTime::from_nanos(1_000_000)));
        assert_eq!(b, LinkOutcome::Deliver(SimTime::from_nanos(2_000_000)));
    }

    #[test]
    fn fifo_order_preserved_without_jitter() {
        let mut link = Link::new(LinkConfig::default());
        let mut r = rng();
        let mut last = SimTime::ZERO;
        for i in 0..50 {
            let t = SimTime::from_nanos(i * 100);
            match link.offer(t, 1500, &mut r) {
                LinkOutcome::Deliver(at) => {
                    assert!(at >= last, "reordering without jitter");
                    last = at;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn queue_overflow_drops() {
        let mut link = Link::new(LinkConfig {
            rate_bps: 8_000, // 1 byte/ms: glacial
            queue_packets: 2,
            delay: SimDuration::ZERO,
            ..LinkConfig::default()
        });
        let mut r = rng();
        let t0 = SimTime::ZERO;
        // Capacity = 1 in service + 2 queued.
        assert!(matches!(
            link.offer(t0, 100, &mut r),
            LinkOutcome::Deliver(_)
        ));
        assert!(matches!(
            link.offer(t0, 100, &mut r),
            LinkOutcome::Deliver(_)
        ));
        assert!(matches!(
            link.offer(t0, 100, &mut r),
            LinkOutcome::Deliver(_)
        ));
        assert_eq!(link.offer(t0, 100, &mut r), LinkOutcome::DropQueue);
        assert_eq!(link.stats.dropped_queue, 1);
        assert_eq!(link.stats.offered, 4);
        // After the backlog drains, the queue accepts again.
        let later = SimTime::ZERO + SimDuration::from_secs(1000);
        assert!(matches!(
            link.offer(later, 100, &mut r),
            LinkOutcome::Deliver(_)
        ));
    }

    #[test]
    fn bernoulli_loss_rate_approximates_p() {
        let mut link = Link::new(LinkConfig {
            loss: LossModel::Bernoulli { p: 0.1 },
            queue_packets: usize::MAX,
            ..LinkConfig::default()
        });
        let mut r = rng();
        for i in 0..20_000u64 {
            let _ = link.offer(SimTime::from_nanos(i * 1_000_000), 100, &mut r);
        }
        let rate = link.stats.dropped_loss as f64 / link.stats.offered as f64;
        assert!((0.08..0.12).contains(&rate), "{rate}");
    }

    #[test]
    fn gilbert_elliott_stationary_loss() {
        let model = LossModel::GilbertElliott {
            p_good: 0.0,
            p_bad: 0.5,
            good_to_bad: 0.02,
            bad_to_good: 0.18,
        };
        // pi_bad = 0.02 / 0.20 = 0.1 → mean loss 0.05.
        assert!((model.mean_loss_rate() - 0.05).abs() < 1e-12);
        let mut link = Link::new(LinkConfig {
            loss: model,
            queue_packets: usize::MAX,
            ..LinkConfig::default()
        });
        let mut r = rng();
        for i in 0..100_000u64 {
            let _ = link.offer(SimTime::from_nanos(i * 1_000_000), 100, &mut r);
        }
        let rate = link.stats.dropped_loss as f64 / link.stats.offered as f64;
        assert!((0.03..0.07).contains(&rate), "{rate}");
    }

    #[test]
    fn mean_loss_rate_edge_cases() {
        assert_eq!(LossModel::None.mean_loss_rate(), 0.0);
        assert_eq!(LossModel::Bernoulli { p: 0.02 }.mean_loss_rate(), 0.02);
        let frozen = LossModel::GilbertElliott {
            p_good: 0.01,
            p_bad: 0.9,
            good_to_bad: 0.0,
            bad_to_good: 0.0,
        };
        assert_eq!(frozen.mean_loss_rate(), 0.01);
    }

    #[test]
    fn jitter_can_reorder() {
        let mut link = Link::new(LinkConfig {
            rate_bps: 1_000_000_000_000, // effectively instant serialization
            delay: SimDuration::from_millis(1),
            jitter: SimDuration::from_millis(5),
            ..LinkConfig::default()
        });
        let mut r = rng();
        let mut arrivals = Vec::new();
        for i in 0..200 {
            if let LinkOutcome::Deliver(at) = link.offer(SimTime::from_nanos(i * 1000), 100, &mut r)
            {
                arrivals.push(at);
            }
        }
        let mut sorted = arrivals.clone();
        sorted.sort();
        assert_ne!(arrivals, sorted, "jitter should reorder at least one pair");
    }
}
