//! The [`Node`] trait and the [`Context`] handed to node callbacks.
//!
//! Nodes are sans-IO state machines: callbacks receive a [`Context`] that
//! *records* intended actions (packet sends, timer arms) which the world
//! applies after the callback returns. This keeps the borrow graph simple,
//! keeps nodes unit-testable without a world, and makes every effect of a
//! callback observable in tests.

use crate::packet::Packet;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use std::any::Any;

/// Index of a node within its world.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

/// Index of an interface within one node's interface list (assigned in
/// `connect` order).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct IfaceId(pub usize);

/// Index of a unidirectional link within the world.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub usize);

/// Identifies one armed timer for cancellation.
///
/// Handles are world-unique and allocated at arm time, so a node can store
/// the handle of its live timer chain and [`Context::cancel_timer`] the
/// stale one when re-arming — replacing the old "check state on fire"
/// lazy-cancellation idiom that let superseded timer events accumulate in
/// the queue. Cancelling a handle that already fired is a silent no-op
/// (the cancellation record is dropped lazily), but cancel only handles
/// you know to be pending — that keeps the world's cancellation set small.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct TimerHandle(pub(crate) u64);

impl TimerHandle {
    /// The raw handle value. Drivers outside this crate use it to advance
    /// their own monotone handle counters past what a callback allocated.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// An action a node requested during a callback.
#[derive(Debug)]
pub enum Action {
    /// Transmit `packet` out of interface `iface`.
    Send {
        /// Egress interface.
        iface: IfaceId,
        /// The packet to transmit.
        packet: Packet,
    },
    /// Fire [`Node::on_timer`] with `token` at time `at`.
    Timer {
        /// Absolute fire time.
        at: SimTime,
        /// Opaque token echoed back to the node.
        token: u64,
        /// Handle for cancellation (assigned at arm time).
        handle: TimerHandle,
    },
    /// Cancel a previously armed timer (including one armed earlier in the
    /// same callback).
    CancelTimer {
        /// The handle returned by the arm call.
        handle: TimerHandle,
    },
}

/// Execution context for one node callback.
///
/// Timers are one-shot; arming returns a [`TimerHandle`] that can be passed
/// to [`Context::cancel_timer`], so re-arming a guarded timer cancels the
/// stale chain instead of leaving it queued. The old lazy-cancellation
/// idiom (ignore stale fires by checking node state) still works — a
/// cancelled or superseded timer simply never reaches `on_timer`.
pub struct Context<'a> {
    now: SimTime,
    node: NodeId,
    rng: &'a mut SimRng,
    actions: &'a mut Vec<Action>,
    /// First handle value this callback may allocate (world-assigned;
    /// 0-based in world-less unit tests).
    handle_base: u64,
    /// Timers armed so far in this callback.
    timers_armed: u64,
    #[cfg(feature = "obs")]
    obs: Option<&'a mut crate::obs::WorldObs>,
}

impl<'a> Context<'a> {
    /// Builds a context; used by node unit tests (and by the world when the
    /// `obs` feature is off). Carries no observability handle — obs calls
    /// through such a context are no-ops.
    pub fn new(
        now: SimTime,
        node: NodeId,
        rng: &'a mut SimRng,
        actions: &'a mut Vec<Action>,
    ) -> Self {
        Context {
            now,
            node,
            rng,
            actions,
            handle_base: 0,
            timers_armed: 0,
            #[cfg(feature = "obs")]
            obs: None,
        }
    }

    /// Sets the first [`TimerHandle`] value this callback allocates. A
    /// driver (the world, or a live-socket host) passes its monotone handle
    /// counter here so handles are unique across the whole run; unit-test
    /// contexts keep the 0 default.
    pub fn set_handle_base(&mut self, base: u64) {
        self.handle_base = base;
    }

    /// Builds a context carrying the world's observability handle.
    #[cfg(feature = "obs")]
    pub fn with_obs(
        now: SimTime,
        node: NodeId,
        rng: &'a mut SimRng,
        actions: &'a mut Vec<Action>,
        obs: Option<&'a mut crate::obs::WorldObs>,
    ) -> Self {
        Context {
            now,
            node,
            rng,
            actions,
            handle_base: 0,
            timers_armed: 0,
            obs,
        }
    }

    /// The world's observability handle, when this callback runs inside a
    /// world built with the `obs` feature ([`Context::new`] contexts return
    /// `None`).
    #[cfg(feature = "obs")]
    pub fn obs(&mut self) -> Option<&mut crate::obs::WorldObs> {
        self.obs.as_deref_mut()
    }

    /// Adds one to a world-scoped counter (no-op without a world handle).
    #[cfg(feature = "obs")]
    pub fn obs_inc(&mut self, name: &'static str) {
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.metrics.inc(name);
        }
    }

    /// Adds `n` to a world-scoped counter (no-op without a world handle).
    #[cfg(feature = "obs")]
    pub fn obs_add(&mut self, name: &'static str, n: u64) {
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.metrics.add(name, n);
        }
    }

    /// Records `value` into a world-scoped histogram (no-op without a world
    /// handle).
    #[cfg(feature = "obs")]
    pub fn obs_observe(&mut self, name: &'static str, bounds: &[u64], value: u64) {
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.metrics.observe(name, bounds, value);
        }
    }

    /// Sets a world-scoped gauge to `value` (no-op without a world handle).
    #[cfg(feature = "obs")]
    pub fn obs_gauge(&mut self, name: &'static str, value: f64) {
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.metrics.gauge_set(name, value);
        }
    }

    /// Appends `event` to the world's trace, stamped with the current sim
    /// time (no-op without a world handle).
    #[cfg(feature = "obs")]
    pub fn obs_event(&mut self, event: sidecar_obs::Event) {
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.trace.record(self.now.as_nanos(), event);
        }
    }

    /// Records one unhealthy event for `flow` on the world's per-flow health
    /// scoreboard (no-op without a world handle). One lock-free atomic add
    /// on the packet path; the scoreboard ranks flows for `/flows` and the
    /// health proptests.
    #[cfg(feature = "obs")]
    pub fn obs_flow_health(&mut self, flow: u32, dim: sidecar_obs::HealthDim) {
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.scoreboard.record(flow, dim);
        }
    }

    /// Allocates the next world-scoped control-datagram sequence for
    /// flight-recorder stamping. Sequences start at 1 so a stamped control
    /// packet is distinguishable from the obs-off default of 0; without a
    /// world handle (unit tests) every call returns 0, matching the obs-off
    /// wire image.
    #[cfg(feature = "obs")]
    pub fn next_ctrl_seq(&mut self) -> u64 {
        match self.obs.as_deref_mut() {
            Some(obs) => {
                obs.ctrl_seq += 1;
                obs.ctrl_seq
            }
            None => 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node being called back (useful for logging in shared impls).
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Deterministic randomness.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Queues `packet` for transmission out of `iface`.
    pub fn send(&mut self, iface: IfaceId, packet: Packet) {
        self.actions.push(Action::Send { iface, packet });
    }

    /// Arms a one-shot timer at absolute time `at`, returning its handle
    /// for optional cancellation.
    pub fn set_timer_at(&mut self, at: SimTime, token: u64) -> TimerHandle {
        debug_assert!(at >= self.now, "timer in the past");
        let handle = TimerHandle(self.handle_base + self.timers_armed);
        self.timers_armed += 1;
        self.actions.push(Action::Timer { at, token, handle });
        handle
    }

    /// Arms a one-shot timer `delay` from now, returning its handle for
    /// optional cancellation.
    pub fn set_timer_after(&mut self, delay: SimDuration, token: u64) -> TimerHandle {
        self.set_timer_at(self.now + delay, token)
    }

    /// Cancels a pending timer by handle: the queued event is dropped at
    /// pop time and never reaches [`Node::on_timer`]. Cancelling a handle
    /// that already fired is a no-op.
    pub fn cancel_timer(&mut self, handle: TimerHandle) {
        self.actions.push(Action::CancelTimer { handle });
    }
}

/// A simulated network element: host, proxy, router, sink…
///
/// Implementations must be deterministic functions of (state, inputs, rng).
pub trait Node: Any {
    /// Called once when the simulation starts; arm initial timers and send
    /// initial packets here.
    fn on_start(&mut self, _ctx: &mut Context) {}

    /// A packet arrived on `iface`.
    fn on_packet(&mut self, iface: IfaceId, packet: Packet, ctx: &mut Context);

    /// A timer armed with `token` fired.
    fn on_timer(&mut self, _token: u64, _ctx: &mut Context) {}

    /// The node came back from a scripted crash
    /// (see [`crate::fault::FaultPlan`]). Volatile state should be reset
    /// here — a sidecar proxy wipes its quACK log and bumps its epoch. The
    /// default keeps all state (a plain forwarder survives reboots intact).
    ///
    /// Timers armed before the crash did *not* fire during the outage; ones
    /// scheduled past the restart still will, so stale-timer checks (the
    /// lazy-cancellation idiom) keep working unchanged.
    fn on_restart(&mut self, _ctx: &mut Context) {}

    /// Human-readable name for traces.
    fn name(&self) -> &str {
        "node"
    }

    /// Downcast support (stats extraction after a run).
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, Packet};

    struct Echoer {
        seen: usize,
    }

    impl Node for Echoer {
        fn on_packet(&mut self, iface: IfaceId, packet: Packet, ctx: &mut Context) {
            self.seen += 1;
            ctx.send(iface, packet);
            ctx.set_timer_after(SimDuration::from_millis(1), 7);
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn context_records_actions() {
        let mut rng = SimRng::new(1);
        let mut actions = Vec::new();
        let mut ctx = Context::new(SimTime::from_nanos(100), NodeId(3), &mut rng, &mut actions);
        assert_eq!(ctx.now(), SimTime::from_nanos(100));
        assert_eq!(ctx.node_id(), NodeId(3));

        let mut node = Echoer { seen: 0 };
        let pkt = Packet::data(FlowId(0), 1, 0xAB, 100, SimTime::ZERO);
        node.on_packet(IfaceId(0), pkt, &mut ctx);
        assert_eq!(node.seen, 1);
        assert_eq!(actions.len(), 2);
        assert!(matches!(
            actions[0],
            Action::Send {
                iface: IfaceId(0),
                ..
            }
        ));
        match actions[1] {
            Action::Timer { at, token, handle } => {
                assert_eq!(at, SimTime::from_nanos(100) + SimDuration::from_millis(1));
                assert_eq!(token, 7);
                assert_eq!(handle, TimerHandle(0));
            }
            _ => panic!("expected timer"),
        }
    }

    #[test]
    fn handles_are_distinct_and_cancel_records() {
        let mut rng = SimRng::new(1);
        let mut actions = Vec::new();
        let mut ctx = Context::new(SimTime::ZERO, NodeId(0), &mut rng, &mut actions);
        ctx.set_handle_base(41);
        let a = ctx.set_timer_after(SimDuration::from_millis(1), 1);
        let b = ctx.set_timer_after(SimDuration::from_millis(2), 1);
        assert_ne!(a, b);
        assert_eq!(a, TimerHandle(41));
        assert_eq!(b, TimerHandle(42));
        ctx.cancel_timer(a);
        assert!(matches!(
            actions[2],
            Action::CancelTimer { handle } if handle == a
        ));
    }
}
