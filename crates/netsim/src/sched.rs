//! Event-queue backends: the calendar-queue timer wheel and the legacy
//! binary heap it replaced.
//!
//! The world processes events in `(time, insertion sequence)` order — a
//! total order, since sequences are unique. Both backends implement exactly
//! that order, so a `(topology, seed)` pair replays bit-identically under
//! either; the scheduler-equivalence tests pin this with the heap as the
//! oracle.
//!
//! # Wheel layout
//!
//! The wheel is a single-level calendar queue: `NSLOTS` slots of
//! `SLOT_NS` nanoseconds each (2^14 × 2^13 ns ≈ 134 ms of horizon).
//! Event payloads live in a free-listed slab — the pool that makes
//! steady-state scheduling allocation-free — and each slot is an intrusive
//! singly-linked list threaded through the slab (a head index per slot, a
//! `next` index per node), so inserting anywhere in the horizon is O(1) and
//! touches no growable buffer: slot occupancy can migrate around the wheel
//! forever without a single per-slot `Vec` needing to learn its high-water
//! mark.
//!
//! * Events within the horizon link into `slots[(at >> SLOT_BITS) % NSLOTS]`
//!   (O(1) insert, no ordering work).
//! * Events in the *current* slot go to a small `due` vector kept sorted
//!   descending by `(at, seq)` (earliest at the back, popped O(1)): a slot
//!   spans 8.2 µs of nanosecond-resolution timestamps, so sub-slot order
//!   is restored per slot, not globally.
//! * Events past the horizon overflow into a plain binary heap (far-future
//!   fault edges, long supervision deadlines) and migrate into the wheel as
//!   the cursor approaches — the only O(log n) path, reserved for the rare
//!   far-out arm.
//!
//! Popping walks the current slot's list into `due` and sorts it once
//! (one branch-predictable `sort_unstable` over 24-byte `(time, seq, slab
//! index)` keys beats per-pop heap sifts, and the buffer is shared so its
//! capacity plateaus at the global max-slot-occupancy), then pops `due`
//! from the back until empty. Slot occupancy is a 16 Kbit bitmap so
//! cursor advances skip empty regions a word at a time.

use crate::time::SimTime;
use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::OnceLock;

/// log2 of the slot width in nanoseconds (2^13 ns ≈ 8.2 µs per slot).
const SLOT_BITS: u32 = 13;
/// log2 of the slot count (2^14 = 16384 slots ≈ 134 ms horizon).
const WHEEL_BITS: u32 = 14;
/// Number of wheel slots.
const NSLOTS: u64 = 1 << WHEEL_BITS;
/// Occupancy-bitmap words (64 slots per word).
const WORDS: usize = (NSLOTS / 64) as usize;

/// Which event-queue backend a [`crate::world::World`] runs on.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SchedulerKind {
    /// The calendar-queue timer wheel (default; O(1) amortized).
    Wheel,
    /// The legacy engine, preserved whole: binary-heap scheduling
    /// (O(log n) pops that move full event payloads) *and* the pre-wheel
    /// dispatch-loop behavior (fresh action buffer per dispatch,
    /// string-keyed per-event counter lookups). Event order, traces, and
    /// metric values are identical to [`SchedulerKind::Wheel`] — the
    /// equivalence suite pins that — so this mode serves as both the
    /// determinism oracle and the A/B baseline `exp_simscale` measures
    /// the modern engine against.
    Heap,
}

impl SchedulerKind {
    /// Parses `"wheel"` / `"heap"` (case-insensitive).
    pub fn parse(s: &str) -> Option<SchedulerKind> {
        if s.eq_ignore_ascii_case("wheel") {
            Some(SchedulerKind::Wheel)
        } else if s.eq_ignore_ascii_case("heap") {
            Some(SchedulerKind::Heap)
        } else {
            None
        }
    }
}

thread_local! {
    static THREAD_SCHED: Cell<Option<SchedulerKind>> = const { Cell::new(None) };
}

/// Overrides the scheduler used by [`crate::world::World::new`] on this
/// thread (`None` clears the override). Equivalence tests and benches use
/// this to run the same scenario code under both backends without plumbing
/// a knob through every scenario constructor.
pub fn set_thread_scheduler(kind: Option<SchedulerKind>) {
    THREAD_SCHED.with(|c| c.set(kind));
}

/// The scheduler [`crate::world::World::new`] will pick on this thread:
/// the thread override if set, else the `SIDECAR_SCHED` environment
/// variable (`wheel`/`heap`, read once per process), else the wheel.
pub fn thread_scheduler() -> SchedulerKind {
    if let Some(kind) = THREAD_SCHED.with(|c| c.get()) {
        return kind;
    }
    static ENV: OnceLock<SchedulerKind> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("SIDECAR_SCHED")
            .ok()
            .and_then(|v| SchedulerKind::parse(&v))
            .unwrap_or(SchedulerKind::Wheel)
    })
}

/// A 24-byte wheel entry: full ordering key plus the slab index of the
/// event payload.
#[derive(Copy, Clone, Debug)]
struct Entry {
    at: SimTime,
    seq: u64,
    idx: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed on purpose: sorting ascending under this Ord yields
        // descending `(at, seq)`, so the earliest event sits at the back
        // of the `due` vector and pops in O(1).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A heap entry carrying its payload inline — the legacy representation,
/// also used for wheel overflow.
struct HeapEntry<T> {
    at: SimTime,
    seq: u64,
    kind: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Sentinel slab index terminating a slot's intrusive list.
const NIL: u32 = u32::MAX;

/// A pooled event: its full ordering key, its payload, and the intrusive
/// link to the next event in the same slot (NIL when unlinked).
struct SlabNode<T> {
    at: SimTime,
    seq: u64,
    next: u32,
    kind: Option<T>,
}

/// The calendar-queue timer wheel (see the module docs for the layout).
pub(crate) struct WheelQueue<T> {
    /// Pooled event nodes; `free` recycles vacated cells.
    slab: Vec<SlabNode<T>>,
    free: Vec<u32>,
    /// Head slab index of each slot's intrusive list (NIL when empty).
    slots: Vec<u32>,
    /// Occupancy bitmap over the slots.
    words: [u64; WORDS],
    /// Absolute slot index of the cursor (`at >> SLOT_BITS` of the newest
    /// drained slot). Everything strictly below has been drained into
    /// `due` or delivered.
    cur_slot: u64,
    /// Events of the current slot, sorted descending by `(at, seq)` —
    /// earliest last, popped from the back.
    due: Vec<Entry>,
    /// Beyond-horizon events, ordered by `(at, seq)`, payload inline.
    overflow: BinaryHeap<HeapEntry<T>>,
    /// Entries resident in `slots` (excludes `due` and `overflow`).
    wheel_len: usize,
    /// Total events queued.
    len: usize,
}

impl<T> WheelQueue<T> {
    fn new() -> Self {
        WheelQueue {
            slab: Vec::new(),
            free: Vec::new(),
            slots: vec![NIL; NSLOTS as usize],
            words: [0; WORDS],
            cur_slot: 0,
            due: Vec::new(),
            overflow: BinaryHeap::new(),
            wheel_len: 0,
            len: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn alloc(&mut self, at: SimTime, seq: u64, kind: T) -> u32 {
        let node = SlabNode {
            at,
            seq,
            next: NIL,
            kind: Some(kind),
        };
        if let Some(idx) = self.free.pop() {
            self.slab[idx as usize] = node;
            idx
        } else {
            let idx = self.slab.len() as u32;
            self.slab.push(node);
            idx
        }
    }

    fn take(&mut self, idx: u32) -> T {
        let kind = self.slab[idx as usize]
            .kind
            .take()
            .expect("slab cell vacant");
        self.free.push(idx);
        kind
    }

    fn push(&mut self, at: SimTime, seq: u64, kind: T) {
        self.len += 1;
        let slot = at.tick(SLOT_BITS);
        if slot >= self.cur_slot + NSLOTS {
            self.overflow.push(HeapEntry { at, seq, kind });
        } else {
            self.insert_wheel(at, seq, kind);
        }
    }

    /// Places an in-horizon event into `due` (current slot) or its slot.
    fn insert_wheel(&mut self, at: SimTime, seq: u64, kind: T) {
        let slot = at.tick(SLOT_BITS);
        debug_assert!(slot >= self.cur_slot, "event behind the cursor");
        debug_assert!(slot < self.cur_slot + NSLOTS, "event past the horizon");
        let idx = self.alloc(at, seq, kind);
        if slot == self.cur_slot {
            // Keep the descending sort: find the insertion point (rare
            // path — only zero/sub-slot-delay events land here).
            let entry = Entry { at, seq, idx };
            let pos = self.due.partition_point(|e| *e < entry);
            self.due.insert(pos, entry);
        } else {
            let phys = (slot % NSLOTS) as usize;
            self.slab[idx as usize].next = self.slots[phys];
            self.slots[phys] = idx;
            self.words[phys >> 6] |= 1 << (phys & 63);
            self.wheel_len += 1;
        }
    }

    /// Moves every overflow event whose slot entered the horizon into the
    /// wheel (or `due`), preserving total order via the per-event key.
    fn migrate_overflow(&mut self) {
        while let Some(top) = self.overflow.peek() {
            if top.at.tick(SLOT_BITS) >= self.cur_slot + NSLOTS {
                break;
            }
            let e = self.overflow.pop().expect("peeked entry");
            self.insert_wheel(e.at, e.seq, e.kind);
        }
    }

    /// Physical index of the first occupied slot at/after `start`
    /// (circular). Caller guarantees at least one slot is occupied.
    fn find_occupied(&self, start: u64) -> u64 {
        let w0 = (start >> 6) as usize;
        let masked = self.words[w0] & (!0u64 << (start & 63));
        if masked != 0 {
            return ((w0 as u64) << 6) + masked.trailing_zeros() as u64;
        }
        for step in 1..=WORDS {
            let w = (w0 + step) % WORDS;
            if self.words[w] != 0 {
                return ((w as u64) << 6) + self.words[w].trailing_zeros() as u64;
            }
        }
        unreachable!("find_occupied on an empty wheel");
    }

    fn pop_due(&mut self, limit: Option<SimTime>) -> Option<(SimTime, T)> {
        loop {
            self.migrate_overflow();
            if let Some(head) = self.due.last() {
                if limit.is_some_and(|d| head.at > d) {
                    return None;
                }
                let e = self.due.pop().expect("checked entry");
                self.len -= 1;
                let kind = self.take(e.idx);
                return Some((e.at, kind));
            }
            if self.wheel_len == 0 {
                // Only beyond-horizon events remain (if any): jump the
                // cursor to the earliest one and let migration pull it in.
                let top_at = self.overflow.peek().map(|e| e.at)?;
                if limit.is_some_and(|d| top_at > d) {
                    return None;
                }
                self.cur_slot = top_at.tick(SLOT_BITS);
                continue;
            }
            // Advance the cursor to the next occupied slot and drain it.
            let start = (self.cur_slot + 1) % NSLOTS;
            let phys = self.find_occupied(start);
            let slot = self.cur_slot + 1 + (phys + NSLOTS - start) % NSLOTS;
            if limit.is_some_and(|d| slot << SLOT_BITS > d.as_nanos()) {
                // Everything left fires past the limit; leave state as-is.
                return None;
            }
            self.cur_slot = slot;
            let phys = phys as usize;
            self.words[phys >> 6] &= !(1 << (phys & 63));
            // Walk the slot's list into the (empty) due buffer and sort it
            // once. The buffer is the wheel's only growable hot-path
            // storage; its capacity plateaus at the max slot occupancy.
            debug_assert!(self.due.is_empty());
            let mut head = std::mem::replace(&mut self.slots[phys], NIL);
            while head != NIL {
                let node = &mut self.slab[head as usize];
                self.due.push(Entry {
                    at: node.at,
                    seq: node.seq,
                    idx: head,
                });
                head = std::mem::replace(&mut node.next, NIL);
            }
            self.wheel_len -= self.due.len();
            // Entry's Ord is reversed, so ascending sort = earliest last.
            self.due.sort_unstable();
        }
    }
}

/// The legacy scheduler: one binary heap of `(time, seq, payload)` events.
pub(crate) struct HeapQueue<T> {
    heap: BinaryHeap<HeapEntry<T>>,
}

impl<T> HeapQueue<T> {
    fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
        }
    }

    fn push(&mut self, at: SimTime, seq: u64, kind: T) {
        self.heap.push(HeapEntry { at, seq, kind });
    }

    fn pop_due(&mut self, limit: Option<SimTime>) -> Option<(SimTime, T)> {
        if limit.is_some_and(|d| self.heap.peek().is_none_or(|e| e.at > d)) {
            return None;
        }
        self.heap.pop().map(|e| (e.at, e.kind))
    }
}

/// The world's event queue: one of the two backends behind a common API.
///
/// The size skew is deliberate: the wheel variant carries its occupancy
/// bitmap inline (2 KiB) so cursor scans stay pointer-chase-free, and
/// there is exactly one `EventQueue` per `World` — never a collection of
/// them — so boxing the large variant would buy nothing and cost an
/// indirection on every scheduler call.
#[allow(clippy::large_enum_variant)]
pub(crate) enum EventQueue<T> {
    Wheel(WheelQueue<T>),
    Heap(HeapQueue<T>),
}

impl<T> EventQueue<T> {
    pub(crate) fn new(kind: SchedulerKind) -> Self {
        match kind {
            SchedulerKind::Wheel => EventQueue::Wheel(WheelQueue::new()),
            SchedulerKind::Heap => EventQueue::Heap(HeapQueue::new()),
        }
    }

    pub(crate) fn kind(&self) -> SchedulerKind {
        match self {
            EventQueue::Wheel(_) => SchedulerKind::Wheel,
            EventQueue::Heap(_) => SchedulerKind::Heap,
        }
    }

    /// Queues `kind` at `(at, seq)`. `seq` must be unique and increasing
    /// across pushes (the world's event sequence).
    pub(crate) fn push(&mut self, at: SimTime, seq: u64, kind: T) {
        match self {
            EventQueue::Wheel(q) => q.push(at, seq, kind),
            EventQueue::Heap(q) => q.push(at, seq, kind),
        }
    }

    /// Pops the earliest event by `(at, seq)`; with `limit`, only if it
    /// fires at or before the limit.
    pub(crate) fn pop_due(&mut self, limit: Option<SimTime>) -> Option<(SimTime, T)> {
        match self {
            EventQueue::Wheel(q) => q.pop_due(limit),
            EventQueue::Heap(q) => q.pop_due(limit),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            EventQueue::Wheel(q) => q.len(),
            EventQueue::Heap(q) => q.heap.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use crate::time::SimDuration;

    fn drain<T>(q: &mut EventQueue<T>) -> Vec<(SimTime, T)> {
        let mut out = Vec::new();
        while let Some(ev) = q.pop_due(None) {
            out.push(ev);
        }
        out
    }

    #[test]
    fn fifo_tie_break_at_equal_times() {
        for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            let mut q = EventQueue::new(kind);
            let t = SimTime::from_nanos(5_000);
            for seq in 0..100u64 {
                q.push(t, seq, seq);
            }
            let got: Vec<u64> = drain(&mut q).into_iter().map(|(_, v)| v).collect();
            assert_eq!(got, (0..100).collect::<Vec<_>>(), "{kind:?}");
        }
    }

    #[test]
    fn wheel_matches_heap_on_random_workloads() {
        // Interleaved pushes and pops with times spanning sub-slot gaps,
        // multi-slot gaps, and beyond-horizon jumps (overflow path).
        for seed in 0..8u64 {
            let mut rng = SimRng::new(seed);
            let mut ops = Vec::new();
            let mut t = 0u64;
            for seq in 0..4_000u64 {
                t += match rng.below(4) {
                    0 => rng.below(1 << 10), // same slot
                    1 => rng.below(1 << 16), // nearby slots
                    2 => rng.below(1 << 24), // far slots
                    _ => rng.below(1 << 29), // often past horizon
                };
                // Schedule relative to a base that trails the pops.
                ops.push((t, seq, rng.below(3) == 0));
            }
            let run = |kind: SchedulerKind| {
                let mut q = EventQueue::new(kind);
                let mut out = Vec::new();
                let mut floor = 0u64; // delivered events never precede this
                for &(at, seq, pop_now) in &ops {
                    q.push(SimTime::from_nanos(floor + at), seq, seq);
                    if pop_now {
                        if let Some((at, v)) = q.pop_due(None) {
                            out.push((at, v));
                            floor = floor.max(at.as_nanos());
                        }
                    }
                }
                while let Some(ev) = q.pop_due(None) {
                    out.push(ev);
                }
                out
            };
            assert_eq!(
                run(SchedulerKind::Wheel),
                run(SchedulerKind::Heap),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn pop_due_respects_limit() {
        for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            let mut q = EventQueue::new(kind);
            q.push(SimTime::from_nanos(10), 0, "a");
            q.push(SimTime::from_nanos(20_000_000), 1, "b"); // later slot
            q.push(
                SimTime::ZERO + SimDuration::from_secs(10), // overflow
                2,
                "c",
            );
            let lim = Some(SimTime::from_nanos(100));
            assert_eq!(q.pop_due(lim), Some((SimTime::from_nanos(10), "a")));
            assert_eq!(q.pop_due(lim), None);
            assert_eq!(q.pop_due(lim), None, "limit check must not consume");
            assert_eq!(
                q.pop_due(None),
                Some((SimTime::from_nanos(20_000_000), "b"))
            );
            assert_eq!(
                q.pop_due(None),
                Some((SimTime::ZERO + SimDuration::from_secs(10), "c"))
            );
            assert_eq!(q.pop_due(None), None);
            assert_eq!(q.len(), 0);
        }
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        let mut q = EventQueue::new(SchedulerKind::Wheel);
        // 10 s apart: every event lives in overflow until the cursor jumps.
        for i in 0..20u64 {
            q.push(SimTime::ZERO + SimDuration::from_secs(10 * (20 - i)), i, i);
        }
        let got: Vec<u64> = drain(&mut q).into_iter().map(|(_, v)| v).collect();
        assert_eq!(got, (0..20u64).rev().collect::<Vec<_>>());
    }

    #[test]
    fn env_parse() {
        assert_eq!(SchedulerKind::parse("wheel"), Some(SchedulerKind::Wheel));
        assert_eq!(SchedulerKind::parse("HEAP"), Some(SchedulerKind::Heap));
        assert_eq!(SchedulerKind::parse("calendar"), None);
    }

    #[test]
    fn thread_override_wins() {
        set_thread_scheduler(Some(SchedulerKind::Heap));
        assert_eq!(thread_scheduler(), SchedulerKind::Heap);
        set_thread_scheduler(None);
        // Default (no SIDECAR_SCHED in the test environment) is the wheel.
    }
}
