//! Driver-clocked time-series sampling (feature `obs`).
//!
//! [`run_sampled`] is the deterministic twin of the live proxy's wall-clock
//! sampler thread: it advances any [`Driver`] to a deadline in fixed
//! `interval` steps, snapshotting a [`sidecar_obs::MetricsRegistry`]
//! into a [`sidecar_obs::Sampler`] at each tick. Because
//! `Driver::run_until` clamps the clock to the requested deadline (dispatch
//! rule: monotone clock), the ticks land at *exactly* `start + k·interval`
//! on the shared nanosecond axis — so two runs of the same seeded world
//! produce byte-identical `TimeSeries::render()` output, which is what the
//! golden time-series fixture asserts.
//!
//! The contract mirrors the live sampler deliberately:
//!
//! * the sampler is primed at the start time (no point emitted — rates need
//!   a window);
//! * one [`SamplePoint`](sidecar_obs::SamplePoint) per whole interval;
//! * a trailing partial window (when `deadline - start` is not a multiple
//!   of `interval`) is simulated but **not** sampled — partial windows
//!   would skew rates and break cross-run comparability;
//! * sampling stops at the first tick that finds the driver idle (no
//!   queued events or pending timers) — the remaining windows would be
//!   all-zero rates, and skipping them keeps sampling cost proportional
//!   to activity rather than horizon. The driver still runs to the
//!   deadline afterwards.

use crate::driver::Driver;
use crate::time::{SimDuration, SimTime};
use sidecar_obs::{MetricsRegistry, Sampler};

/// Runs `driver` until `deadline`, sampling `registry` into `sampler` every
/// `interval` (see the module docs for the exact tick contract). Returns
/// the driver's clock, which is `deadline` for the simulator.
///
/// The registry is passed as a handle rather than read through the driver
/// so the same loop serves worlds (whose registry lives in `WorldObs`) and
/// live drivers (whose registry is `Clone`-shared with reader threads).
///
/// # Panics
///
/// Panics if `interval` is zero — a zero window has no rate.
pub fn run_sampled(
    driver: &mut dyn Driver,
    registry: &MetricsRegistry,
    deadline: SimTime,
    interval: SimDuration,
    sampler: &mut Sampler,
) -> SimTime {
    assert!(
        interval > SimDuration::ZERO,
        "run_sampled: sampling interval must be non-zero"
    );
    let start = driver.now();
    // Prime the delta baseline at the start of the first window. If the
    // caller reuses a sampler across calls this is a non-advancing sample
    // and is ignored, preserving the earlier baseline.
    sampler.sample(start.as_nanos(), registry.snapshot());
    let mut tick = start + interval;
    while tick <= deadline {
        driver.run_until(tick);
        sampler.sample(tick.as_nanos(), registry.snapshot());
        // Once the world has drained (no queued events, no pending
        // timers), every further window would be all-zero rates; the
        // sample just taken closed the last active window. Stopping here
        // keeps sampling cost proportional to *activity*, not horizon,
        // and idleness is deterministic in the simulator so golden runs
        // stay byte-stable.
        if driver.is_idle() {
            break;
        }
        tick += interval;
    }
    if driver.now() < deadline {
        driver.run_until(deadline);
    }
    driver.now()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::node::{Context, IfaceId, Node};
    use crate::packet::{FlowId, Packet};
    use crate::world::World;

    /// Emits one data packet per `period` until `total` are sent, bumping a
    /// world counter per send — a deterministic rate source.
    struct Ticker {
        period: SimDuration,
        total: u64,
        sent: u64,
    }

    impl Node for Ticker {
        fn name(&self) -> &str {
            "ticker"
        }

        fn on_start(&mut self, ctx: &mut Context) {
            ctx.set_timer_after(self.period, 1);
        }

        fn on_packet(&mut self, _iface: IfaceId, _packet: Packet, _ctx: &mut Context) {}

        fn on_timer(&mut self, _token: u64, ctx: &mut Context) {
            self.sent += 1;
            ctx.obs_inc("telemetry.test.sent");
            ctx.obs_gauge("telemetry.test.inflight", self.sent as f64);
            let pkt = Packet::data(FlowId(1), self.sent, self.sent, 1200, ctx.now());
            ctx.send(IfaceId(0), pkt);
            if self.sent < self.total {
                ctx.set_timer_after(self.period, 1);
            }
        }

        fn as_any(&self) -> &dyn std::any::Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    struct Sink;

    impl Node for Sink {
        fn name(&self) -> &str {
            "sink"
        }

        fn on_packet(&mut self, _iface: IfaceId, _packet: Packet, _ctx: &mut Context) {}

        fn as_any(&self) -> &dyn std::any::Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn ticker_world(seed: u64) -> World {
        let mut w = World::new(seed);
        let t = w.add_node(Box::new(Ticker {
            period: SimDuration::from_millis(10),
            total: 400,
            sent: 0,
        }));
        let s = w.add_node(Box::new(Sink));
        w.connect(t, s, LinkConfig::default(), LinkConfig::default());
        w
    }

    fn sample_run(seed: u64) -> String {
        let mut w = ticker_world(seed);
        let registry = w.obs().metrics.clone();
        let mut sampler = Sampler::with_capacity(64);
        let end = run_sampled(
            &mut w,
            &registry,
            SimTime::ZERO + SimDuration::from_secs(2),
            SimDuration::from_millis(500),
            &mut sampler,
        );
        assert_eq!(end, SimTime::ZERO + SimDuration::from_secs(2));
        sampler.series().render()
    }

    #[test]
    fn samples_land_on_exact_ticks() {
        let mut w = ticker_world(7);
        let registry = w.obs().metrics.clone();
        let mut sampler = Sampler::with_capacity(64);
        run_sampled(
            &mut w,
            &registry,
            SimTime::ZERO + SimDuration::from_secs(2),
            SimDuration::from_millis(500),
            &mut sampler,
        );
        let points: Vec<_> = sampler.series().points().collect();
        // Priming sample emits nothing; 4 whole windows follow.
        assert_eq!(points.len(), 4);
        for (k, p) in points.iter().enumerate() {
            assert_eq!(p.at_ns, (k as u64 + 1) * 500_000_000);
        }
        // The ticker sends every 10 ms, so each 500 ms window holds 50
        // sends: a steady 100/s rate.
        for p in &points {
            let rate = p
                .rates
                .iter()
                .find(|(n, _)| n == "telemetry.test.sent")
                .map(|(_, r)| *r)
                .expect("sent rate present");
            assert!((rate - 100.0).abs() < 1e-9, "rate {rate}");
        }
    }

    #[test]
    fn partial_trailing_window_is_run_but_not_sampled() {
        let mut w = ticker_world(7);
        let registry = w.obs().metrics.clone();
        let mut sampler = Sampler::with_capacity(64);
        // 1.25 s deadline with a 500 ms interval: windows close at 0.5 s
        // and 1.0 s; the last 250 ms are simulated but unsampled.
        let end = run_sampled(
            &mut w,
            &registry,
            SimTime::ZERO + SimDuration::from_millis(1250),
            SimDuration::from_millis(500),
            &mut sampler,
        );
        assert_eq!(end.as_nanos(), 1_250_000_000);
        let points: Vec<_> = sampler.series().points().collect();
        assert_eq!(points.len(), 2);
        assert_eq!(points[1].at_ns, 1_000_000_000);
    }

    #[test]
    fn sampled_runs_are_byte_stable() {
        let a = sample_run(42);
        let b = sample_run(42);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn sampler_baseline_survives_chained_calls() {
        let mut w = ticker_world(7);
        let registry = w.obs().metrics.clone();
        let mut sampler = Sampler::with_capacity(64);
        // Two half-runs must equal one whole run: the second call's priming
        // sample is non-advancing and must not reset the delta baseline.
        run_sampled(
            &mut w,
            &registry,
            SimTime::ZERO + SimDuration::from_secs(1),
            SimDuration::from_millis(500),
            &mut sampler,
        );
        run_sampled(
            &mut w,
            &registry,
            SimTime::ZERO + SimDuration::from_secs(2),
            SimDuration::from_millis(500),
            &mut sampler,
        );
        assert_eq!(sampler.series().render(), sample_run(7));
    }

    #[test]
    fn sampling_stops_when_the_world_drains() {
        let mut w = World::new(7);
        // 50 sends over 0.5 s, then nothing: the world drains early.
        let t = w.add_node(Box::new(Ticker {
            period: SimDuration::from_millis(10),
            total: 50,
            sent: 0,
        }));
        let s = w.add_node(Box::new(Sink));
        w.connect(t, s, LinkConfig::default(), LinkConfig::default());
        let registry = w.obs().metrics.clone();
        let mut sampler = Sampler::with_capacity(64);
        let end = run_sampled(
            &mut w,
            &registry,
            SimTime::ZERO + SimDuration::from_secs(10),
            SimDuration::from_millis(500),
            &mut sampler,
        );
        // The driver still reaches the deadline…
        assert_eq!(end, SimTime::ZERO + SimDuration::from_secs(10));
        // …but sampling stopped at the first all-idle tick: the 0.5 s
        // window holds the sends, the 1.0 s window the trailing delivery,
        // and none of the remaining 18 all-zero windows are recorded.
        let points: Vec<_> = sampler.series().points().collect();
        assert_eq!(points.len(), 2);
        assert_eq!(points[1].at_ns, 1_000_000_000);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_interval_panics() {
        let mut w = ticker_world(7);
        let registry = w.obs().metrics.clone();
        let mut sampler = Sampler::with_capacity(4);
        run_sampled(
            &mut w,
            &registry,
            SimTime::ZERO + SimDuration::from_secs(1),
            SimDuration::ZERO,
            &mut sampler,
        );
    }
}
