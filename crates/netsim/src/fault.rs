//! Deterministic fault injection: scripted crashes, blackouts, and
//! control-channel mangling.
//!
//! The paper's core claim for sidecar protocols over classic PEPs is
//! failure transparency: the end-to-end connection "must be unaffected if
//! the sidecar fails" (§2). To test that claim, a [`FaultPlan`] schedules
//! faults at exact [`SimTime`]s before a run starts:
//!
//! * **node outages** — a node goes fully dark for a window: arrivals are
//!   dropped, timers firing during the window are discarded, and on the
//!   restart edge [`crate::node::Node::on_restart`] runs so the node can
//!   reset volatile state (a sidecar proxy wipes its quACK log and bumps
//!   its epoch; a plain forwarder does nothing);
//! * **link blackouts** — a link (or every link between a node pair)
//!   silently eats everything offered during a window;
//! * **control faults** — packets of [`PacketKind::Sidecar`] are dropped,
//!   duplicated, delayed, or byte-corrupted during a window, leaving the
//!   opaque end-to-end data path untouched — the paper's "sidecar path
//!   broken, base path fine" scenario.
//!
//! All corruption randomness comes from a dedicated generator seeded by
//! [`FaultPlan::seed`], independent of the world's own stream, so the same
//! `(topology, world seed, plan)` triple reproduces a run byte-for-byte —
//! the repo's determinism invariant extends through the fault layer.
//!
//! Windows are half-open `[from, until)`. Plans are installed with
//! [`crate::world::World::install_faults`] before the first event runs.

use crate::node::{LinkId, NodeId};
use crate::packet::PacketKind;
use crate::time::{SimDuration, SimTime};

/// A node outage: down at `from`, restarted at `until` (or never).
#[derive(Clone, Debug)]
pub struct Outage {
    /// The node to take down.
    pub node: NodeId,
    /// When it crashes.
    pub from: SimTime,
    /// When it restarts (`None` = stays down for the rest of the run).
    pub until: Option<SimTime>,
}

impl Outage {
    /// The schedulable edges of this outage as `(time, up)` pairs: the
    /// crash, then the restart if one is scripted. The world feeds these
    /// through its ordinary event queue, so fault edges obey the same
    /// `(time, seq)` total order as every other event.
    pub fn edges(&self) -> impl Iterator<Item = (SimTime, bool)> + '_ {
        std::iter::once((self.from, false)).chain(self.until.map(|at| (at, true)))
    }
}

/// Which link(s) a blackout applies to.
#[derive(Clone, Debug)]
pub enum LinkTarget {
    /// One unidirectional link.
    Link(LinkId),
    /// Every link directly connecting the two nodes, both directions.
    Between(NodeId, NodeId),
}

/// A link blackout window: everything offered is silently dropped.
#[derive(Clone, Debug)]
pub struct Blackout {
    /// The affected link(s).
    pub target: LinkTarget,
    /// Window start.
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

/// What to do to a matching control packet.
#[derive(Clone, Debug)]
pub enum ControlAction {
    /// Drop it.
    Drop,
    /// Deliver it twice (two independent link offers, so each copy draws
    /// its own loss/queue fate).
    Duplicate,
    /// Deliver it late by the given extra delay.
    Delay(SimDuration),
    /// Flip up to `max_flips` random bits of the serialized body (at least
    /// one) before delivery. Tests the receiver's wire-decode robustness.
    Corrupt {
        /// Upper bound on flipped bits per packet.
        max_flips: u32,
    },
    /// Active adversary: inject a forged sidecar datagram alongside every
    /// matched packet. The original is delivered untouched; a second,
    /// attacker-crafted packet with the given `(proto, body)` rides the
    /// same link. The adversary is on-path (it sees traffic timing) but
    /// does not hold the endpoints' keys — an authenticated receiver must
    /// reject the forgery.
    Forge {
        /// Protocol byte (wire tag) of the forged datagram.
        proto: u8,
        /// Pre-crafted forged body bytes.
        body: Vec<u8>,
    },
    /// Active adversary: replay each captured datagram. The original is
    /// delivered, then `copies` byte-exact duplicates are offered onto the
    /// same link after `delay` each — a replay-protected receiver accepts
    /// the first and rejects every copy.
    Replay {
        /// Number of replayed copies per captured datagram.
        copies: u32,
        /// Extra delay before each replayed copy.
        delay: SimDuration,
    },
    /// Active adversary: deliver the original *and* one bit-flipped copy
    /// (unlike [`ControlAction::Corrupt`], which mangles in place). The
    /// tampered copy must fail MAC verification at an authenticated
    /// receiver while the untouched original keeps the protocol running.
    Tamper {
        /// Upper bound on flipped bits in the tampered copy.
        max_flips: u32,
    },
}

/// One scripted rule against [`PacketKind::Sidecar`] traffic.
///
/// During `[from, until)` the action applies to every sidecar packet
/// transmitted by `source` (or by anyone, when `source` is `None`). Rules
/// are evaluated in plan order; the first match wins.
#[derive(Clone, Debug)]
pub struct ControlFault {
    /// The mangling to apply.
    pub action: ControlAction,
    /// Window start.
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Restrict to packets transmitted by this node (`None` = any).
    pub source: Option<NodeId>,
}

/// A stateful-firewall rule against sidecar control flows.
///
/// Middleboxes routinely time out idle UDP "connections" (see "A QUIC(K)
/// Way Through Your Firewall?"): once a control flow has been quiet for
/// `idle`, its *next* datagram is eaten while the firewall re-establishes
/// state — the packet after that passes. Sparse control traffic (hello
/// retries on a capped backoff) keeps losing its first packet after every
/// quiet period; a dense quACK stream never goes idle and sails through.
#[derive(Clone, Debug)]
pub struct FirewallRule {
    /// Idle gap after which a control flow's state is evicted.
    pub idle: SimDuration,
    /// Window start.
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

/// A complete, seeded fault script for one run.
///
/// Build with the chained helpers, then hand to
/// [`crate::world::World::install_faults`]:
///
/// ```
/// use sidecar_netsim::fault::FaultPlan;
/// use sidecar_netsim::node::NodeId;
/// use sidecar_netsim::time::{SimDuration, SimTime};
///
/// let plan = FaultPlan::new(42)
///     .crash_restart(
///         NodeId(1),
///         SimTime::from_nanos(2_000_000_000),
///         SimTime::from_nanos(4_000_000_000),
///     )
///     .corrupt_control(8, SimTime::from_nanos(5_000_000_000), SimTime::from_nanos(6_000_000_000));
/// assert!(!plan.is_empty());
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed for the dedicated corruption RNG (independent of the world's).
    pub seed: u64,
    /// Scheduled node outages.
    pub outages: Vec<Outage>,
    /// Scheduled link blackouts.
    pub blackouts: Vec<Blackout>,
    /// Scheduled control-channel rules (first match wins).
    pub control: Vec<ControlFault>,
    /// Scheduled stateful-firewall rules (first match wins).
    pub firewall: Vec<FirewallRule>,
}

impl FaultPlan {
    /// An empty plan with the given corruption seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
            && self.blackouts.is_empty()
            && self.control.is_empty()
            && self.firewall.is_empty()
    }

    /// Crash `node` at `from` and restart it at `until`.
    pub fn crash_restart(mut self, node: NodeId, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "outage window is empty");
        self.outages.push(Outage {
            node,
            from,
            until: Some(until),
        });
        self
    }

    /// Crash `node` at `from` with no restart.
    pub fn kill(mut self, node: NodeId, from: SimTime) -> Self {
        self.outages.push(Outage {
            node,
            from,
            until: None,
        });
        self
    }

    /// Black out every link between `a` and `b` (both directions) during
    /// `[from, until)`.
    pub fn blackout_between(mut self, a: NodeId, b: NodeId, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "blackout window is empty");
        self.blackouts.push(Blackout {
            target: LinkTarget::Between(a, b),
            from,
            until,
        });
        self
    }

    /// Black out one unidirectional link during `[from, until)`.
    pub fn blackout_link(mut self, link: LinkId, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "blackout window is empty");
        self.blackouts.push(Blackout {
            target: LinkTarget::Link(link),
            from,
            until,
        });
        self
    }

    /// Drop all sidecar control packets during `[from, until)`.
    pub fn drop_control(self, from: SimTime, until: SimTime) -> Self {
        self.control_rule(ControlAction::Drop, from, until, None)
    }

    /// Drop sidecar control packets transmitted by `source`.
    pub fn drop_control_from(self, source: NodeId, from: SimTime, until: SimTime) -> Self {
        self.control_rule(ControlAction::Drop, from, until, Some(source))
    }

    /// Duplicate all sidecar control packets during `[from, until)`.
    pub fn duplicate_control(self, from: SimTime, until: SimTime) -> Self {
        self.control_rule(ControlAction::Duplicate, from, until, None)
    }

    /// Delay all sidecar control packets by `extra` during `[from, until)`.
    pub fn delay_control(self, extra: SimDuration, from: SimTime, until: SimTime) -> Self {
        self.control_rule(ControlAction::Delay(extra), from, until, None)
    }

    /// Corrupt all sidecar control packets (≤ `max_flips` bit flips each)
    /// during `[from, until)`.
    pub fn corrupt_control(self, max_flips: u32, from: SimTime, until: SimTime) -> Self {
        assert!(max_flips > 0, "corruption needs at least one bit flip");
        self.control_rule(ControlAction::Corrupt { max_flips }, from, until, None)
    }

    /// Inject a forged `(proto, body)` datagram alongside every sidecar
    /// control packet during `[from, until)`.
    pub fn forge_control(self, proto: u8, body: Vec<u8>, from: SimTime, until: SimTime) -> Self {
        self.control_rule(ControlAction::Forge { proto, body }, from, until, None)
    }

    /// Replay every sidecar control packet `copies` times, each after an
    /// extra `delay`, during `[from, until)`.
    pub fn replay_control(
        self,
        copies: u32,
        delay: SimDuration,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        assert!(copies > 0, "replay needs at least one copy");
        self.control_rule(ControlAction::Replay { copies, delay }, from, until, None)
    }

    /// Deliver a bit-flipped copy (≤ `max_flips` flips) next to every
    /// sidecar control packet during `[from, until)`.
    pub fn tamper_control(self, max_flips: u32, from: SimTime, until: SimTime) -> Self {
        assert!(max_flips > 0, "tampering needs at least one bit flip");
        self.control_rule(ControlAction::Tamper { max_flips }, from, until, None)
    }

    /// Add a stateful-firewall rule: during `[from, until)`, a sidecar
    /// control flow that has been idle longer than `idle` loses its next
    /// datagram (state re-established afterwards).
    pub fn firewall_control(mut self, idle: SimDuration, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "firewall window is empty");
        assert!(
            idle > SimDuration::ZERO,
            "firewall idle timeout must be positive"
        );
        self.firewall.push(FirewallRule { idle, from, until });
        self
    }

    fn control_rule(
        mut self,
        action: ControlAction,
        from: SimTime,
        until: SimTime,
        source: Option<NodeId>,
    ) -> Self {
        assert!(from < until, "control-fault window is empty");
        self.control.push(ControlFault {
            action,
            from,
            until,
            source,
        });
        self
    }

    /// The first control rule matching a sidecar packet transmitted by
    /// `source` at `now`, if any. `kind` filters non-sidecar traffic out so
    /// callers can pass every packet through.
    pub fn match_control(
        &self,
        kind: PacketKind,
        source: NodeId,
        now: SimTime,
    ) -> Option<&ControlAction> {
        if kind != PacketKind::Sidecar {
            return None;
        }
        self.control
            .iter()
            .find(|rule| {
                rule.from <= now && now < rule.until && rule.source.is_none_or(|s| s == source)
            })
            .map(|rule| &rule.action)
    }

    /// The idle timeout of the first firewall rule active at `now` for
    /// sidecar traffic, if any.
    pub fn match_firewall(&self, kind: PacketKind, now: SimTime) -> Option<SimDuration> {
        if kind != PacketKind::Sidecar {
            return None;
        }
        self.firewall
            .iter()
            .find(|rule| rule.from <= now && now < rule.until)
            .map(|rule| rule.idle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_rules() {
        let t = SimTime::from_nanos;
        let plan = FaultPlan::new(7)
            .crash_restart(NodeId(1), t(100), t(200))
            .kill(NodeId(2), t(300))
            .blackout_between(NodeId(0), NodeId(1), t(10), t(20))
            .blackout_link(LinkId(3), t(30), t(40))
            .drop_control(t(0), t(50))
            .duplicate_control(t(50), t(60))
            .delay_control(SimDuration::from_millis(5), t(60), t(70))
            .corrupt_control(4, t(70), t(80))
            .forge_control(3, vec![0, 0, 0, 9], t(80), t(90))
            .replay_control(2, SimDuration::from_millis(1), t(90), t(100))
            .tamper_control(4, t(100), t(110))
            .firewall_control(SimDuration::from_millis(200), t(110), t(120));
        assert_eq!(plan.outages.len(), 2);
        assert_eq!(plan.blackouts.len(), 2);
        assert_eq!(plan.control.len(), 7);
        assert_eq!(plan.firewall.len(), 1);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new(7).is_empty());
    }

    #[test]
    fn adversary_actions_match_in_their_windows() {
        let t = SimTime::from_nanos;
        let plan = FaultPlan::new(0)
            .forge_control(1, vec![0xAA; 8], t(0), t(100))
            .replay_control(3, SimDuration::from_millis(2), t(100), t(200))
            .tamper_control(8, t(200), t(300));
        assert!(matches!(
            plan.match_control(PacketKind::Sidecar, NodeId(1), t(50)),
            Some(ControlAction::Forge { proto: 1, .. })
        ));
        assert!(matches!(
            plan.match_control(PacketKind::Sidecar, NodeId(1), t(150)),
            Some(ControlAction::Replay { copies: 3, .. })
        ));
        assert!(matches!(
            plan.match_control(PacketKind::Sidecar, NodeId(1), t(250)),
            Some(ControlAction::Tamper { max_flips: 8 })
        ));
        assert!(plan
            .match_control(PacketKind::Data, NodeId(1), t(50))
            .is_none());
    }

    #[test]
    fn firewall_matching_respects_window_and_kind() {
        let t = SimTime::from_nanos;
        let plan = FaultPlan::new(0).firewall_control(SimDuration::from_millis(100), t(10), t(20));
        assert_eq!(
            plan.match_firewall(PacketKind::Sidecar, t(15)),
            Some(SimDuration::from_millis(100))
        );
        assert!(plan.match_firewall(PacketKind::Data, t(15)).is_none());
        assert!(plan.match_firewall(PacketKind::Sidecar, t(9)).is_none());
        assert!(plan.match_firewall(PacketKind::Sidecar, t(20)).is_none());
    }

    #[test]
    fn control_matching_respects_window_kind_and_source() {
        let t = SimTime::from_nanos;
        let plan = FaultPlan::new(0)
            .drop_control_from(NodeId(5), t(100), t(200))
            .duplicate_control(t(100), t(200));
        // Non-sidecar traffic is never matched.
        assert!(plan
            .match_control(PacketKind::Data, NodeId(5), t(150))
            .is_none());
        // First match wins: node 5 hits the drop rule, others the duplicate.
        assert!(matches!(
            plan.match_control(PacketKind::Sidecar, NodeId(5), t(150)),
            Some(ControlAction::Drop)
        ));
        assert!(matches!(
            plan.match_control(PacketKind::Sidecar, NodeId(6), t(150)),
            Some(ControlAction::Duplicate)
        ));
        // Half-open window: start inclusive, end exclusive.
        assert!(plan
            .match_control(PacketKind::Sidecar, NodeId(6), t(99))
            .is_none());
        assert!(plan
            .match_control(PacketKind::Sidecar, NodeId(6), t(100))
            .is_some());
        assert!(plan
            .match_control(PacketKind::Sidecar, NodeId(6), t(200))
            .is_none());
    }

    #[test]
    #[should_panic(expected = "window is empty")]
    fn empty_window_rejected() {
        let t = SimTime::from_nanos;
        let _ = FaultPlan::new(0).drop_control(t(100), t(100));
    }
}
