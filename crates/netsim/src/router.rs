//! A multi-interface router with per-flow static routes.
//!
//! [`crate::Forwarder`] handles the two-interface line topologies the
//! sidecar protocols live on; `FlowRouter` generalizes to fan-in/fan-out
//! topologies (several flows sharing a bottleneck, multipath splits) so
//! experiments can study sharing and fairness. Like every in-network
//! element here it never inspects payloads — routes are keyed only on the
//! (simulator-level) flow id and ingress interface.

use crate::node::{Context, IfaceId, Node};
use crate::packet::{FlowId, Packet};
use std::any::Any;
use std::collections::HashMap;

/// A static-routing node: `(flow, ingress interface) → egress interface`.
pub struct FlowRouter {
    routes: HashMap<(FlowId, IfaceId), IfaceId>,
    /// Packets forwarded.
    pub forwarded: u64,
    /// Packets dropped for want of a route.
    pub unroutable: u64,
}

impl FlowRouter {
    /// Creates a router with no routes.
    pub fn new() -> Self {
        FlowRouter {
            routes: HashMap::new(),
            forwarded: 0,
            unroutable: 0,
        }
    }

    /// Adds a unidirectional route; returns `self` for chaining.
    pub fn route(mut self, flow: FlowId, from: IfaceId, to: IfaceId) -> Self {
        self.add_route(flow, from, to);
        self
    }

    /// Adds a unidirectional route.
    pub fn add_route(&mut self, flow: FlowId, from: IfaceId, to: IfaceId) {
        assert_ne!(from, to, "route would loop back out its ingress");
        let prev = self.routes.insert((flow, from), to);
        assert!(prev.is_none(), "duplicate route for {flow:?} from {from:?}");
    }

    /// Adds the symmetric pair of routes for one flow traversing the router
    /// between two interfaces (data one way, ACKs the other).
    pub fn add_duplex_route(&mut self, flow: FlowId, a: IfaceId, b: IfaceId) {
        self.add_route(flow, a, b);
        self.add_route(flow, b, a);
    }

    /// Boxed convenience constructor.
    pub fn boxed(self) -> Box<Self> {
        Box::new(self)
    }
}

impl Default for FlowRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl Node for FlowRouter {
    fn on_packet(&mut self, iface: IfaceId, packet: Packet, ctx: &mut Context) {
        match self.routes.get(&(packet.flow, iface)) {
            Some(&out) => {
                self.forwarded += 1;
                ctx.send(out, packet);
            }
            None => {
                self.unroutable += 1;
            }
        }
    }

    fn name(&self) -> &str {
        "flow-router"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::time::SimDuration;
    use crate::transport::{CcAlgorithm, ReceiverConfig, ReceiverNode, SenderConfig, SenderNode};
    use crate::world::World;

    /// Two flows share one bottleneck link through a router pair.
    fn shared_bottleneck(seed: u64, cc: CcAlgorithm, total: u64) -> (f64, f64, u64) {
        let mut w = World::new(seed);
        let f1 = FlowId(1);
        let f2 = FlowId(2);
        let s1 = w.add_node(SenderNode::boxed(SenderConfig {
            flow: f1,
            total_packets: Some(total),
            cc,
            id_seed: seed ^ 1,
            ..SenderConfig::default()
        }));
        let s2 = w.add_node(SenderNode::boxed(SenderConfig {
            flow: f2,
            total_packets: Some(total),
            cc,
            id_seed: seed ^ 2,
            ..SenderConfig::default()
        }));
        let mut mux = FlowRouter::new();
        // Interfaces in connect order: 0 = s1, 1 = s2, 2 = bottleneck.
        mux.add_duplex_route(f1, IfaceId(0), IfaceId(2));
        mux.add_duplex_route(f2, IfaceId(1), IfaceId(2));
        let mux = w.add_node(mux.boxed());
        let mut demux = FlowRouter::new();
        // 0 = bottleneck, 1 = r1, 2 = r2.
        demux.add_duplex_route(f1, IfaceId(0), IfaceId(1));
        demux.add_duplex_route(f2, IfaceId(0), IfaceId(2));
        let demux = w.add_node(demux.boxed());
        let r1 = w.add_node(ReceiverNode::boxed(ReceiverConfig {
            flow: f1,
            ..ReceiverConfig::default()
        }));
        let r2 = w.add_node(ReceiverNode::boxed(ReceiverConfig {
            flow: f2,
            ..ReceiverConfig::default()
        }));

        let edge = LinkConfig {
            rate_bps: 1_000_000_000,
            delay: SimDuration::from_millis(2),
            ..LinkConfig::default()
        };
        let bottleneck = LinkConfig {
            rate_bps: 50_000_000,
            delay: SimDuration::from_millis(10),
            queue_packets: 128,
            ..LinkConfig::default()
        };
        w.connect(s1, mux, edge.clone(), edge.clone());
        w.connect(s2, mux, edge.clone(), edge.clone());
        w.connect(mux, demux, bottleneck.clone(), bottleneck);
        w.connect(demux, r1, edge.clone(), edge.clone());
        w.connect(demux, r2, edge.clone(), edge);
        w.run_until_idle(100_000_000);

        let t1 = w
            .node_as::<SenderNode>(s1)
            .stats()
            .completed_at
            .expect("flow 1 completed")
            .as_secs_f64();
        let t2 = w
            .node_as::<SenderNode>(s2)
            .stats()
            .completed_at
            .expect("flow 2 completed")
            .as_secs_f64();
        let unroutable =
            w.node_as::<FlowRouter>(mux).unroutable + w.node_as::<FlowRouter>(demux).unroutable;
        (t1, t2, unroutable)
    }

    #[test]
    fn two_flows_share_a_bottleneck_fairly() {
        let (t1, t2, unroutable) = shared_bottleneck(3, CcAlgorithm::NewReno, 1500);
        assert_eq!(unroutable, 0);
        // Jain-style fairness: completion times within 2x of each other.
        let ratio = t1.max(t2) / t1.min(t2);
        assert!(ratio < 2.0, "unfair split: {t1:.3}s vs {t2:.3}s");
        // And the pair saturates the bottleneck reasonably: two 1500-packet
        // flows at 1500 B over 50 Mbit/s need ≥ 0.72 s of busy time.
        assert!(t1.max(t2) > 0.7, "faster than the link allows?");
        assert!(t1.max(t2) < 3.0, "bottleneck badly underutilized");
    }

    #[test]
    fn unroutable_flows_are_dropped_and_counted() {
        let mut w = World::new(9);
        let s = w.add_node(SenderNode::boxed(SenderConfig {
            flow: FlowId(7),
            total_packets: Some(10),
            ..SenderConfig::default()
        }));
        // Router with no routes at all.
        let router = w.add_node(FlowRouter::new().boxed());
        let r = w.add_node(ReceiverNode::boxed(ReceiverConfig::default()));
        w.connect(s, router, LinkConfig::default(), LinkConfig::default());
        w.connect(router, r, LinkConfig::default(), LinkConfig::default());
        // The flow can never complete; run for a bounded sim time.
        w.run_until(crate::time::SimTime::ZERO + SimDuration::from_millis(500));
        let router = w.node_as::<FlowRouter>(router);
        assert_eq!(router.forwarded, 0);
        assert!(router.unroutable > 0);
        let recv = w.node_as::<ReceiverNode>(r);
        assert_eq!(recv.stats().received_packets, 0);
    }

    #[test]
    #[should_panic(expected = "duplicate route")]
    fn duplicate_routes_rejected() {
        let mut r = FlowRouter::new();
        r.add_route(FlowId(1), IfaceId(0), IfaceId(1));
        r.add_route(FlowId(1), IfaceId(0), IfaceId(2));
    }

    #[test]
    #[should_panic(expected = "loop back")]
    fn self_routes_rejected() {
        let mut r = FlowRouter::new();
        r.add_route(FlowId(1), IfaceId(0), IfaceId(0));
    }
}
