//! A vendored, offline subset of the [proptest] API.
//!
//! The workspace's property tests were written against proptest, but this
//! repository must build in sandboxes with no crates-io access. Rather than
//! gut the tests, this crate reimplements exactly the slice of the proptest
//! surface they use — `proptest!`, `prop_assert*`, `prop_assume!`,
//! `prop_oneof!`, `any::<T>()`, integer-range strategies, tuple strategies,
//! `collection::vec`, `Just`, `prop_map`, `bool::weighted`, and
//! `sample::Index` — on top of a small deterministic RNG. The workspace
//! `Cargo.toml` renames it to `proptest` (`proptest = { path = …,
//! package = "propcheck" }`), so test code keeps its `use proptest::…`
//! imports untouched.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs verbatim; the RNG
//!   is seeded from the test name, so failures reproduce exactly on rerun.
//! * **Rejection via [`prop_assume!`]** skips the case without replacement
//!   (case budgets are generous enough in this workspace).
//! * Value distributions are simpler: uniform, plus a mild bias toward
//!   0/MAX edge values for unsigned integers.
//!
//! [proptest]: https://docs.rs/proptest

#![forbid(unsafe_code)]

pub mod test_runner {
    //! The runner configuration, error type, and deterministic RNG.

    /// Per-block configuration; only `cases` is honoured.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases with all other defaults.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the whole test fails.
        Fail(String),
        /// The case was rejected by `prop_assume!`; it is skipped.
        Reject(String),
    }

    /// SplitMix64: small, fast, and plenty for test-input generation.
    /// Seeded from the test's name so every test gets an independent,
    /// reproducible stream.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A deterministic stream derived from `name` (FNV-1a hash).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)` via widening multiply.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use core::fmt::Debug;

    /// Something that can generate values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: Clone + Debug;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            U: Clone + Debug,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The combinator behind [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        U: Clone + Debug,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// A boxed generator alternative inside a [`Union`].
    type UnionArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

    /// Uniform choice among boxed alternatives (behind `prop_oneof!`).
    pub struct Union<V> {
        options: Vec<UnionArm<V>>,
    }

    impl<V: Clone + Debug> Union<V> {
        /// An empty union; populate with [`Union::or`].
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Union {
                options: Vec::new(),
            }
        }

        /// Adds one alternative.
        pub fn or(mut self, s: impl Strategy<Value = V> + 'static) -> Self {
            self.options.push(Box::new(move |rng| s.generate(rng)));
            self
        }
    }

    impl<V: Clone + Debug> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            assert!(!self.options.is_empty(), "prop_oneof! of zero strategies");
            let i = rng.below(self.options.len() as u64) as usize;
            (self.options[i])(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.below(span) as $t)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait behind it.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::fmt::Debug;
    use core::marker::PhantomData;

    /// Types with a canonical "arbitrary value" strategy.
    pub trait Arbitrary: Clone + Debug {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Mild edge bias: 0 and MAX each ~1/16 of the time.
                    match rng.below(16) {
                        0 => 0,
                        1 => <$t>::MAX,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<T>);

    /// A strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! `vec(strategy, size)`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Lengths a [`VecStrategy`] may produce: `[start, end)`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length falls in `size` (a `usize` for exact, or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`weighted`].
    #[derive(Clone, Copy, Debug)]
    pub struct Weighted(f64);

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted(p)
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_f64() < self.0
        }
    }
}

pub mod sample {
    //! `Index`: an arbitrary position into any later-known collection.

    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// A raw draw that projects uniformly onto any non-empty `0..len`.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Projects onto `0..len`. Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.0 as u128 * len as u128) >> 64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module alias (`prop::bool::weighted`, `prop::sample::Index`, …).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Defines property tests: an optional `#![proptest_config(…)]` header
/// followed by `fn name(arg in strategy, …) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                let mut __inputs = ::std::string::String::new();
                $(
                    let __value = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    __inputs.push_str(&::std::format!(
                        "{} = {:?}; ", stringify!($arg), &__value
                    ));
                    let $arg = __value;
                )+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property '{}' failed at case {}/{}\n  {}\n  inputs: {}",
                            stringify!($name),
                            __case,
                            __config.cases,
                            msg,
                            __inputs,
                        );
                    }
                }
            }
        }
    )*};
}

/// `assert!` that fails the current generated case with its inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        // Route through "{}" so braces in the stringified condition are not
        // parsed as format placeholders.
        $crate::prop_assert!($cond, "{}", concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                            __l, __r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n  {}",
                            __l, __r, format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!("assertion failed: `left != right`\n  both: `{:?}`", __l),
                    ));
                }
            }
        }
    };
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::new(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                format!($($fmt)+),
            ));
        }
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($strategy))+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        let mut c = crate::test_runner::TestRng::for_test("y");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 1usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..4).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(any::<u8>(), 2..9),
                                    exact in prop::collection::vec(any::<bool>(), 5)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert_eq!(exact.len(), 5);
        }

        #[test]
        fn oneof_and_map_compose(choice in prop_oneof![Just(1u64), Just(2u64)],
                                 doubled in (1u64..10).prop_map(|x| x * 2),
                                 pair in (any::<u32>(), any::<bool>())) {
            prop_assert!(choice == 1 || choice == 2);
            prop_assert!(doubled % 2 == 0 && doubled < 20);
            let (_n, _b) = pair;
        }

        #[test]
        fn index_projects_in_bounds(idx in any::<prop::sample::Index>(), len in 1usize..50) {
            prop_assert!(idx.index(len) < len);
        }

        #[test]
        fn assume_rejects_without_failing(x in any::<u8>()) {
            prop_assume!(x.is_multiple_of(2));
            prop_assert_eq!(x % 2, 0, "only even values survive the assume");
        }
    }

    #[test]
    fn weighted_bool_tracks_probability() {
        let mut rng = crate::test_runner::TestRng::for_test("weighted");
        let s = crate::bool::weighted(0.9);
        let trues = (0..2000)
            .filter(|_| crate::strategy::Strategy::generate(&s, &mut rng))
            .count();
        assert!((1650..=1980).contains(&trues), "got {trues}");
    }
}
