//! An invertible Bloom lookup table (IBLT): the *other* construction from
//! the straggler-identification work the paper builds on.
//!
//! Eppstein & Goodrich's paper (the quACK's citation \[7\]) solves set-
//! difference both with power sums ("Newton's identities") and with
//! **invertible Bloom filters**. The paper asks "what similar
//! protocol-agnostic digests could we design?" (§5) — the IBLT is the
//! canonical answer, with an opposite trade-off:
//!
//! * **size**: `≈1.4·k/(k−1)·d` cells of ~20 bytes for `d` differences vs.
//!   the power sums' `d·b` bits — roughly an order of magnitude larger at
//!   the paper's operating point;
//! * **decode**: `O(d)` peeling with tiny constants vs. `O(n·m)` or
//!   `O(m² log p)` — and the IBLT decodes *both directions* of a
//!   difference;
//! * **failure mode**: probabilistic (peeling can stall) vs. the power
//!   sums' hard `m ≤ t` threshold — and, structurally, a *duplicated*
//!   identifier in the difference (the same ciphertext lost twice) never
//!   peels: all of its cells hold count 2, so `decode` returns `None`
//!   where the power-sum decoder reports the duplicate exactly.
//!
//! The `sketch_compare` bench bin quantifies the trade-off.

/// One IBLT cell: signed count plus keyed sums that make singleton cells
/// recognizable and invertible.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Cell {
    /// Net insertions minus removals hashing here.
    count: i64,
    /// Wrapping sum of identifiers hashing here.
    id_sum: u64,
    /// Wrapping sum of identifier checksums hashing here.
    check_sum: u64,
}

impl Cell {
    fn is_empty(&self) -> bool {
        self.count == 0 && self.id_sum == 0 && self.check_sum == 0
    }

    /// If this cell holds exactly one (possibly negated) identifier,
    /// return `(id, sign)`.
    fn as_singleton(&self) -> Option<(u64, i64)> {
        let (id, sign) = match self.count {
            1 => (self.id_sum, 1),
            -1 => (self.id_sum.wrapping_neg(), -1),
            _ => return None,
        };
        let expected = checksum(id).wrapping_mul(sign as u64);
        if self.check_sum == expected {
            Some((id, sign))
        } else {
            None
        }
    }
}

fn mix(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn checksum(id: u64) -> u64 {
    mix(id ^ 0xC0DE_C0DE_C0DE_C0DE)
}

/// Number of independent subtables (each identifier lands in one cell per
/// subtable, guaranteeing `K` distinct cells).
const K: usize = 3;

/// The result of peeling an IBLT difference.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IbltDiff {
    /// Identifiers present in `self` but not `other` — the *missing*
    /// packets when differencing sender − receiver. Each entry has
    /// multiplicity one: a difference containing the same identifier more
    /// than once is undecodable (peeling stalls; see the module docs).
    pub missing: Vec<u64>,
    /// Identifiers present in `other` but not `self` — foreign packets the
    /// receiver saw that the sender never sent.
    pub extra: Vec<u64>,
}

/// An invertible Bloom lookup table over packet identifiers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Iblt {
    /// `K` subtables of `per_table` cells each, concatenated.
    cells: Vec<Cell>,
    per_table: usize,
    /// Wrapping count of net insertions (same role as the quACK count).
    count: u32,
    /// Seed diversifying the cell hashes per deployment.
    salt: u64,
}

impl Iblt {
    /// Creates an IBLT able to decode roughly `capacity` differences.
    ///
    /// Sizing uses a 1.6× peeling overhead plus a per-subtable slack cell:
    /// the asymptotic `k = 3` threshold is ≈1.22×, but small tables (the
    /// regime sidecars care about) need substantially more headroom to keep
    /// the stall probability in the low percents.
    pub fn with_capacity(capacity: usize, salt: u64) -> Self {
        let per_table = ((capacity as f64 * 1.6 / K as f64).ceil() as usize + 1).max(3);
        Iblt {
            cells: vec![Cell::default(); per_table * K],
            per_table,
            count: 0,
            salt,
        }
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Size of the sketch on the wire: 20 bytes per cell (8-byte id sum,
    /// 8-byte checksum sum, 4-byte count) plus a 2-byte element count.
    pub fn wire_bytes(&self) -> usize {
        self.cells.len() * 20 + 2
    }

    /// Net element count (wrapping).
    pub fn count(&self) -> u32 {
        self.count
    }

    fn cell_indices(&self, id: u64) -> [usize; K] {
        let mut idx = [0usize; K];
        for (t, slot) in idx.iter_mut().enumerate() {
            let h = mix(id ^ self.salt.wrapping_add(t as u64 * 0x1000_0001));
            *slot = t * self.per_table + (h % self.per_table as u64) as usize;
        }
        idx
    }

    /// Folds one identifier in.
    pub fn insert(&mut self, id: u64) {
        for i in self.cell_indices(id) {
            let c = &mut self.cells[i];
            c.count += 1;
            c.id_sum = c.id_sum.wrapping_add(id);
            c.check_sum = c.check_sum.wrapping_add(checksum(id));
        }
        self.count = self.count.wrapping_add(1);
    }

    /// Removes one identifier (inverse of [`insert`](Self::insert)).
    pub fn remove(&mut self, id: u64) {
        for i in self.cell_indices(id) {
            let c = &mut self.cells[i];
            c.count -= 1;
            c.id_sum = c.id_sum.wrapping_sub(id);
            c.check_sum = c.check_sum.wrapping_sub(checksum(id));
        }
        self.count = self.count.wrapping_sub(1);
    }

    /// Cellwise difference `self − other` (both sides must be configured
    /// identically).
    ///
    /// # Panics
    ///
    /// Panics on mismatched geometry or salt.
    pub fn difference(&self, other: &Self) -> Self {
        assert_eq!(self.per_table, other.per_table, "mismatched IBLT size");
        assert_eq!(self.salt, other.salt, "mismatched IBLT salt");
        let cells = self
            .cells
            .iter()
            .zip(&other.cells)
            .map(|(a, b)| Cell {
                count: a.count - b.count,
                id_sum: a.id_sum.wrapping_sub(b.id_sum),
                check_sum: a.check_sum.wrapping_sub(b.check_sum),
            })
            .collect();
        Iblt {
            cells,
            per_table: self.per_table,
            count: self.count.wrapping_sub(other.count),
            salt: self.salt,
        }
    }

    /// Peels the (difference) table, listing both directions of the
    /// difference. Returns `None` if peeling stalls before the table
    /// empties — the probabilistic failure the power-sum quACK does not
    /// have. Consumes the table (peeling is destructive).
    pub fn decode(mut self) -> Option<IbltDiff> {
        let mut out = IbltDiff::default();
        let mut queue: Vec<usize> = (0..self.cells.len()).collect();
        while let Some(i) = queue.pop() {
            let Some((id, sign)) = self.cells[i].as_singleton() else {
                continue;
            };
            if sign > 0 {
                out.missing.push(id);
            } else {
                out.extra.push(id);
            }
            // Remove the recovered element (with its sign) everywhere,
            // re-queueing the touched cells.
            for j in self.cell_indices(id) {
                let c = &mut self.cells[j];
                c.count -= sign;
                if sign > 0 {
                    c.id_sum = c.id_sum.wrapping_sub(id);
                    c.check_sum = c.check_sum.wrapping_sub(checksum(id));
                } else {
                    c.id_sum = c.id_sum.wrapping_add(id);
                    c.check_sum = c.check_sum.wrapping_add(checksum(id));
                }
                queue.push(j);
            }
        }
        if self.cells.iter().all(Cell::is_empty) {
            out.missing.sort_unstable();
            out.extra.sort_unstable();
            Some(out)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::IdentifierGenerator;

    #[test]
    fn roundtrip_small_difference() {
        let mut sender = Iblt::with_capacity(20, 7);
        let mut receiver = Iblt::with_capacity(20, 7);
        let ids: Vec<u64> = (0..100u64).map(|i| i * 2_654_435_761 + 3).collect();
        for &id in &ids {
            sender.insert(id);
        }
        for (i, &id) in ids.iter().enumerate() {
            if i % 10 != 4 {
                receiver.insert(id);
            }
        }
        let diff = sender.difference(&receiver).decode().unwrap();
        let mut expected: Vec<u64> = ids.iter().copied().skip(4).step_by(10).collect();
        expected.sort_unstable();
        assert_eq!(diff.missing, expected);
        assert!(diff.extra.is_empty());
    }

    #[test]
    fn decodes_both_directions() {
        let mut a = Iblt::with_capacity(10, 1);
        let mut b = Iblt::with_capacity(10, 1);
        for id in [10u64, 20, 30] {
            a.insert(id);
        }
        for id in [20u64, 30, 40, 50] {
            b.insert(id);
        }
        let diff = a.difference(&b).decode().unwrap();
        assert_eq!(diff.missing, vec![10]);
        assert_eq!(diff.extra, vec![40, 50]);
    }

    #[test]
    fn remove_is_inverse_of_insert() {
        let mut t = Iblt::with_capacity(8, 3);
        for id in [1u64, 2, 3] {
            t.insert(id);
        }
        for id in [1u64, 2, 3] {
            t.remove(id);
        }
        assert!(t.cells.iter().all(Cell::is_empty));
        assert_eq!(t.count(), 0);
    }

    #[test]
    fn empty_difference_decodes_empty() {
        let mut a = Iblt::with_capacity(8, 9);
        let mut b = Iblt::with_capacity(8, 9);
        for id in 0..50u64 {
            a.insert(id);
            b.insert(id);
        }
        let diff = a.difference(&b).decode().unwrap();
        assert!(diff.missing.is_empty() && diff.extra.is_empty());
    }

    #[test]
    fn duplicate_identifier_in_difference_stalls_peeling() {
        // Structural limitation vs. the power-sum quACK: the same
        // identifier missing twice occupies its K cells with count 2 and
        // never becomes a singleton.
        let mut a = Iblt::with_capacity(20, 11);
        let b = Iblt::with_capacity(20, 11);
        a.insert(12_345);
        a.insert(12_345);
        assert_eq!(a.difference(&b).decode(), None);
        // The power-sum quACK handles the identical case exactly.
        let mut ps = crate::power_sum::Quack32::new(20);
        ps.insert(12_345);
        ps.insert(12_345);
        let empty = crate::power_sum::Quack32::new(20);
        assert_eq!(
            ps.difference(&empty).decode_missing_identifiers().unwrap(),
            vec![(12_345, 2)]
        );
    }

    #[test]
    fn overload_fails_gracefully() {
        // 100 differences in a capacity-10 table: peeling must stall, not
        // hallucinate.
        let mut a = Iblt::with_capacity(10, 5);
        let b = Iblt::with_capacity(10, 5);
        let mut generator = IdentifierGenerator::new(32, 44);
        for _ in 0..100 {
            a.insert(generator.next_id());
        }
        assert_eq!(a.difference(&b).decode(), None);
    }

    #[test]
    fn random_workloads_decode_reliably_at_capacity() {
        let mut failures = 0;
        for seed in 0..50u64 {
            let mut generator = IdentifierGenerator::new(32, seed);
            let ids = generator.take_ids(500);
            let mut sender = Iblt::with_capacity(30, seed);
            let mut receiver = Iblt::with_capacity(30, seed);
            for &id in &ids {
                sender.insert(id);
            }
            // Drop 20 (under the 30 capacity).
            for &id in &ids[20..] {
                receiver.insert(id);
            }
            match sender.difference(&receiver).decode() {
                Some(diff) => {
                    let mut expected = ids[..20].to_vec();
                    expected.sort_unstable();
                    assert_eq!(diff.missing, expected);
                }
                None => failures += 1,
            }
        }
        assert!(failures <= 3, "peeling failed {failures}/50 times");
    }

    #[test]
    fn wire_size_is_much_larger_than_power_sums() {
        // The headline comparison: t = 20 power sums = 82 bytes; an IBLT
        // sized for the same 20 differences is ~an order of magnitude
        // bigger.
        let iblt = Iblt::with_capacity(20, 0);
        assert!(iblt.wire_bytes() > 82 * 5, "{}", iblt.wire_bytes());
    }

    #[test]
    #[should_panic(expected = "mismatched IBLT salt")]
    fn salt_mismatch_rejected() {
        let a = Iblt::with_capacity(8, 1);
        let b = Iblt::with_capacity(8, 2);
        let _ = a.difference(&b);
    }
}
