//! Runtime-width quACKs: one type covering every negotiable identifier
//! width.
//!
//! §3.2 lists "the number of bits `b` used in the identifier" among the
//! parameters a receiver may configure, so sidecar implementations need to
//! pick the field *at runtime* from a negotiated value. [`DynQuack`] wraps
//! the four statically-typed quACKs behind one enum with uniform
//! operations; the static types remain the zero-overhead choice when the
//! width is fixed at compile time.

use crate::power_sum::{Quack16, Quack24, Quack32, Quack64};
use crate::wire::{WireError, WireFormat};
use crate::{DecodeError, DecodedQuack};

/// Errors specific to runtime-width handling.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DynError {
    /// The requested identifier width has no field implementation.
    UnsupportedWidth(u32),
    /// Two quACKs of different widths were combined/differenced.
    WidthMismatch {
        /// Width of the left operand.
        left: u32,
        /// Width of the right operand.
        right: u32,
    },
    /// Wire decoding failed.
    Wire(WireError),
}

impl core::fmt::Display for DynError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DynError::UnsupportedWidth(b) => {
                write!(
                    f,
                    "unsupported identifier width: {b} bits (use 16/24/32/64)"
                )
            }
            DynError::WidthMismatch { left, right } => {
                write!(f, "mismatched quACK widths: {left} vs {right} bits")
            }
            DynError::Wire(e) => write!(f, "wire error: {e}"),
        }
    }
}

impl std::error::Error for DynError {}

impl From<WireError> for DynError {
    fn from(e: WireError) -> Self {
        DynError::Wire(e)
    }
}

/// A power-sum quACK whose identifier width is chosen at runtime.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DynQuack {
    /// 16-bit identifiers.
    B16(Quack16),
    /// 24-bit identifiers.
    B24(Quack24),
    /// 32-bit identifiers (the paper's default).
    B32(Quack32),
    /// 64-bit identifiers.
    B64(Quack64),
}

macro_rules! dispatch {
    ($self:expr, $q:ident => $body:expr) => {
        match $self {
            DynQuack::B16($q) => $body,
            DynQuack::B24($q) => $body,
            DynQuack::B32($q) => $body,
            DynQuack::B64($q) => $body,
        }
    };
}

macro_rules! dispatch_pair {
    ($self:expr, $other:expr, $a:ident, $b:ident => $body:expr) => {
        match ($self, $other) {
            (DynQuack::B16($a), DynQuack::B16($b)) => Ok(DynQuack::B16($body)),
            (DynQuack::B24($a), DynQuack::B24($b)) => Ok(DynQuack::B24($body)),
            (DynQuack::B32($a), DynQuack::B32($b)) => Ok(DynQuack::B32($body)),
            (DynQuack::B64($a), DynQuack::B64($b)) => Ok(DynQuack::B64($body)),
            (l, r) => Err(DynError::WidthMismatch {
                left: l.bits(),
                right: r.bits(),
            }),
        }
    };
}

impl DynQuack {
    /// Creates an empty quACK for the negotiated width.
    pub fn new(bits: u32, threshold: usize) -> Result<Self, DynError> {
        Ok(match bits {
            16 => DynQuack::B16(Quack16::new(threshold)),
            24 => DynQuack::B24(Quack24::new(threshold)),
            32 => DynQuack::B32(Quack32::new(threshold)),
            64 => DynQuack::B64(Quack64::new(threshold)),
            other => return Err(DynError::UnsupportedWidth(other)),
        })
    }

    /// The identifier width in bits.
    pub fn bits(&self) -> u32 {
        match self {
            DynQuack::B16(_) => 16,
            DynQuack::B24(_) => 24,
            DynQuack::B32(_) => 32,
            DynQuack::B64(_) => 64,
        }
    }

    /// The threshold `t`.
    pub fn threshold(&self) -> usize {
        dispatch!(self, q => q.threshold())
    }

    /// The wrapping element count.
    pub fn count(&self) -> u32 {
        dispatch!(self, q => q.count())
    }

    /// Whether nothing has been accumulated.
    pub fn is_empty(&self) -> bool {
        dispatch!(self, q => q.is_empty())
    }

    /// Accumulates one identifier.
    pub fn insert(&mut self, id: u64) {
        dispatch!(self, q => q.insert(id))
    }

    /// Removes one identifier.
    pub fn remove(&mut self, id: u64) {
        dispatch!(self, q => q.remove(id))
    }

    /// `self − other` as a difference quACK.
    pub fn difference(&self, other: &Self) -> Result<Self, DynError> {
        dispatch_pair!(self, other, a, b => a.difference(b))
    }

    /// Multiset union (multipath aggregation).
    pub fn combine(&self, other: &Self) -> Result<Self, DynError> {
        dispatch_pair!(self, other, a, b => a.combine(b))
    }

    /// Decodes this difference against a log.
    pub fn decode_with_log(&self, log: &[u64]) -> Result<DecodedQuack, DecodeError> {
        dispatch!(self, q => q.decode_with_log(log))
    }

    /// Log-free decode into missing identifier values (§4.3).
    pub fn decode_missing_identifiers(&self) -> Result<Vec<(u64, usize)>, DecodeError> {
        dispatch!(self, q => q.decode_missing_identifiers())
    }

    /// The wire format for this quACK with the given count width.
    pub fn wire_format(&self, count_bits: u32) -> WireFormat {
        WireFormat {
            id_bits: self.bits(),
            threshold: self.threshold(),
            count_bits,
        }
    }

    /// Serializes with the given count width.
    pub fn encode(&self, count_bits: u32) -> Vec<u8> {
        let fmt = self.wire_format(count_bits);
        dispatch!(self, q => fmt.encode(q))
    }

    /// Deserializes a quACK of negotiated parameters.
    pub fn decode_wire(
        bits: u32,
        threshold: usize,
        count_bits: u32,
        bytes: &[u8],
        count_override: Option<u32>,
    ) -> Result<Self, DynError> {
        // Width validation and wire-format construction live in `new` /
        // `wire_format`; decoding re-uses them instead of re-deriving the
        // format, so the two paths can never disagree on the shape.
        let shaped = DynQuack::new(bits, threshold)?;
        let fmt = shaped.wire_format(count_bits);
        Ok(match shaped {
            DynQuack::B16(_) => DynQuack::B16(fmt.decode(bytes, count_override)?),
            DynQuack::B24(_) => DynQuack::B24(fmt.decode(bytes, count_override)?),
            DynQuack::B32(_) => DynQuack::B32(fmt.decode(bytes, count_override)?),
            DynQuack::B64(_) => DynQuack::B64(fmt.decode(bytes, count_override)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::IdentifierGenerator;

    #[test]
    fn roundtrip_every_width() {
        for bits in [16u32, 24, 32, 64] {
            let mut ids = IdentifierGenerator::new(bits, bits as u64);
            let sent = ids.take_ids(200);
            let mut sender = DynQuack::new(bits, 10).unwrap();
            let mut receiver = DynQuack::new(bits, 10).unwrap();
            for &id in &sent {
                sender.insert(id);
            }
            for (i, &id) in sent.iter().enumerate() {
                if i % 40 != 3 {
                    receiver.insert(id);
                }
            }
            // Ship through the wire at this width.
            let bytes = receiver.encode(16);
            let rx = DynQuack::decode_wire(bits, 10, 16, &bytes, None).unwrap();
            let diff = sender.difference(&rx).unwrap();
            let decoded = diff.decode_with_log(&sent).unwrap();
            let expected: Vec<usize> = (0..sent.len()).filter(|i| i % 40 == 3).collect();
            assert_eq!(decoded.missing(), &expected[..], "bits {bits}");
            assert_eq!(diff.bits(), bits);
        }
    }

    #[test]
    fn combine_after_wire_roundtrip() {
        // Multipath aggregation (§5): two vantage points each observe half
        // the traffic, ship their quACKs over the wire, and an aggregator
        // combines the decoded copies before differencing with the sender.
        for bits in [16u32, 24, 32, 64] {
            let mut ids = IdentifierGenerator::new(bits, 7 + bits as u64);
            let sent = ids.take_ids(120);
            let mut sender = DynQuack::new(bits, 12).unwrap();
            for &id in &sent {
                sender.insert(id);
            }
            let mut path_a = DynQuack::new(bits, 12).unwrap();
            let mut path_b = DynQuack::new(bits, 12).unwrap();
            for (i, &id) in sent.iter().enumerate() {
                if i % 30 == 7 {
                    continue; // lost before either vantage point
                }
                if i % 2 == 0 {
                    path_a.insert(id);
                } else {
                    path_b.insert(id);
                }
            }
            let a = DynQuack::decode_wire(bits, 12, 16, &path_a.encode(16), None).unwrap();
            let b = DynQuack::decode_wire(bits, 12, 16, &path_b.encode(16), None).unwrap();
            // The wire carries sums and count (not the last-value fast-path
            // cache), so compare what the wire promises to preserve.
            assert_eq!(a.count(), path_a.count(), "bits {bits}");
            assert_eq!(a.encode(16), path_a.encode(16), "bits {bits}");
            let union = a.combine(&b).unwrap();
            let diff = sender.difference(&union).unwrap();
            let decoded = diff.decode_with_log(&sent).unwrap();
            let expected: Vec<usize> = (0..sent.len()).filter(|i| i % 30 == 7).collect();
            assert_eq!(decoded.missing(), &expected[..], "bits {bits}");
        }
    }

    #[test]
    fn unsupported_width_rejected() {
        assert_eq!(
            DynQuack::new(48, 10).unwrap_err(),
            DynError::UnsupportedWidth(48)
        );
        assert!(DynQuack::decode_wire(8, 4, 16, &[0; 6], None).is_err());
        assert!(DynError::UnsupportedWidth(48).to_string().contains("48"));
    }

    #[test]
    fn width_mismatch_rejected() {
        let a = DynQuack::new(16, 4).unwrap();
        let b = DynQuack::new(32, 4).unwrap();
        let err = a.difference(&b).unwrap_err();
        assert_eq!(
            err,
            DynError::WidthMismatch {
                left: 16,
                right: 32
            }
        );
        assert!(a.combine(&b).is_err());
        assert!(err.to_string().contains("16 vs 32"));
    }

    #[test]
    fn accessors_and_log_free_decode() {
        let mut q = DynQuack::new(32, 5).unwrap();
        assert!(q.is_empty());
        q.insert(77);
        q.insert(99);
        q.remove(99);
        assert_eq!(q.count(), 1);
        assert_eq!(q.threshold(), 5);
        let empty = DynQuack::new(32, 5).unwrap();
        let diff = q.difference(&empty).unwrap();
        assert_eq!(diff.decode_missing_identifiers().unwrap(), vec![(77, 1)]);
        assert_eq!(diff.wire_format(16).encoded_bytes(), 22);
    }

    #[test]
    fn wire_error_propagates() {
        let err = DynQuack::decode_wire(32, 20, 16, &[0u8; 10], None).unwrap_err();
        assert!(matches!(err, DynError::Wire(WireError::Length { .. })));
        assert!(err.to_string().contains("wire error"));
    }
}
