//! Bit-exact wire codec for power-sum quACKs (paper §3.2, §4.2 "QuACK
//! Size").
//!
//! A quACK on the wire is `t` power sums of `b` bits each, followed by a
//! `c`-bit wrapping count: `b·t + c` bits total, rounded up to whole bytes.
//! The paper's headline configuration (`t = 20`, `b = 32`, `c = 16`) is
//! 656 bits = **82 bytes** (Table 2).
//!
//! `c` must only be large enough to represent the count *difference* between
//! consecutive quACKs ("the count itself can wraparound", §3.2), and may be
//! zero when the count travels out of band — the ACK-reduction protocol
//! quACKs every `n` packets so "we can omit c, which is always n" (§4.3).

use crate::power_sum::PowerSumQuack;
use sidecar_galois::Field;

/// Default count width: the paper's `c = 16` bits.
pub const DEFAULT_COUNT_BITS: u32 = 16;

/// Wire-format parameters for a quACK stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WireFormat {
    /// Identifier width `b` in bits (16, 24, 32 or 64).
    pub id_bits: u32,
    /// Threshold `t`: number of power sums.
    pub threshold: usize,
    /// Count width `c` in bits (0 ⇒ count omitted and supplied out of band).
    pub count_bits: u32,
}

/// Errors when decoding a quACK from the wire.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The buffer is not exactly the expected encoded length.
    Length {
        /// Bytes expected per [`WireFormat::encoded_bytes`].
        expected: usize,
        /// Bytes provided.
        actual: usize,
    },
    /// A decoded power sum is not a canonical field representative
    /// (`>= MODULUS`), indicating corruption or a format mismatch.
    NonCanonicalSum {
        /// Index of the offending power sum.
        index: usize,
    },
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Length { expected, actual } => {
                write!(f, "encoded quACK must be {expected} bytes, got {actual}")
            }
            WireError::NonCanonicalSum { index } => {
                write!(f, "power sum {index} is not a canonical field element")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl WireFormat {
    /// The paper's default format for a given threshold: 32-bit identifiers,
    /// 16-bit count.
    pub fn paper_default(threshold: usize) -> Self {
        WireFormat {
            id_bits: 32,
            threshold,
            count_bits: DEFAULT_COUNT_BITS,
        }
    }

    /// Encoded size in bits: `b·t + c`.
    pub fn encoded_bits(&self) -> usize {
        self.id_bits as usize * self.threshold + self.count_bits as usize
    }

    /// Encoded size in whole bytes.
    pub fn encoded_bytes(&self) -> usize {
        self.encoded_bits().div_ceil(8)
    }

    /// Serializes a quACK. The count is truncated to `c` bits (wrapping
    /// semantics, §3.2).
    ///
    /// # Panics
    ///
    /// Panics if the quACK's field width or threshold disagree with this
    /// format.
    pub fn encode<F: Field>(&self, quack: &PowerSumQuack<F>) -> Vec<u8> {
        assert_eq!(F::BITS, self.id_bits, "field width mismatch");
        assert_eq!(quack.threshold(), self.threshold, "threshold mismatch");
        let mut w = BitWriter::with_capacity(self.encoded_bytes());
        for sum in quack.power_sums() {
            w.write(sum, self.id_bits);
        }
        if self.count_bits > 0 {
            w.write(mask(quack.count() as u64, self.count_bits), self.count_bits);
        }
        w.into_bytes()
    }

    /// Deserializes a quACK. `count_override` supplies the count when
    /// `count_bits == 0` (e.g. the fixed `n` of ACK reduction).
    pub fn decode<F: Field>(
        &self,
        bytes: &[u8],
        count_override: Option<u32>,
    ) -> Result<PowerSumQuack<F>, WireError> {
        assert_eq!(F::BITS, self.id_bits, "field width mismatch");
        let expected = self.encoded_bytes();
        if bytes.len() != expected {
            return Err(WireError::Length {
                expected,
                actual: bytes.len(),
            });
        }
        let mut r = BitReader::new(bytes);
        let mut sums = Vec::with_capacity(self.threshold);
        for index in 0..self.threshold {
            let raw = r.read(self.id_bits);
            if raw >= F::MODULUS {
                return Err(WireError::NonCanonicalSum { index });
            }
            sums.push(raw);
        }
        let count = if self.count_bits > 0 {
            r.read(self.count_bits) as u32
        } else {
            count_override.unwrap_or(0)
        };
        Ok(PowerSumQuack::from_parts(sums, count))
    }
}

#[inline]
fn mask(value: u64, bits: u32) -> u64 {
    if bits >= 64 {
        value
    } else {
        value & ((1u64 << bits) - 1)
    }
}

/// MSB-first bit packer.
struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the final byte (0..8).
    used: u32,
}

impl BitWriter {
    fn with_capacity(bytes: usize) -> Self {
        BitWriter {
            bytes: Vec::with_capacity(bytes),
            used: 0,
        }
    }

    fn write(&mut self, value: u64, bits: u32) {
        debug_assert!(bits <= 64);
        debug_assert!(bits == 64 || value < (1u64 << bits));
        let mut remaining = bits;
        while remaining > 0 {
            if self.used == 0 {
                self.bytes.push(0);
            }
            let free = 8 - self.used;
            let take = free.min(remaining);
            let shifted = (value >> (remaining - take)) & ((1u64 << take) - 1);
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= (shifted as u8) << (free - take);
            self.used = (self.used + take) % 8;
            remaining -= take;
        }
    }

    fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// MSB-first bit unpacker.
struct BitReader<'a> {
    bytes: &'a [u8],
    bit_pos: usize,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, bit_pos: 0 }
    }

    fn read(&mut self, bits: u32) -> u64 {
        let mut value = 0u64;
        for _ in 0..bits {
            let byte = self.bytes[self.bit_pos / 8];
            let bit = (byte >> (7 - (self.bit_pos % 8))) & 1;
            value = (value << 1) | bit as u64;
            self.bit_pos += 1;
        }
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power_sum::{Quack16, Quack24, Quack32, Quack64};

    #[test]
    fn paper_headline_size_is_82_bytes() {
        let fmt = WireFormat::paper_default(20);
        assert_eq!(fmt.encoded_bits(), 656);
        assert_eq!(fmt.encoded_bytes(), 82);
    }

    #[test]
    fn roundtrip_32bit() {
        let mut q = Quack32::new(20);
        for id in 0..1000u64 {
            q.insert(id.wrapping_mul(0x9E37_79B9));
        }
        let fmt = WireFormat::paper_default(20);
        let bytes = fmt.encode(&q);
        assert_eq!(bytes.len(), 82);
        let back: Quack32 = fmt.decode(&bytes, None).unwrap();
        assert_eq!(
            back.power_sums().collect::<Vec<_>>(),
            q.power_sums().collect::<Vec<_>>()
        );
        assert_eq!(back.count(), q.count() & 0xFFFF);
    }

    #[test]
    fn roundtrip_24bit_unaligned() {
        // 24-bit sums exercise non-byte-aligned packing thoroughly.
        let mut q = Quack24::new(7);
        for id in [1u64, 500_000, 16_000_000, 3] {
            q.insert(id);
        }
        let fmt = WireFormat {
            id_bits: 24,
            threshold: 7,
            count_bits: 5,
        };
        assert_eq!(fmt.encoded_bits(), 24 * 7 + 5);
        let bytes = fmt.encode(&q);
        assert_eq!(bytes.len(), (24 * 7 + 5usize).div_ceil(8));
        let back: Quack24 = fmt.decode(&bytes, None).unwrap();
        assert_eq!(
            back.power_sums().collect::<Vec<_>>(),
            q.power_sums().collect::<Vec<_>>()
        );
        assert_eq!(back.count(), 4);
    }

    #[test]
    fn roundtrip_16_and_64() {
        let mut q16 = Quack16::new(3);
        q16.insert(500);
        let fmt16 = WireFormat {
            id_bits: 16,
            threshold: 3,
            count_bits: 16,
        };
        let back: Quack16 = fmt16.decode(&fmt16.encode(&q16), None).unwrap();
        assert_eq!(back.count(), 1);
        assert_eq!(
            back.power_sums().collect::<Vec<_>>(),
            q16.power_sums().collect::<Vec<_>>()
        );

        let mut q64 = Quack64::new(4);
        q64.insert(u64::MAX - 100);
        let fmt64 = WireFormat {
            id_bits: 64,
            threshold: 4,
            count_bits: 32,
        };
        let back: Quack64 = fmt64.decode(&fmt64.encode(&q64), None).unwrap();
        assert_eq!(
            back.power_sums().collect::<Vec<_>>(),
            q64.power_sums().collect::<Vec<_>>()
        );
    }

    #[test]
    fn count_omitted_with_override() {
        // ACK reduction omits c (§4.3); count arrives out of band.
        let mut q = Quack32::new(5);
        for id in 0..32u64 {
            q.insert(id * 3 + 1);
        }
        let fmt = WireFormat {
            id_bits: 32,
            threshold: 5,
            count_bits: 0,
        };
        assert_eq!(fmt.encoded_bytes(), 20);
        let bytes = fmt.encode(&q);
        let back: Quack32 = fmt.decode(&bytes, Some(32)).unwrap();
        assert_eq!(back.count(), 32);
    }

    #[test]
    fn count_wraps_at_c_bits() {
        let mut q = Quack32::new(1);
        for id in 0..70_000u64 {
            q.insert(id);
        }
        let fmt = WireFormat {
            id_bits: 32,
            threshold: 1,
            count_bits: 16,
        };
        let back: Quack32 = fmt.decode(&fmt.encode(&q), None).unwrap();
        assert_eq!(back.count(), 70_000 % 65_536);
    }

    #[test]
    fn length_mismatch_rejected() {
        let fmt = WireFormat::paper_default(20);
        let err = fmt
            .decode::<sidecar_galois::Fp32>(&[0u8; 81], None)
            .unwrap_err();
        assert_eq!(
            err,
            WireError::Length {
                expected: 82,
                actual: 81
            }
        );
        assert!(err.to_string().contains("82 bytes"));
    }

    #[test]
    fn non_canonical_sum_rejected() {
        let fmt = WireFormat {
            id_bits: 32,
            threshold: 1,
            count_bits: 0,
        };
        // 0xFFFF_FFFF >= p = 2^32 - 5.
        let bytes = vec![0xFF, 0xFF, 0xFF, 0xFF];
        let err = fmt
            .decode::<sidecar_galois::Fp32>(&bytes, None)
            .unwrap_err();
        assert_eq!(err, WireError::NonCanonicalSum { index: 0 });
    }

    #[test]
    fn decoded_quack_decodes_losses() {
        // End-to-end: serialize the receiver's quACK, ship it, decode
        // missing packets on the sender.
        let sent: Vec<u64> = (0..100u64).map(|i| i * 7919 + 13).collect();
        let mut sender = Quack32::new(10);
        let mut receiver = Quack32::new(10);
        for &id in &sent {
            sender.insert(id);
        }
        for (i, &id) in sent.iter().enumerate() {
            if !(40..44).contains(&i) {
                receiver.insert(id);
            }
        }
        let fmt = WireFormat::paper_default(10);
        let wire = fmt.encode(&receiver);
        let received: Quack32 = fmt.decode(&wire, None).unwrap();
        let decoded = sender.decode_against(&received, &sent).unwrap();
        assert_eq!(decoded.missing_values(&sent), sent[40..44].to_vec());
    }

    #[test]
    fn bitwriter_reader_roundtrip_mixed_widths() {
        let mut w = BitWriter::with_capacity(16);
        w.write(0b101, 3);
        w.write(0xABCD, 16);
        w.write(1, 1);
        w.write(u64::MAX, 64);
        w.write(0, 4);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(3), 0b101);
        assert_eq!(r.read(16), 0xABCD);
        assert_eq!(r.read(1), 1);
        assert_eq!(r.read(64), u64::MAX);
        assert_eq!(r.read(4), 0);
    }
}
