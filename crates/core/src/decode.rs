//! Decoding a difference quACK against the sender's log (paper §3.2).
//!
//! The sender subtracts the received quACK from its own, leaving the power
//! sums of the missing multiset `S \ R` and the missing count `m`. Decoding
//! then:
//!
//! 1. converts the first `m` power sums into the monic error-locator
//!    polynomial via Newton's identities (`O(m²)`);
//! 2. evaluates the locator at every *distinct* identifier in the log
//!    ("plug in all candidate roots", §4.2) — `O(n·m)`;
//! 3. divides out each confirmed root (synthetic deflation) so multiset
//!    multiplicities are respected;
//! 4. classifies each log entry as received, missing, or — when several
//!    logged packets share one identifier and only some of them are missing
//!    — *indeterminate* (§3.2: "a decoded identifier may correspond to
//!    multiple candidate missing packets").

use sidecar_galois::factor::find_roots;
use sidecar_galois::poly::{deflate_monic, eval_monic};
use sidecar_galois::{Field, NewtonWorkspace, WorkspacePool};
use std::collections::HashMap;

/// Minimum amount of candidate-evaluation work (`distinct keys × locator
/// degree`) before the parallel decoder spawns threads; below this the
/// spawn overhead dominates and the serial loop wins.
#[cfg(feature = "parallel")]
const PARALLEL_MIN_WORK: usize = 4096;

/// Why decoding a difference quACK failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// More packets are missing than the quACK has power sums for: `t < m`
    /// (§3.2: "decoding fails because there are not enough equations to
    /// solve"). The endpoints must reset the connection to keep using the
    /// quACK (§3.3 "Exceeding the threshold").
    ThresholdExceeded {
        /// The number of missing packets `m` implied by the counts.
        missing: usize,
        /// The negotiated threshold `t`.
        threshold: usize,
    },
    /// The count difference is zero but the power sums are not (or vice
    /// versa): the `c`-bit count wrapped a full cycle between quACKs, so
    /// the equations "do not correspond to packets in S" (§3.2).
    CountInconsistent,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::ThresholdExceeded { missing, threshold } => write!(
                f,
                "{missing} packets missing but quACK threshold is {threshold}"
            ),
            DecodeError::CountInconsistent => {
                write!(
                    f,
                    "count difference inconsistent with power sums (count wraparound)"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// The fate of one logged packet after decoding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PacketFate {
    /// The packet was received by the quACK's sender.
    Received,
    /// The packet is definitively missing.
    Missing,
    /// The packet shares its identifier with other logged packets and only
    /// some of that group are missing; which ones cannot be determined
    /// (§3.2). Sidecar protocols interpret these according to their needs —
    /// e.g. in-network retransmission simply retransmits them.
    Indeterminate,
}

/// One collision group whose fate is ambiguous: `indices.len()` log entries
/// share an identifier of which exactly `missing` are missing.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IndeterminateGroup {
    /// Log indices sharing the identifier, ascending.
    pub indices: Vec<usize>,
    /// How many of them are missing (`0 < missing < indices.len()`).
    pub missing: usize,
}

/// The result of decoding a difference quACK against a log of candidates.
///
/// Index-based: positions refer to entries of the `log` slice passed to the
/// decoder, because identifiers may legitimately repeat in the log (either a
/// `b`-bit collision between different packets or a retransmission of an
/// identical ciphertext).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DecodedQuack {
    missing: Vec<usize>,
    indeterminate: Vec<usize>,
    groups: Vec<IndeterminateGroup>,
    num_missing: usize,
    residual: usize,
}

impl DecodedQuack {
    /// Log indices that are definitively missing, ascending.
    pub fn missing(&self) -> &[usize] {
        &self.missing
    }

    /// Log indices whose fate is ambiguous due to identifier collisions,
    /// ascending.
    pub fn indeterminate(&self) -> &[usize] {
        &self.indeterminate
    }

    /// Indeterminate collision groups with their missing multiplicities
    /// (how many of each group are missing — just not *which*).
    pub fn indeterminate_groups(&self) -> &[IndeterminateGroup] {
        &self.groups
    }

    /// The number of missing packets `m` the quACK encoded (count
    /// difference). Satisfies
    /// `missing.len() <= m <= missing.len() + indeterminate.len() + residual`.
    pub fn num_missing(&self) -> usize {
        self.num_missing
    }

    /// Locator roots that matched no log entry. Zero in normal operation;
    /// nonzero indicates the log was pruned too aggressively or a count
    /// wraparound slipped through.
    pub fn residual(&self) -> usize {
        self.residual
    }

    /// Whether every missing packet was pinned to a unique log entry.
    pub fn is_fully_determined(&self) -> bool {
        self.indeterminate.is_empty() && self.residual == 0
    }

    /// The fate of the log entry at `index`.
    pub fn fate(&self, index: usize) -> PacketFate {
        if self.missing.binary_search(&index).is_ok() {
            PacketFate::Missing
        } else if self.indeterminate.binary_search(&index).is_ok() {
            PacketFate::Indeterminate
        } else {
            PacketFate::Received
        }
    }

    /// Identifier values (from `log`) of the definitively missing packets.
    pub fn missing_values(&self, log: &[u64]) -> Vec<u64> {
        self.missing.iter().map(|&i| log[i]).collect()
    }

    /// Identifier values (from `log`) of the indeterminate packets.
    pub fn indeterminate_values(&self, log: &[u64]) -> Vec<u64> {
        self.indeterminate.iter().map(|&i| log[i]).collect()
    }
}

/// Observability hooks for the decode paths (feature `obs`).
///
/// Decoding has no world context in reach (it runs inside
/// `QuackConsumer::process_quack`), so it records into
/// [`sidecar_obs::global`]. Counters are monotone; tests on the global
/// registry must assert `>=` deltas because the test harness runs decodes
/// concurrently. With `obs` off every hook is an empty inline function —
/// the same zero-cost idiom as the `parallel` feature gate below.
#[cfg(feature = "obs")]
mod hooks {
    use super::DecodeError;

    pub(super) fn attempt() {
        sidecar_obs::global().inc("decode.attempts");
    }

    pub(super) fn outcome<T>(result: &Result<T, DecodeError>) {
        sidecar_obs::global().inc(match result {
            Ok(_) => "decode.ok",
            Err(DecodeError::ThresholdExceeded { .. }) => "decode.err.threshold",
            Err(DecodeError::CountInconsistent) => "decode.err.count_inconsistent",
        });
    }

    /// The `O(m² log p)` factoring decoder was chosen over candidate
    /// plug-in.
    pub(super) fn factor_fallback() {
        sidecar_obs::global().inc("decode.factor_fallback");
    }

    /// Whether a pooled decode found an idle workspace (hit) or had to
    /// allocate a fresh one (miss).
    pub(super) fn pool_checkout(hit: bool) {
        sidecar_obs::global().inc(if hit {
            "decode.pool.hit"
        } else {
            "decode.pool.miss"
        });
    }
}

#[cfg(not(feature = "obs"))]
mod hooks {
    use super::DecodeError;

    #[inline(always)]
    pub(super) fn attempt() {}

    #[inline(always)]
    pub(super) fn outcome<T>(_result: &Result<T, DecodeError>) {}

    #[inline(always)]
    pub(super) fn factor_fallback() {}

    #[inline(always)]
    pub(super) fn pool_checkout(_hit: bool) {}
}

/// Core decode routine shared by [`crate::PowerSumQuack::decode_with_log`].
///
/// `power_sums` and `count` describe the *difference* quACK; `log` is the
/// sender's candidate list.
pub(crate) fn decode_difference<F: Field>(
    power_sums: &[F],
    count: u32,
    log: &[u64],
    workspace: &NewtonWorkspace<F>,
) -> Result<DecodedQuack, DecodeError> {
    hooks::attempt();
    let mut coeffs = Vec::new();
    let result = decode_difference_inner(power_sums, count, log, workspace, &mut coeffs, 1);
    hooks::outcome(&result);
    result
}

/// Multi-threaded variant of [`decode_difference`]: candidate-root
/// evaluation (the `O(n·m)` dominant cost, paper §3.2) is fanned out over
/// `threads` workers; deflation and classification stay serial.
///
/// Returns results *identical* to the serial decoder: the parallel stage
/// only evaluates the full locator at each distinct candidate, and since
/// deflation divides by `(x − r)`, the quotients' roots are a subset of the
/// original locator's — a candidate evaluating nonzero up front can never
/// become a root later, so prefiltering loses nothing.
pub(crate) fn decode_difference_parallel<F: Field>(
    power_sums: &[F],
    count: u32,
    log: &[u64],
    workspace: &NewtonWorkspace<F>,
    threads: usize,
) -> Result<DecodedQuack, DecodeError> {
    hooks::attempt();
    let mut coeffs = Vec::new();
    let result = decode_difference_inner(
        power_sums,
        count,
        log,
        workspace,
        &mut coeffs,
        threads.max(1),
    );
    hooks::outcome(&result);
    result
}

/// Allocation-free variant of [`decode_difference`]: the Newton workspace
/// and the coefficient buffer are checked out of `pool`, so steady-state
/// decoding performs no heap allocation for the locator.
pub(crate) fn decode_difference_pooled<F: Field>(
    power_sums: &[F],
    count: u32,
    log: &[u64],
    pool: &WorkspacePool<F>,
    threads: usize,
) -> Result<DecodedQuack, DecodeError> {
    hooks::attempt();
    hooks::pool_checkout(pool.idle_len() > 0);
    let mut guard = pool.get();
    let (workspace, coeffs) = guard.split();
    let result = decode_difference_inner(power_sums, count, log, workspace, coeffs, threads.max(1));
    hooks::outcome(&result);
    result
}

/// The number of worker threads the parallel decode paths use by default.
///
/// With the `parallel` feature disabled this is always 1, giving the
/// deterministic single-thread fallback.
pub fn default_decode_threads() -> usize {
    #[cfg(feature = "parallel")]
    {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
}

/// Evaluates the monic locator at every key, `flags[i] = (locator(keys[i])
/// == 0)`, splitting the keys across `threads` scoped workers.
#[cfg(feature = "parallel")]
fn eval_candidates<F: Field>(coeffs: &[F], keys: &[u64], threads: usize) -> Vec<bool> {
    let mut flags = vec![false; keys.len()];
    let chunk = keys.len().div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        for (ks, fs) in keys.chunks(chunk).zip(flags.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (k, flag) in ks.iter().zip(fs.iter_mut()) {
                    *flag = eval_monic(coeffs, F::from_u64(*k)) == F::ZERO;
                }
            });
        }
    });
    flags
}

fn decode_difference_inner<F: Field>(
    power_sums: &[F],
    count: u32,
    log: &[u64],
    workspace: &NewtonWorkspace<F>,
    coeffs: &mut Vec<F>,
    threads: usize,
) -> Result<DecodedQuack, DecodeError> {
    let m = count as usize;
    let threshold = power_sums.len();
    if count as u64 > threshold as u64 {
        return Err(DecodeError::ThresholdExceeded {
            missing: m,
            threshold,
        });
    }
    if m == 0 {
        // Nothing missing — but the sums must agree, otherwise the count
        // wrapped a whole cycle.
        if power_sums.iter().any(|s| !s.is_zero()) {
            return Err(DecodeError::CountInconsistent);
        }
        return Ok(DecodedQuack::default());
    }

    // Error-locator coefficients from the first m power sums.
    workspace.coefficients_into(&power_sums[..m], coeffs);

    // Group log indices by field image, preserving first-appearance order.
    let mut groups: HashMap<u64, Vec<usize>> = HashMap::with_capacity(log.len());
    let mut order: Vec<u64> = Vec::new();
    for (i, &id) in log.iter().enumerate() {
        let key = F::from_u64(id).to_u64();
        let entry = groups.entry(key).or_default();
        if entry.is_empty() {
            order.push(key);
        }
        entry.push(i);
    }

    // Parallel prefilter: evaluate the *full* locator at every distinct
    // candidate concurrently. Sound to skip nonzero candidates in the
    // serial pass below because deflation only ever removes roots.
    #[cfg(feature = "parallel")]
    let root_flags = if threads > 1 && order.len().saturating_mul(m) >= PARALLEL_MIN_WORK {
        Some(eval_candidates(coeffs, &order, threads))
    } else {
        None
    };
    #[cfg(not(feature = "parallel"))]
    let root_flags: Option<Vec<bool>> = {
        let _ = threads; // single-thread fallback: prefilter disabled
        None
    };

    let mut decoded = DecodedQuack {
        num_missing: m,
        ..DecodedQuack::default()
    };

    for (pos, key) in order.into_iter().enumerate() {
        if coeffs.is_empty() {
            break; // all roots accounted for
        }
        if let Some(flags) = &root_flags {
            if !flags[pos] {
                continue; // not a root of the full locator ⇒ never a root
            }
        }
        let x = F::from_u64(key);
        // Multiplicity of x as a locator root, dividing each instance out.
        let mut multiplicity = 0usize;
        while !coeffs.is_empty() && eval_monic(coeffs, x) == F::ZERO {
            let rem = deflate_monic(coeffs, x);
            debug_assert_eq!(rem, F::ZERO);
            multiplicity += 1;
        }
        if multiplicity == 0 {
            continue; // whole group received
        }
        let group = &groups[&key];
        if multiplicity >= group.len() {
            // Every candidate with this identifier is missing. (The strict
            // ">" case cannot arise from a well-formed difference, but if it
            // does the surplus shows up in `residual` via leftover degree —
            // here the poly was already deflated, so account directly.)
            decoded.missing.extend(group.iter().copied());
            decoded.residual += multiplicity - group.len();
        } else {
            // Some, but not all, of the identically-identified packets are
            // missing: indeterminate (§3.2).
            decoded.indeterminate.extend(group.iter().copied());
            let mut indices = group.clone();
            indices.sort_unstable();
            decoded.groups.push(IndeterminateGroup {
                indices,
                missing: multiplicity,
            });
        }
    }

    // Roots never matched by any log candidate.
    decoded.residual += coeffs.len();

    decoded.missing.sort_unstable();
    decoded.indeterminate.sort_unstable();
    decoded.groups.sort_by_key(|g| g.indices[0]);
    Ok(decoded)
}

/// Alternative decode: find the locator's roots directly instead of
/// plugging in log candidates — `O(m² log p)`, independent of the log size
/// (paper §4.3: "for large n, we can use the decoding algorithm that
/// depends only on t").
pub(crate) fn decode_difference_by_roots<F: Field>(
    power_sums: &[F],
    count: u32,
    log: &[u64],
    workspace: &NewtonWorkspace<F>,
) -> Result<DecodedQuack, DecodeError> {
    hooks::attempt();
    hooks::factor_fallback();
    let result = decode_by_roots_inner(power_sums, count, log, workspace);
    hooks::outcome(&result);
    result
}

fn decode_by_roots_inner<F: Field>(
    power_sums: &[F],
    count: u32,
    log: &[u64],
    workspace: &NewtonWorkspace<F>,
) -> Result<DecodedQuack, DecodeError> {
    let m = count as usize;
    let threshold = power_sums.len();
    if count as u64 > threshold as u64 {
        return Err(DecodeError::ThresholdExceeded {
            missing: m,
            threshold,
        });
    }
    if m == 0 {
        if power_sums.iter().any(|s| !s.is_zero()) {
            return Err(DecodeError::CountInconsistent);
        }
        return Ok(DecodedQuack::default());
    }
    let coeffs = workspace.coefficients(&power_sums[..m]);
    let roots = find_roots(&coeffs);

    let mut groups: HashMap<u64, Vec<usize>> = HashMap::with_capacity(log.len());
    for (i, &id) in log.iter().enumerate() {
        groups.entry(F::from_u64(id).to_u64()).or_default().push(i);
    }

    let mut decoded = DecodedQuack {
        num_missing: m,
        ..DecodedQuack::default()
    };
    let mut matched = 0usize;
    for (root, mult) in roots {
        matched += mult;
        match groups.get(&root.to_u64()) {
            Some(group) if mult >= group.len() => {
                decoded.missing.extend(group.iter().copied());
                decoded.residual += mult - group.len();
            }
            Some(group) => {
                decoded.indeterminate.extend(group.iter().copied());
                decoded.groups.push(IndeterminateGroup {
                    indices: group.clone(),
                    missing: mult,
                });
            }
            // A root with no logged candidate: the log was over-pruned or
            // the difference is corrupt.
            None => decoded.residual += mult,
        }
    }
    // Locator factors that did not split into roots (corrupt difference).
    decoded.residual += m - matched;

    decoded.missing.sort_unstable();
    decoded.indeterminate.sort_unstable();
    decoded.groups.sort_by_key(|g| g.indices[0]);
    Ok(decoded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power_sum::{PowerSumQuack, Quack32};

    fn diff_of(sent: &[u64], received: &[u64], t: usize) -> PowerSumQuack<sidecar_galois::Fp32> {
        let mut s = Quack32::new(t);
        let mut r = Quack32::new(t);
        for &id in sent {
            s.insert(id);
        }
        for &id in received {
            r.insert(id);
        }
        s.difference(&r)
    }

    #[test]
    fn fate_queries() {
        let sent = [10u64, 20, 30, 40];
        let diff = diff_of(&sent, &[10, 30], 4);
        let d = diff.decode_with_log(&sent).unwrap();
        assert_eq!(d.fate(0), PacketFate::Received);
        assert_eq!(d.fate(1), PacketFate::Missing);
        assert_eq!(d.fate(2), PacketFate::Received);
        assert_eq!(d.fate(3), PacketFate::Missing);
        assert!(d.is_fully_determined());
        assert_eq!(d.num_missing(), 2);
    }

    #[test]
    fn residual_when_log_is_incomplete() {
        // Sender pruned its log too aggressively: one missing id absent.
        let sent = [1u64, 2, 3];
        let diff = diff_of(&sent, &[1], 4);
        let truncated_log = [1u64, 2];
        let d = diff.decode_with_log(&truncated_log).unwrap();
        assert_eq!(d.missing_values(&truncated_log), vec![2]);
        assert_eq!(d.residual(), 1);
        assert!(!d.is_fully_determined());
    }

    #[test]
    fn empty_log_all_residual() {
        let diff = diff_of(&[5, 6], &[], 4);
        let d = diff.decode_with_log(&[]).unwrap();
        assert!(d.missing().is_empty());
        assert_eq!(d.residual(), 2);
    }

    #[test]
    fn count_inconsistency_detected() {
        // Craft a difference with zero count but nonzero sums by removing a
        // different id than was inserted.
        let mut q = Quack32::new(2);
        q.insert(111);
        q.remove(222);
        assert_eq!(q.count(), 0);
        let err = q.decode_with_log(&[111, 222]).unwrap_err();
        assert_eq!(err, DecodeError::CountInconsistent);
        assert!(err.to_string().contains("wraparound"));
    }

    #[test]
    fn threshold_error_display() {
        let e = DecodeError::ThresholdExceeded {
            missing: 30,
            threshold: 20,
        };
        assert_eq!(
            e.to_string(),
            "30 packets missing but quACK threshold is 20"
        );
    }

    #[test]
    fn collision_between_distinct_packets() {
        // Two *different* packets whose identifiers collide mod p: ids p+4
        // and 4 for p = 2^32 - 5 map to the same field element.
        const P: u64 = 4_294_967_291;
        let sent = [P + 4, 4, 1000];
        // The packet with id 4 is lost; the collision partner arrived.
        let diff = diff_of(&sent, &[P + 4, 1000], 3);
        let d = diff.decode_with_log(&sent).unwrap();
        // Decoder cannot tell which of log[0]/log[1] is missing.
        assert_eq!(d.indeterminate(), &[0, 1]);
        assert!(d.missing().is_empty());
        assert_eq!(d.num_missing(), 1);
    }

    #[test]
    fn factoring_decoder_agrees_with_plugging() {
        let sent: Vec<u64> = (0..200u64).map(|i| i * 48_271 + 11).collect();
        for drop_every in [3usize, 7, 50] {
            let received: Vec<u64> = sent
                .iter()
                .enumerate()
                .filter(|(i, _)| i % drop_every != 0)
                .map(|(_, &v)| v)
                .collect();
            let missing = sent.len() - received.len();
            let diff = diff_of(&sent, &received, missing.max(1));
            let plug = diff.decode_with_log(&sent).unwrap();
            let fact = diff.decode_with_log_by_factoring(&sent).unwrap();
            assert_eq!(plug, fact, "drop_every {drop_every}");
        }
    }

    #[test]
    fn factoring_decoder_handles_collisions_and_duplicates() {
        const P: u64 = 4_294_967_291;
        // Collision (P+4 vs 4) with one copy missing, plus a duplicate id.
        let sent = [P + 4, 4, 9, 9, 1000];
        let diff = diff_of(&sent, &[P + 4, 9, 1000], 4);
        let plug = diff.decode_with_log(&sent).unwrap();
        let fact = diff.decode_with_log_by_factoring(&sent).unwrap();
        assert_eq!(plug, fact);
        // Both collision partners AND both duplicate copies are ambiguous.
        assert_eq!(fact.indeterminate(), &[0, 1, 2, 3]);
        assert!(fact.missing().is_empty());
        assert_eq!(fact.num_missing(), 2);
    }

    #[test]
    fn factoring_decoder_residual_and_errors() {
        // Residual: missing id absent from the log.
        let diff = diff_of(&[1, 2, 3], &[1], 4);
        let fact = diff.decode_with_log_by_factoring(&[1, 2]).unwrap();
        assert_eq!(fact.missing_values(&[1, 2]), vec![2]);
        assert_eq!(fact.residual(), 1);
        // Threshold exceeded.
        let diff = diff_of(&(1..=10).collect::<Vec<u64>>(), &[], 3);
        assert!(matches!(
            diff.decode_with_log_by_factoring(&[1, 2, 3]),
            Err(DecodeError::ThresholdExceeded { .. })
        ));
        // Count inconsistency.
        let mut q = Quack32::new(2);
        q.insert(111);
        q.remove(222);
        assert_eq!(
            q.decode_with_log_by_factoring(&[111]).unwrap_err(),
            DecodeError::CountInconsistent
        );
        // Empty difference.
        let empty = diff_of(&[5, 6], &[5, 6], 2);
        assert!(empty
            .decode_with_log_by_factoring(&[5, 6])
            .unwrap()
            .missing()
            .is_empty());
    }

    #[test]
    fn decode_exact_threshold_boundary() {
        // m == t exactly: must still decode.
        let sent: Vec<u64> = (1..=25).collect();
        let received: Vec<u64> = sent[5..].to_vec();
        let diff = diff_of(&sent, &received, 5);
        let d = diff.decode_with_log(&sent).unwrap();
        assert_eq!(d.missing_values(&sent), vec![1, 2, 3, 4, 5]);
    }
}
