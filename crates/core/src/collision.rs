//! Collision / indeterminacy probability (paper §4.2, Table 3).
//!
//! "The collision probability is the probability that a randomly-chosen
//! b-bit identifier in a list of n packets maps to more than one packet in
//! that list. … If we assume that identifiers are randomly-distributed,
//! which is the case in randomly-encrypted QUIC packet headers, this
//! probability is equal to `1 − (1 − 1/2^b)^(n−1)`."
//!
//! Table 3 (n = 1000):
//!
//! | bits | 8    | 16    | 24      | 32      |
//! |------|------|-------|---------|---------|
//! | prob | 0.98 | 0.015 | 6.0e-05 | 2.3e-07 |

/// Probability that a randomly-chosen `b`-bit identifier among `n` packets
/// collides with at least one other packet's identifier: `1 − (1 −
/// 2^{−b})^{n−1}`.
///
/// Computed via `ln(1 − x)` so the tiny-probability regime (e.g. `b = 64`)
/// does not underflow to zero prematurely.
pub fn collision_probability(bits: u32, n: u64) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let q = 0.5f64.powi(bits as i32); // 1 / 2^b
    -((n - 1) as f64 * (-q).ln_1p()).exp_m1()
}

/// The paper's headline indeterminacy figure, as a percentage: with
/// `b = 32` and `n = 1000`, "0.000023% chance that a candidate packet has an
/// indeterminate result" (§1, §4).
pub fn collision_percentage(bits: u32, n: u64) -> f64 {
    collision_probability(bits, n) * 100.0
}

/// Expected number of log entries involved in at least one collision, out
/// of `n`: `n · collision_probability(b, n)`. Useful when sizing reorder
/// buffers for indeterminate packets.
pub fn expected_colliding_packets(bits: u32, n: u64) -> f64 {
    n as f64 * collision_probability(bits, n)
}

/// Monte-Carlo estimate of the collision probability using a caller-seeded
/// pseudo-random stream (deterministic; no external RNG dependency).
///
/// Draws `n` identifiers uniformly from `[0, 2^bits)` per trial and checks
/// whether the first one collides with any other — matching the "randomly
/// chosen identifier" framing. Used by tests and the Table 3 harness to
/// validate the closed form.
pub fn collision_probability_monte_carlo(bits: u32, n: u64, trials: u64, seed: u64) -> f64 {
    assert!(bits <= 64 && n >= 1);
    let mut rng = SplitMix64::new(seed);
    let mask = if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    let mut hits = 0u64;
    for _ in 0..trials {
        let probe = rng.next() & mask;
        let mut collided = false;
        for _ in 1..n {
            if rng.next() & mask == probe {
                collided = true;
                // Keep drawing to keep the stream length fixed per trial?
                // Not required for correctness; break for speed.
                break;
            }
        }
        hits += collided as u64;
    }
    hits as f64 / trials as f64
}

/// SplitMix64: a tiny, high-quality, dependency-free PRNG (public domain,
/// Steele et al.). Also reused by the identifier generator in [`crate::id`].
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly pseudo-random bits.
    #[inline]
    #[allow(clippy::should_implement_trait)] // deliberate: not an Iterator
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 3 of the paper, to the printed precision.
    #[test]
    fn table3_values() {
        let cases = [(8u32, 0.98), (16, 0.015), (24, 6.0e-05), (32, 2.3e-07)];
        for (bits, expected) in cases {
            let p = collision_probability(bits, 1000);
            let rel = (p - expected).abs() / expected;
            assert!(rel < 0.05, "b={bits}: got {p:e}, paper {expected:e}");
        }
    }

    #[test]
    fn headline_percentage() {
        // §1: "0.000023% chance that a candidate packet has an indeterminate
        // result" at b=32, n=1000.
        let pct = collision_percentage(32, 1000);
        assert!((pct - 2.3e-05).abs() / 2.3e-05 < 0.02, "{pct:e}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(collision_probability(32, 0), 0.0);
        assert_eq!(collision_probability(32, 1), 0.0);
        assert!(collision_probability(1, 1000) > 0.999999);
        // 64-bit: tiny but strictly positive (no underflow to zero).
        let p64 = collision_probability(64, 1000);
        assert!(p64 > 0.0 && p64 < 1e-15);
    }

    #[test]
    fn monotone_in_n_and_bits() {
        assert!(collision_probability(16, 2000) > collision_probability(16, 1000));
        assert!(collision_probability(16, 1000) > collision_probability(24, 1000));
    }

    #[test]
    fn monte_carlo_agrees_with_closed_form() {
        // b = 8, n = 50: p = 1 - (1 - 1/256)^49 ≈ 0.175. 20k trials gives
        // ~±0.008 at 3σ.
        let analytic = collision_probability(8, 50);
        let mc = collision_probability_monte_carlo(8, 50, 20_000, 0xC0FFEE);
        assert!(
            (mc - analytic).abs() < 0.01,
            "analytic {analytic}, monte carlo {mc}"
        );
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next(), c.next());
    }
}
