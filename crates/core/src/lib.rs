//! The **quACK** ("quick ACK"): a concise sketch of a multiset of packet
//! identifiers that lets a sender holding the list of candidate packets
//! efficiently decode exactly which of them a receiver has *not* received.
//!
//! This crate reproduces the core contribution of
//! ["Sidecar: In-Network Performance Enhancements in the Age of Paranoid
//! Transport Protocols" (HotNets '22)](https://doi.org/10.1145/3563766.3564113):
//!
//! > *Construction:* `R → quACK` — *Decoding:* `S + quACK → S \ R` (Fig. 2)
//!
//! where `S` is the multiset of sent identifiers and `R ⊆ S` the received
//! ones. Identifiers are `b`-bit integers sampled from randomly-encrypted
//! packet headers, so they look uniformly random and carry no protocol
//! semantics — that is what lets a middlebox acknowledge end-to-end-encrypted
//! packets it cannot parse.
//!
//! # Quick start
//!
//! ```
//! use sidecar_quack::{PowerSumQuack, Quack32};
//!
//! // Receiver side: accumulate each arriving identifier.
//! let mut receiver = Quack32::new(20); // threshold t = 20
//! for id in [0xDEAD_BEEF_u64, 0x1234_5678, 0x0BAD_CAFE] {
//!     receiver.insert(id);
//! }
//!
//! // Sender side: mirror sums over everything sent, then decode.
//! let sent: Vec<u64> = vec![0xDEAD_BEEF, 0x1234_5678, 0xFEED_F00D, 0x0BAD_CAFE];
//! let mut sender = Quack32::new(20);
//! for &id in &sent {
//!     sender.insert(id);
//! }
//!
//! let decoded = sender.difference(&receiver).decode_with_log(&sent).unwrap();
//! assert_eq!(decoded.missing_values(&sent), vec![0xFEED_F00D]);
//! ```
//!
//! # Modules
//!
//! * [`power_sum`] — the power-sum quACK itself ([`PowerSumQuack`]), generic
//!   over the identifier width via `sidecar_galois::Field`.
//! * [`decode`] — the decoder output ([`DecodedQuack`]) with
//!   missing/indeterminate classification (paper §3.2).
//! * [`strawman`] — the two strawman quACKs the paper compares against
//!   (§1, Table 2): echo-everything and hash-and-search.
//! * [`sha256`] — from-scratch SHA-256 backing Strawman 2 (no hash crate in
//!   the offline dependency set).
//! * [`wire`] — the bit-exact wire codec (`b·t + c` bits, §4.2 "QuACK
//!   Size").
//! * [`collision`] — collision/indeterminacy probability math (§4.2,
//!   Table 3).
//! * [`id`] — extracting pseudo-random identifiers from opaque header bytes.
//! * [`dynamic`] — runtime-width quACKs for negotiated identifier widths.
//! * [`iblt`] — an invertible Bloom lookup table, the alternative
//!   set-difference sketch from the paper's straggler-identification
//!   citation (an answer to §5's "what similar protocol-agnostic digests
//!   could we design?").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collision;
pub mod decode;
pub mod dynamic;
pub mod iblt;
pub mod id;
pub mod power_sum;
pub mod sha256;
pub mod strawman;
pub mod wire;

pub use decode::{
    default_decode_threads, DecodeError, DecodedQuack, IndeterminateGroup, PacketFate,
};
pub use dynamic::{DynError, DynQuack};
pub use power_sum::{PowerSumQuack, Quack16, Quack24, Quack32, Quack64, QuackMonty64};
pub use wire::{WireError, WireFormat, DEFAULT_COUNT_BITS};
