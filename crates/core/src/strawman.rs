//! The two strawman quACKs the paper compares against (§1, §4.1, Table 2).
//!
//! * **Strawman 1** ([`EchoQuack`]) "echo\[es\] the identifier of every
//!   received packet to the sender, who calculates a set difference with its
//!   sent packets to find the missing packets. This approach uses
//!   extraordinary bandwidth." — `b·n` bits on the wire.
//! * **Strawman 2** ([`HashQuack`]) "returns a hash of a sorted
//!   concatenation of all the received packets, and the sender hashes every
//!   subset of sent packets of the same size until it finds the correct
//!   subset. This approach can easily become computationally infeasible." —
//!   `256 + c` bits on the wire but super-polynomial decode time.
//!
//! Both are fully functional (Strawman 2's decoder takes a work budget so
//! tests can exercise it at small `n`), and both expose the cost model used
//! to regenerate Table 2.

use crate::sha256::Sha256;
use std::collections::HashMap;

/// Strawman 1: the receiver echoes every received identifier verbatim.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EchoQuack {
    ids: Vec<u64>,
    /// Identifier width, for the wire-size accounting.
    bits: u32,
}

impl EchoQuack {
    /// Creates an empty echo quACK for `bits`-bit identifiers.
    pub fn new(bits: u32) -> Self {
        EchoQuack {
            ids: Vec::new(),
            bits,
        }
    }

    /// Records one received identifier.
    #[inline]
    pub fn insert(&mut self, id: u64) {
        self.ids.push(id);
    }

    /// Number of identifiers accumulated.
    pub fn count(&self) -> usize {
        self.ids.len()
    }

    /// The echoed identifiers.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Wire size in bits: `b · n` (Table 2 row 1).
    pub fn wire_bits(&self) -> usize {
        self.bits as usize * self.ids.len()
    }

    /// Multiset difference: identifiers in `log` not covered by the echoes,
    /// with multiplicity, in log order.
    pub fn decode_missing(&self, log: &[u64]) -> Vec<u64> {
        let mut received: HashMap<u64, usize> = HashMap::with_capacity(self.ids.len());
        for &id in &self.ids {
            *received.entry(id).or_default() += 1;
        }
        let mut missing = Vec::new();
        for &id in log {
            match received.get_mut(&id) {
                Some(n) if *n > 0 => *n -= 1,
                _ => missing.push(id),
            }
        }
        missing
    }
}

/// Strawman 2: a 256-bit hash over the sorted received identifiers plus a
/// count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HashQuack {
    ids: Vec<u64>,
}

impl HashQuack {
    /// Creates an empty hash quACK.
    pub fn new() -> Self {
        HashQuack::default()
    }

    /// Records one received identifier.
    #[inline]
    pub fn insert(&mut self, id: u64) {
        self.ids.push(id);
    }

    /// Number of identifiers accumulated.
    pub fn count(&self) -> usize {
        self.ids.len()
    }

    /// The quACK payload: SHA-256 over the sorted concatenation.
    ///
    /// Sorting happens here (at emission), keeping the per-packet insert
    /// cost to a push — the configuration whose construction time Table 2
    /// reports in nanoseconds.
    pub fn digest(&self) -> [u8; 32] {
        let mut sorted = self.ids.clone();
        sorted.sort_unstable();
        hash_sorted(&sorted)
    }

    /// Wire size in bits: `256 + c` (Table 2 row 2).
    pub fn wire_bits(count_bits: u32) -> usize {
        256 + count_bits as usize
    }

    /// Brute-force decode: find which `log.len() - count` packets are
    /// missing by hashing candidate received-subsets of `log` until one
    /// matches `digest`.
    ///
    /// Subsets are enumerated in combinadic order over the *missing* side
    /// (choose `m` indices to drop). Each candidate costs one sort-free
    /// merge plus one SHA-256 over `8·(n-m)` bytes. Returns the missing
    /// indices, or `None` if `max_candidates` subsets were tried without a
    /// match (the expected case for realistic `n`, `m` — this is the
    /// "≈7e+06 days" Table 2 row).
    pub fn decode_missing(
        &self,
        log: &[u64],
        digest: &[u8; 32],
        max_candidates: u64,
    ) -> Option<Vec<usize>> {
        let n = log.len();
        let m = n.checked_sub(self.count_for_decode(log))?;
        // Sort log once, remembering original indices.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by_key(|&i| log[i]);
        let sorted: Vec<u64> = order.iter().map(|&i| log[i]).collect();

        let mut tried = 0u64;
        let mut found = None;
        for_each_combination(n, m, &mut |drop| {
            if found.is_some() || tried >= max_candidates {
                return false;
            }
            tried += 1;
            let candidate: Vec<u64> = sorted
                .iter()
                .enumerate()
                .filter(|(i, _)| !drop.contains(i))
                .map(|(_, &v)| v)
                .collect();
            if &hash_sorted(&candidate) == digest {
                let mut missing: Vec<usize> = drop.iter().map(|&i| order[i]).collect();
                missing.sort_unstable();
                found = Some(missing);
                return false;
            }
            true
        });
        found
    }

    fn count_for_decode(&self, _log: &[u64]) -> usize {
        self.ids.len()
    }
}

/// Hashes an already-sorted identifier list the way [`HashQuack`] does.
pub fn hash_sorted(sorted_ids: &[u64]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(&(sorted_ids.len() as u64).to_be_bytes());
    for &id in sorted_ids {
        h.update(&id.to_be_bytes());
    }
    h.finalize()
}

/// Calls `f` with each `m`-combination of `0..n` (lexicographic) until `f`
/// returns `false` or combinations are exhausted.
fn for_each_combination(n: usize, m: usize, f: &mut dyn FnMut(&[usize]) -> bool) {
    if m > n {
        return;
    }
    let mut idx: Vec<usize> = (0..m).collect();
    loop {
        if !f(&idx) {
            return;
        }
        // Advance to the next combination.
        let mut i = m;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if idx[i] != i + n - m {
                break;
            }
            if i == 0 {
                return;
            }
        }
        idx[i] += 1;
        for j in i + 1..m {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Natural log of the binomial coefficient `C(n, m)`.
pub fn ln_binomial(n: u64, m: u64) -> f64 {
    if m > n {
        return f64::NEG_INFINITY;
    }
    let m = m.min(n - m);
    (1..=m)
        .map(|i| (((n - m + i) as f64) / (i as f64)).ln())
        .sum()
}

/// Expected Strawman-2 decode time in seconds: half the subsets, one hash
/// each.
///
/// `per_hash_ns` should be a measured cost of hashing one candidate subset
/// (≈ `8·(n-m)` bytes through SHA-256 plus the merge).
pub fn estimated_decode_seconds(n: u64, m: u64, per_hash_ns: f64) -> f64 {
    // Expected candidates = C(n, m) / 2.
    let ln_candidates = ln_binomial(n, m) - core::f64::consts::LN_2;
    (ln_candidates + (per_hash_ns * 1e-9).ln()).exp()
}

/// [`estimated_decode_seconds`] converted to days (Table 2 reports days).
pub fn estimated_decode_days(n: u64, m: u64, per_hash_ns: f64) -> f64 {
    estimated_decode_seconds(n, m, per_hash_ns) / 86_400.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_decode_finds_missing_with_multiplicity() {
        let mut q = EchoQuack::new(32);
        for id in [1u64, 2, 2, 3] {
            q.insert(id);
        }
        let log = [1u64, 2, 2, 2, 3, 4];
        assert_eq!(q.decode_missing(&log), vec![2, 4]);
        assert_eq!(q.count(), 4);
    }

    #[test]
    fn echo_wire_size_is_b_times_n() {
        let mut q = EchoQuack::new(32);
        for id in 0..1000u64 {
            q.insert(id);
        }
        assert_eq!(q.wire_bits(), 32_000); // Table 2: b·n = 32000
    }

    #[test]
    fn echo_nothing_missing() {
        let mut q = EchoQuack::new(16);
        let log = [5u64, 6, 7];
        for &id in &log {
            q.insert(id);
        }
        assert!(q.decode_missing(&log).is_empty());
    }

    #[test]
    fn hash_quack_wire_size() {
        assert_eq!(HashQuack::wire_bits(16), 272); // Table 2: 256 + c = 272
    }

    #[test]
    fn hash_decode_small_case() {
        let log: Vec<u64> = (0..10).map(|i| i * 37 + 5).collect();
        let mut q = HashQuack::new();
        for (i, &id) in log.iter().enumerate() {
            if i != 3 && i != 8 {
                q.insert(id);
            }
        }
        let digest = q.digest();
        let missing = q.decode_missing(&log, &digest, 1_000_000).unwrap();
        assert_eq!(missing, vec![3, 8]);
    }

    #[test]
    fn hash_decode_nothing_missing() {
        let log: Vec<u64> = (0..6).collect();
        let mut q = HashQuack::new();
        for &id in &log {
            q.insert(id);
        }
        let digest = q.digest();
        assert_eq!(
            q.decode_missing(&log, &digest, 10).unwrap(),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn hash_decode_respects_budget() {
        let log: Vec<u64> = (0..30).collect();
        let mut q = HashQuack::new();
        for &id in &log[..20] {
            q.insert(id);
        }
        let digest = q.digest();
        // C(30,10) ≈ 30 M subsets; a budget of 10 must give up.
        assert_eq!(q.decode_missing(&log, &digest, 10), None);
    }

    #[test]
    fn hash_insert_order_does_not_matter() {
        let mut a = HashQuack::new();
        let mut b = HashQuack::new();
        for id in [9u64, 1, 5] {
            a.insert(id);
        }
        for id in [5u64, 9, 1] {
            b.insert(id);
        }
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn hash_distinguishes_multiplicity() {
        let mut a = HashQuack::new();
        a.insert(7);
        let mut b = HashQuack::new();
        b.insert(7);
        b.insert(7);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn combinations_enumerated_exactly_once() {
        let mut seen = Vec::new();
        for_each_combination(5, 3, &mut |c| {
            seen.push(c.to_vec());
            true
        });
        assert_eq!(seen.len(), 10); // C(5,3)
        let mut dedup = seen.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
        assert_eq!(seen[0], vec![0, 1, 2]);
        assert_eq!(seen[9], vec![2, 3, 4]);
    }

    #[test]
    fn combinations_edge_cases() {
        let mut count = 0;
        for_each_combination(4, 0, &mut |c| {
            assert!(c.is_empty());
            count += 1;
            true
        });
        assert_eq!(count, 1); // the empty combination
        let mut count = 0;
        for_each_combination(3, 4, &mut |_| {
            count += 1;
            true
        });
        assert_eq!(count, 0);
        let mut count = 0;
        for_each_combination(3, 3, &mut |c| {
            assert_eq!(c, &[0, 1, 2]);
            count += 1;
            true
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn ln_binomial_known_values() {
        assert!((ln_binomial(5, 2) - 10f64.ln()).abs() < 1e-12);
        assert!((ln_binomial(10, 0)).abs() < 1e-12);
        assert_eq!(ln_binomial(3, 5), f64::NEG_INFINITY);
        // C(1000, 20) ≈ 3.39e41
        let v = ln_binomial(1000, 20) / core::f64::consts::LN_10;
        assert!((41.0..42.0).contains(&v), "log10 C(1000,20) = {v}");
    }

    #[test]
    fn estimated_decode_is_astronomical_for_paper_params() {
        // The headline claim: utterly infeasible at n=1000, m=20.
        let days = estimated_decode_days(1000, 20, 400.0);
        assert!(days > 1e6, "must exceed the paper's ≈7e+06 days: {days}");
    }
}
