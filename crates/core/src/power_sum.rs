//! The power-sum quACK (paper §3.1–3.2).
//!
//! Both endpoints of a sidecar segment keep `t` running power sums of the
//! identifiers they have sent/received, plus a count. Updates are amortized
//! into the per-packet path ("the sender updates the sums before sending
//! each packet, and the receiver updates them when receiving each packet",
//! §3.2), so constructing a quACK is O(t) per packet and *emitting* one is
//! just a copy. All arithmetic is modulo the largest prime expressible in
//! `b` bits.

use crate::decode::{self, decode_difference, DecodeError, DecodedQuack};
use sidecar_galois::{Field, Fp16, Fp24, Fp32, Fp64, Monty64, NewtonWorkspace, WorkspacePool};

/// A power-sum quACK over the field `F` (identifier width `F::BITS`).
///
/// The same type serves three roles:
///
/// * the **receiver state** — insert every received identifier;
/// * the **sender mirror** — insert every sent identifier (and
///   [`remove`](Self::remove) identifiers given up on, §3.3 "Resetting the
///   threshold");
/// * the **difference** — [`difference`](Self::difference) of the two, whose
///   power sums are those of the missing multiset `S \ R` and whose count is
///   the number of missing packets `m`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PowerSumQuack<F: Field> {
    /// `power_sums[i]` is the (i+1)-th power sum of the accumulated
    /// identifiers.
    power_sums: Vec<F>,
    /// Wrapping count of accumulated identifiers. On the wire only the low
    /// `c` bits travel (§3.2: "the count itself can wraparound").
    count: u32,
    /// The most recently accumulated identifier, if any. Matches the
    /// authors' released library; used by sidecar protocols as a cheap
    /// freshness/ordering hint and exercised by tests. Not transmitted.
    last_value: Option<u64>,
}

impl<F: Field> PowerSumQuack<F> {
    /// Creates an empty quACK able to decode up to `threshold` missing
    /// packets (paper parameter `t`).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero — a quACK with no power sums cannot
    /// decode anything.
    pub fn new(threshold: usize) -> Self {
        assert!(threshold > 0, "quACK threshold must be at least 1");
        PowerSumQuack {
            power_sums: vec![F::ZERO; threshold],
            count: 0,
            last_value: None,
        }
    }

    /// The threshold `t`: the maximum number of missing packets this quACK
    /// can decode.
    pub fn threshold(&self) -> usize {
        self.power_sums.len()
    }

    /// The identifier width `b` in bits.
    pub fn bits(&self) -> u32 {
        F::BITS
    }

    /// The wrapping count of accumulated identifiers.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// The most recently accumulated identifier (reduced mod `p`), if any.
    pub fn last_value(&self) -> Option<u64> {
        self.last_value
    }

    /// The raw power sums (canonical representatives), lowest power first.
    pub fn power_sums(&self) -> impl Iterator<Item = u64> + '_ {
        self.power_sums.iter().map(|s| s.to_u64())
    }

    /// Accumulates one identifier: `power_sums[i] += x^(i+1)` for all `i`.
    ///
    /// This is the ~100 ns-per-packet amortized construction cost the paper
    /// reports (§1, §4.2): `t` multiplications and additions.
    #[inline]
    pub fn insert(&mut self, id: u64) {
        let x = F::from_u64(id);
        let mut pow = F::ONE;
        for sum in self.power_sums.iter_mut() {
            pow *= x;
            *sum += pow;
        }
        self.count = self.count.wrapping_add(1);
        self.last_value = Some(x.to_u64());
    }

    /// Removes one identifier: the exact inverse of [`insert`](Self::insert)
    /// (except for `last_value`, which is left pointing at the most recent
    /// insert).
    ///
    /// Senders call this when they conclude a missing packet will never be
    /// received, so the threshold applies only to packets missing *since the
    /// last quACK* (§3.3 "Resetting the threshold").
    #[inline]
    pub fn remove(&mut self, id: u64) {
        let x = F::from_u64(id);
        let mut pow = F::ONE;
        for sum in self.power_sums.iter_mut() {
            pow *= x;
            *sum -= pow;
        }
        self.count = self.count.wrapping_sub(1);
    }

    /// Accumulates a batch of identifiers, equivalent to calling
    /// [`insert`](Self::insert) for each in order but substantially faster
    /// for bursts: identifiers are converted into the field (for 64-bit
    /// identifiers, into the *Montgomery domain*) once per batch, and the
    /// `t` running powers advance with a lane-batched strength-reduced
    /// ladder whose multiplies are independent across identifiers, so the
    /// CPU pipelines them instead of serializing on one `pow *= x` chain
    /// (see `sidecar_galois::batch`).
    pub fn insert_batch(&mut self, ids: &[u64]) {
        let Some(&last) = ids.last() else { return };
        F::fold_power_sums(&mut self.power_sums, ids, false);
        // `as u32` truncation == repeated wrapping_add(1): both are mod 2^32.
        self.count = self.count.wrapping_add(ids.len() as u32);
        self.last_value = Some(F::from_u64(last).to_u64());
    }

    /// Removes a batch of identifiers, equivalent to calling
    /// [`remove`](Self::remove) for each in order (including leaving
    /// `last_value` untouched), with the same batching wins as
    /// [`insert_batch`](Self::insert_batch).
    pub fn remove_batch(&mut self, ids: &[u64]) {
        if ids.is_empty() {
            return;
        }
        F::fold_power_sums(&mut self.power_sums, ids, true);
        self.count = self.count.wrapping_sub(ids.len() as u32);
    }

    /// Returns the difference quACK whose power sums describe the multiset
    /// of identifiers accumulated by `self` but not by `received` — i.e.
    /// `S \ R` when `self` mirrors the sent multiset and `received` is the
    /// receiver's quACK.
    ///
    /// Because power sums are cumulative, a *lost* quACK costs nothing: the
    /// next difference still describes everything missing (§3.3 "Dropped
    /// quACKs").
    ///
    /// # Panics
    ///
    /// Panics if the two quACKs disagree on the threshold; sidecar endpoints
    /// negotiate `t` before quACKing (§3.2).
    pub fn difference(&self, received: &Self) -> Self {
        assert_eq!(
            self.threshold(),
            received.threshold(),
            "mismatched quACK thresholds"
        );
        let power_sums = self
            .power_sums
            .iter()
            .zip(&received.power_sums)
            .map(|(&a, &b)| a - b)
            .collect();
        PowerSumQuack {
            power_sums,
            count: self.count.wrapping_sub(received.count),
            last_value: self.last_value,
        }
    }

    /// Decodes this quACK **as a difference** against the sender's log of
    /// candidate identifiers, classifying every log entry as received,
    /// missing, or indeterminate.
    ///
    /// `self.count()` is interpreted as the number of missing packets `m`.
    /// Fails with [`DecodeError::ThresholdExceeded`] if `m > t` (§3.2: "if
    /// t < m, decoding fails because there are not enough equations").
    pub fn decode_with_log(&self, log: &[u64]) -> Result<DecodedQuack, DecodeError> {
        let ws = NewtonWorkspace::new(self.threshold().min(self.count as usize));
        self.decode_with_log_and_workspace(log, &ws)
    }

    /// Like [`decode_with_log`](Self::decode_with_log) but reusing a
    /// [`NewtonWorkspace`], which amortizes the modular-inverse table across
    /// the many decodes of a long-lived connection.
    pub fn decode_with_log_and_workspace(
        &self,
        log: &[u64],
        workspace: &NewtonWorkspace<F>,
    ) -> Result<DecodedQuack, DecodeError> {
        decode_difference(&self.power_sums, self.count, log, workspace)
    }

    /// Like [`decode_with_log`](Self::decode_with_log) but fanning the
    /// candidate-root evaluation — the `O(n·m)` dominant decode cost (paper
    /// §3.2) — out over all available cores.
    ///
    /// The result is bit-identical to the serial decoder: the threads only
    /// evaluate the full locator at each distinct candidate (deflation
    /// divides by `(x − r)`, so quotient roots are a subset of the
    /// original's — a candidate rejected up front can never become a root),
    /// and the deflation/classification pass stays serial and ordered.
    /// With the `parallel` feature disabled (or on one-core machines) this
    /// *is* the serial decoder.
    pub fn decode_with_log_parallel(&self, log: &[u64]) -> Result<DecodedQuack, DecodeError> {
        let ws = NewtonWorkspace::new(self.threshold().min(self.count as usize));
        decode::decode_difference_parallel(
            &self.power_sums,
            self.count,
            log,
            &ws,
            decode::default_decode_threads(),
        )
    }

    /// Like [`decode_with_log_parallel`](Self::decode_with_log_parallel)
    /// but drawing the Newton workspace *and* the locator coefficient
    /// buffer from a shared [`WorkspacePool`], so steady-state decoding
    /// allocates nothing. This is the hot-path decoder: batch consumers
    /// (and the bench harness) decode thousands of differences against one
    /// pool sized for the negotiated threshold.
    ///
    /// # Panics
    ///
    /// Panics if the pool's `max_m` is smaller than
    /// `min(self.threshold(), self.count())`.
    pub fn decode_with_log_pooled(
        &self,
        log: &[u64],
        pool: &WorkspacePool<F>,
    ) -> Result<DecodedQuack, DecodeError> {
        decode::decode_difference_pooled(
            &self.power_sums,
            self.count,
            log,
            pool,
            decode::default_decode_threads(),
        )
    }

    /// Like [`decode_with_log`](Self::decode_with_log) but finding the
    /// locator's roots by polynomial factoring instead of candidate
    /// plugging — `O(t² log p)` regardless of the log size, the §4.3
    /// "decoding algorithm that depends only on t". Prefer this when the
    /// log is very large (see the `decoding` bench for the crossover).
    pub fn decode_with_log_by_factoring(&self, log: &[u64]) -> Result<DecodedQuack, DecodeError> {
        let ws = NewtonWorkspace::new(self.threshold().min(self.count as usize));
        decode::decode_difference_by_roots(&self.power_sums, self.count, log, &ws)
    }

    /// Decodes the difference quACK into missing *identifier values* (with
    /// multiplicities) without consulting any log — the pure form of §4.3's
    /// "decoding algorithm that depends only on t": `O(t² log p)` total.
    ///
    /// The caller maps identifiers back to packets with whatever index it
    /// already maintains (sidecar consumers keep an id→packet map
    /// incrementally). Identifiers are returned as canonical field
    /// representatives, sorted ascending. A well-formed difference always
    /// splits into exactly `m` roots; if the recovered multiplicities fall
    /// short (the locator has an irreducible factor — only possible for a
    /// corrupt difference, e.g. a full count wraparound or tampered sums),
    /// this returns [`DecodeError::CountInconsistent`] rather than silently
    /// under-reporting.
    pub fn decode_missing_identifiers(&self) -> Result<Vec<(u64, usize)>, DecodeError> {
        let m = self.count as usize;
        if self.count as u64 > self.threshold() as u64 {
            return Err(DecodeError::ThresholdExceeded {
                missing: m,
                threshold: self.threshold(),
            });
        }
        if m == 0 {
            if self.power_sums.iter().any(|s| !s.is_zero()) {
                return Err(DecodeError::CountInconsistent);
            }
            return Ok(Vec::new());
        }
        let ws = NewtonWorkspace::new(m);
        let coeffs = ws.coefficients(&self.power_sums[..m]);
        let roots = sidecar_galois::factor::find_roots(&coeffs);
        if sidecar_galois::factor::total_root_multiplicity(&roots) < m {
            return Err(DecodeError::CountInconsistent);
        }
        Ok(roots
            .into_iter()
            .map(|(root, mult)| (root.to_u64(), mult))
            .collect())
    }

    /// Convenience composition: `self.difference(received)` then decode.
    pub fn decode_against(
        &self,
        received: &Self,
        log: &[u64],
    ) -> Result<DecodedQuack, DecodeError> {
        self.difference(received).decode_with_log(log)
    }

    /// Combines two quACKs into the quACK of the multiset **union** of
    /// their observations: power sums add elementwise, counts add
    /// (wrapping).
    ///
    /// This answers one of the paper's §5 open questions — "how would a
    /// proxy interact with multipath transport protocols?" — for the
    /// observation side: vantage points on parallel subpaths each quACK
    /// what they saw, and the consumer combines them before differencing
    /// against its mirror, provided each packet crosses exactly one
    /// vantage point (ECMP-style splitting).
    ///
    /// # Panics
    ///
    /// Panics if the thresholds differ.
    pub fn combine(&self, other: &Self) -> Self {
        assert_eq!(
            self.threshold(),
            other.threshold(),
            "mismatched quACK thresholds"
        );
        let power_sums = self
            .power_sums
            .iter()
            .zip(&other.power_sums)
            .map(|(&a, &b)| a + b)
            .collect();
        PowerSumQuack {
            power_sums,
            count: self.count.wrapping_add(other.count),
            last_value: other.last_value.or(self.last_value),
        }
    }

    /// Whether no identifiers have been accumulated (all sums zero and count
    /// zero). A difference quACK is `is_empty` exactly when nothing is
    /// missing *and* no wraparound occurred.
    pub fn is_empty(&self) -> bool {
        self.count == 0 && self.power_sums.iter().all(|s| s.is_zero())
    }

    /// Reconstructs a quACK from raw parts: power sums (reduced mod `p` on
    /// the way in) and a count. Used by the wire codec and by sidecar
    /// endpoints that adjust the count for `c`-bit wraparound.
    pub fn from_parts(sums: Vec<u64>, count: u32) -> Self {
        PowerSumQuack {
            power_sums: sums.into_iter().map(F::from_u64).collect(),
            count,
            last_value: None,
        }
    }

    /// Returns a copy with the count replaced (sidecar endpoints mask the
    /// count difference to the negotiated `c` bits, §3.2).
    pub fn with_count(&self, count: u32) -> Self {
        PowerSumQuack {
            power_sums: self.power_sums.clone(),
            count,
            last_value: self.last_value,
        }
    }
}

/// 16-bit identifier quACK (`p = 65521`, table-driven arithmetic).
pub type Quack16 = PowerSumQuack<Fp16>;
/// 24-bit identifier quACK (`p = 2^24 - 3`).
pub type Quack24 = PowerSumQuack<Fp24>;
/// 32-bit identifier quACK (`p = 2^32 - 5`) — the paper's default.
pub type Quack32 = PowerSumQuack<Fp32>;
/// 64-bit identifier quACK (`p = 2^64 - 59`), plain arithmetic.
pub type Quack64 = PowerSumQuack<Fp64>;
/// 64-bit identifier quACK in Montgomery form (ablation of the modmul).
pub type QuackMonty64 = PowerSumQuack<Monty64>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_updates_sums_and_count() {
        let mut q = Quack32::new(3);
        assert!(q.is_empty());
        q.insert(2);
        q.insert(3);
        let sums: Vec<u64> = q.power_sums().collect();
        // p1 = 2 + 3, p2 = 4 + 9, p3 = 8 + 27
        assert_eq!(sums, vec![5, 13, 35]);
        assert_eq!(q.count(), 2);
        assert_eq!(q.last_value(), Some(3));
    }

    #[test]
    fn remove_is_inverse_of_insert() {
        let mut q = Quack16::new(5);
        let ids = [10u64, 20, 30, 40];
        for &id in &ids {
            q.insert(id);
        }
        for &id in &ids {
            q.remove(id);
        }
        assert_eq!(q.count(), 0);
        assert!(q.power_sums().all(|s| s == 0));
    }

    #[test]
    fn difference_equals_quack_of_missing() {
        let mut sender = Quack32::new(4);
        let mut receiver = Quack32::new(4);
        let sent = [100u64, 200, 300, 400, 500];
        for &id in &sent {
            sender.insert(id);
        }
        for &id in &[100u64, 300, 500] {
            receiver.insert(id);
        }
        let diff = sender.difference(&receiver);
        assert_eq!(diff.count(), 2);
        let mut direct = Quack32::new(4);
        direct.insert(200);
        direct.insert(400);
        assert_eq!(
            diff.power_sums().collect::<Vec<_>>(),
            direct.power_sums().collect::<Vec<_>>()
        );
    }

    #[test]
    fn decode_simple_loss() {
        let sent: Vec<u64> = (1..=50).map(|i| i * 0x9E37_79B9).collect();
        let mut sender = Quack32::new(8);
        let mut receiver = Quack32::new(8);
        for &id in &sent {
            sender.insert(id);
        }
        for (i, &id) in sent.iter().enumerate() {
            if i % 10 != 3 {
                receiver.insert(id);
            }
        }
        let decoded = sender.decode_against(&receiver, &sent).unwrap();
        let missing = decoded.missing_values(&sent);
        let expected: Vec<u64> = sent
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 10 == 3)
            .map(|(_, &v)| v)
            .collect();
        assert_eq!(missing, expected);
        assert!(decoded.indeterminate().is_empty());
        assert_eq!(decoded.residual(), 0);
    }

    #[test]
    fn decode_nothing_missing_is_trivial() {
        let sent = [1u64, 2, 3];
        let mut sender = Quack32::new(2);
        let mut receiver = Quack32::new(2);
        for &id in &sent {
            sender.insert(id);
            receiver.insert(id);
        }
        let decoded = sender.decode_against(&receiver, &sent).unwrap();
        assert!(decoded.missing().is_empty());
        assert!(decoded.indeterminate().is_empty());
        assert_eq!(decoded.num_missing(), 0);
    }

    #[test]
    fn decode_fails_beyond_threshold() {
        let sent: Vec<u64> = (1..=10).collect();
        let mut sender = Quack32::new(3);
        let receiver = Quack32::new(3);
        for &id in &sent {
            sender.insert(id);
        }
        // All ten packets missing but t = 3.
        let err = sender.decode_against(&receiver, &sent).unwrap_err();
        assert!(matches!(
            err,
            DecodeError::ThresholdExceeded {
                missing: 10,
                threshold: 3
            }
        ));
    }

    #[test]
    fn duplicate_identifiers_as_retransmissions() {
        // The same identifier sent twice (e.g. a retransmission of the same
        // ciphertext) and received once: exactly one copy is missing.
        let sent = [7u64, 7, 9];
        let mut sender = Quack32::new(4);
        let mut receiver = Quack32::new(4);
        for &id in &sent {
            sender.insert(id);
        }
        receiver.insert(7);
        receiver.insert(9);
        let decoded = sender.decode_against(&receiver, &sent).unwrap();
        // Both log entries with id 7 are candidates for the single missing
        // copy — their fate is indeterminate (paper §3.2).
        assert!(decoded.missing().is_empty());
        assert_eq!(decoded.indeterminate(), &[0, 1]);
        assert_eq!(decoded.num_missing(), 1);
    }

    #[test]
    fn duplicate_identifiers_all_missing_are_determinate() {
        // Both copies missing: multiplicity equals candidate count, so the
        // fate is known.
        let sent = [7u64, 7, 9];
        let mut sender = Quack32::new(4);
        let mut receiver = Quack32::new(4);
        for &id in &sent {
            sender.insert(id);
        }
        receiver.insert(9);
        let decoded = sender.decode_against(&receiver, &sent).unwrap();
        assert_eq!(decoded.missing(), &[0, 1]);
        assert!(decoded.indeterminate().is_empty());
    }

    #[test]
    fn dropped_quacks_are_harmless() {
        // Receiver emits quACK A (dropped), then quACK B. Decoding against B
        // alone yields the full picture because sums are cumulative (§3.3).
        let sent: Vec<u64> = (0..30).map(|i| i * 1000 + 1).collect();
        let mut sender = Quack32::new(6);
        let mut receiver = Quack32::new(6);
        for &id in &sent[..10] {
            sender.insert(id);
        }
        for &id in &sent[..10] {
            if id != sent[4] {
                receiver.insert(id);
            }
        }
        let _quack_a_dropped = receiver.clone();
        for &id in &sent[10..] {
            sender.insert(id);
        }
        for &id in &sent[10..] {
            if id != sent[17] {
                receiver.insert(id);
            }
        }
        let decoded = sender.decode_against(&receiver, &sent).unwrap();
        assert_eq!(decoded.missing_values(&sent), vec![sent[4], sent[17]]);
    }

    #[test]
    fn count_wraparound_in_difference() {
        let mut sender = Quack32::new(2);
        let mut receiver = Quack32::new(2);
        // Force counts near wraparound by inserting and removing.
        for _ in 0..3 {
            sender.insert(42);
            sender.remove(42);
        }
        // sender.count back to 0; now receiver "ahead" by simulated wrap:
        receiver.insert(9);
        receiver.remove(9);
        sender.insert(1);
        receiver.insert(1);
        let diff = sender.difference(&receiver);
        assert_eq!(diff.count(), 0);
        assert!(diff.is_empty());
    }

    #[test]
    #[should_panic(expected = "threshold must be at least 1")]
    fn zero_threshold_rejected() {
        let _ = Quack32::new(0);
    }

    #[test]
    #[should_panic(expected = "mismatched quACK thresholds")]
    fn mismatched_thresholds_rejected() {
        let a = Quack32::new(2);
        let b = Quack32::new(3);
        let _ = a.difference(&b);
    }

    #[test]
    fn combine_is_multiset_union() {
        // Two vantage points on parallel subpaths observe disjoint halves.
        let sent: Vec<u64> = (0..100u64).map(|i| i * 31 + 7).collect();
        let mut path_a = Quack32::new(8);
        let mut path_b = Quack32::new(8);
        for (i, &id) in sent.iter().enumerate() {
            // ECMP by parity; packets 10 and 61 are lost on their paths.
            if i == 10 || i == 61 {
                continue;
            }
            if i % 2 == 0 {
                path_a.insert(id);
            } else {
                path_b.insert(id);
            }
        }
        let combined = path_a.combine(&path_b);
        assert_eq!(combined.count(), 98);
        let mut sender = Quack32::new(8);
        for &id in &sent {
            sender.insert(id);
        }
        let decoded = sender.decode_against(&combined, &sent).unwrap();
        assert_eq!(decoded.missing(), &[10, 61]);
        // Combination is commutative and matches direct observation.
        let ba = path_b.combine(&path_a);
        assert_eq!(
            ba.power_sums().collect::<Vec<_>>(),
            combined.power_sums().collect::<Vec<_>>()
        );
        assert_eq!(ba.count(), combined.count());
    }

    #[test]
    #[should_panic(expected = "mismatched quACK thresholds")]
    fn combine_rejects_mismatched_thresholds() {
        let a = Quack32::new(2);
        let b = Quack32::new(3);
        let _ = a.combine(&b);
    }

    #[test]
    fn decode_missing_identifiers_is_log_free() {
        let sent: Vec<u64> = (0..500u64).map(|i| i * 7919 + 3).collect();
        let mut sender = Quack32::new(10);
        let mut receiver = Quack32::new(10);
        for &id in &sent {
            sender.insert(id);
        }
        for (i, &id) in sent.iter().enumerate() {
            if i % 100 != 7 {
                receiver.insert(id);
            }
        }
        let diff = sender.difference(&receiver);
        let ids = diff.decode_missing_identifiers().unwrap();
        let expected: Vec<(u64, usize)> = {
            let mut v: Vec<u64> = sent
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 100 == 7)
                .map(|(_, &id)| id)
                .collect();
            v.sort_unstable();
            v.into_iter().map(|id| (id, 1)).collect()
        };
        assert_eq!(ids, expected);
        // Duplicate identifiers come back with multiplicity.
        let mut s2 = Quack32::new(4);
        let r2 = Quack32::new(4);
        s2.insert(42);
        s2.insert(42);
        s2.insert(9);
        let ids = s2.difference(&r2).decode_missing_identifiers().unwrap();
        assert_eq!(ids, vec![(9, 1), (42, 2)]);
        // Error paths mirror the logged decoders.
        let mut s3 = Quack32::new(1);
        s3.insert(1);
        s3.insert(2);
        assert!(matches!(
            s3.decode_missing_identifiers(),
            Err(DecodeError::ThresholdExceeded {
                missing: 2,
                threshold: 1
            })
        ));
    }

    #[test]
    fn corrupt_difference_with_irreducible_locator_is_an_error() {
        // Locator x^2 + 1 over F_(2^32-5): p ≡ 3 (mod 4), so −1 is a
        // non-residue and the locator has no roots in the field. Such a
        // difference can only arise from corruption (tampered sums, full
        // count wraparound); the log-free decoder must error rather than
        // silently report fewer missing identifiers than the count claims.
        // Newton: for locator x^2 + a1·x + a2 = x^2 + 1, the power sums are
        // d1 = -a1 = 0, d2 = a1·d1 - 2·a2 = -2.
        const P: u64 = 4_294_967_291;
        let diff = Quack32::from_parts(vec![0, P - 2], 2);
        assert_eq!(
            diff.decode_missing_identifiers().unwrap_err(),
            DecodeError::CountInconsistent
        );
        // The logged decoders flag the same corruption via residual().
        let decoded = diff.decode_with_log(&[7, 9]).unwrap();
        assert_eq!(decoded.residual(), 2);
    }

    #[test]
    fn insert_batch_matches_repeated_insert() {
        fn check<F: Field>() {
            let ids: Vec<u64> = (0..100u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .collect();
            let mut scalar = PowerSumQuack::<F>::new(20);
            let mut batched = PowerSumQuack::<F>::new(20);
            for &id in &ids {
                scalar.insert(id);
            }
            batched.insert_batch(&ids);
            assert_eq!(scalar, batched);
            for &id in &ids[..40] {
                scalar.remove(id);
            }
            batched.remove_batch(&ids[..40]);
            assert_eq!(scalar, batched);
            // Empty batches are no-ops.
            batched.insert_batch(&[]);
            batched.remove_batch(&[]);
            assert_eq!(scalar, batched);
        }
        check::<Fp16>();
        check::<Fp24>();
        check::<Fp32>();
        check::<Fp64>();
        check::<Monty64>();
    }

    #[test]
    fn parallel_and_pooled_decode_match_serial() {
        // Log large enough (n·m = 2000·20) to cross the threading cutoff.
        let sent: Vec<u64> = (0..2000u64).map(|i| i * 2_654_435_761 + 17).collect();
        let mut sender = Quack64::new(20);
        let mut receiver = Quack64::new(20);
        sender.insert_batch(&sent);
        for (i, &id) in sent.iter().enumerate() {
            if i % 157 != 3 {
                receiver.insert(id);
            }
        }
        let diff = sender.difference(&receiver);
        let serial = diff.decode_with_log(&sent).unwrap();
        assert!(!serial.missing().is_empty());
        assert_eq!(diff.decode_with_log_parallel(&sent).unwrap(), serial);
        let pool = WorkspacePool::new(20);
        assert_eq!(diff.decode_with_log_pooled(&sent, &pool).unwrap(), serial);
        assert_eq!(pool.idle_len(), 1);
        // Error paths agree too.
        let mut over = Quack64::new(2);
        over.insert_batch(&sent[..5]);
        assert_eq!(
            over.decode_with_log_parallel(&sent[..5]).unwrap_err(),
            over.decode_with_log(&sent[..5]).unwrap_err()
        );
    }

    #[test]
    fn works_for_all_field_widths() {
        fn roundtrip<F: Field>() {
            // Distinct identifiers below every supported modulus.
            let sent: Vec<u64> = (1..=40).map(|i| i * 1000 + 7).collect();
            let mut sender = PowerSumQuack::<F>::new(5);
            let mut receiver = PowerSumQuack::<F>::new(5);
            for &id in &sent {
                sender.insert(id);
            }
            for (i, &id) in sent.iter().enumerate() {
                if i != 7 && i != 23 {
                    receiver.insert(id);
                }
            }
            let decoded = sender.decode_against(&receiver, &sent).unwrap();
            assert_eq!(decoded.missing_values(&sent), vec![sent[7], sent[23]]);
        }
        roundtrip::<Fp16>();
        roundtrip::<Fp24>();
        roundtrip::<Fp32>();
        roundtrip::<Fp64>();
        roundtrip::<Monty64>();
    }
}
