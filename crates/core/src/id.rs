//! Packet identifiers: pseudo-random `b`-bit values drawn from encrypted
//! packet bytes.
//!
//! "We think of packets as numbers, e.g., 32 bits from a randomly-encrypted
//! QUIC header, and call these numbers the identifiers" (paper §3.2). A
//! sidecar never parses the transport protocol — it slices a fixed window of
//! opaque bytes, which are computationally indistinguishable from random
//! because the header is encrypted. This module provides:
//!
//! * [`extract_identifier`] — the byte-window-to-identifier mapping a
//!   sidecar applies to every forwarded packet;
//! * [`IdentifierGenerator`] — a deterministic stream of identifiers for
//!   simulations and benchmarks, standing in for the randomness of real
//!   encrypted headers (see DESIGN.md substitution notes).

use crate::collision::SplitMix64;

/// Extracts a `bits`-bit identifier from the first `ceil(bits/8)` bytes of
/// an opaque header window, big-endian, truncating high bits to the exact
/// width.
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 64, or if `window` is shorter than
/// the identifier needs.
///
/// ```
/// use sidecar_quack::id::extract_identifier;
/// let header = [0xAB, 0xCD, 0xEF, 0x01, 0x23];
/// assert_eq!(extract_identifier(&header, 32), 0xABCD_EF01);
/// assert_eq!(extract_identifier(&header, 16), 0xABCD);
/// // Non-byte-aligned widths keep the high bits of the window.
/// assert_eq!(extract_identifier(&header, 12), 0xABC);
/// ```
pub fn extract_identifier(window: &[u8], bits: u32) -> u64 {
    assert!(
        (1..=64).contains(&bits),
        "identifier width must be 1..=64 bits"
    );
    let bytes = (bits as usize).div_ceil(8);
    assert!(
        window.len() >= bytes,
        "header window too short: need {bytes} bytes for {bits}-bit identifiers"
    );
    let mut value = 0u64;
    for &b in &window[..bytes] {
        value = (value << 8) | b as u64;
    }
    value >> (bytes as u32 * 8 - bits)
}

/// A deterministic stream of `bits`-bit identifiers.
///
/// Simulations use this where a real deployment would observe encrypted
/// header bytes: the identifiers are uniform over `[0, 2^bits)` and
/// reproducible from the seed, which is what the quACK's collision analysis
/// assumes (§4.2).
#[derive(Clone, Debug)]
pub struct IdentifierGenerator {
    rng: SplitMix64,
    bits: u32,
    mask: u64,
}

impl IdentifierGenerator {
    /// Creates a generator for `bits`-bit identifiers.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 64`.
    pub fn new(bits: u32, seed: u64) -> Self {
        assert!(
            (1..=64).contains(&bits),
            "identifier width must be 1..=64 bits"
        );
        IdentifierGenerator {
            rng: SplitMix64::new(seed),
            bits,
            mask: if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            },
        }
    }

    /// The identifier width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The next identifier.
    #[inline]
    pub fn next_id(&mut self) -> u64 {
        self.rng.next() & self.mask
    }

    /// Generates `n` identifiers at once (benchmark setup helper).
    pub fn take_ids(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_id()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extraction_widths() {
        let header = [0xFF, 0x00, 0xAA, 0x55, 0x0F, 0xF0, 0x12, 0x34, 0x56];
        assert_eq!(extract_identifier(&header, 8), 0xFF);
        assert_eq!(extract_identifier(&header, 24), 0x00FF_00AA);
        assert_eq!(extract_identifier(&header, 64), 0xFF00_AA55_0FF0_1234);
        assert_eq!(extract_identifier(&header, 1), 1);
        assert_eq!(extract_identifier(&header, 9), 0x1FE);
    }

    #[test]
    #[should_panic(expected = "header window too short")]
    fn short_window_panics() {
        let _ = extract_identifier(&[0xAB], 32);
    }

    #[test]
    #[should_panic(expected = "identifier width must be")]
    fn zero_bits_panics() {
        let _ = extract_identifier(&[0xAB], 0);
    }

    #[test]
    fn generator_respects_width_and_seed() {
        let mut g = IdentifierGenerator::new(16, 7);
        let ids = g.take_ids(1000);
        assert!(ids.iter().all(|&id| id < (1 << 16)));
        // Deterministic.
        let mut g2 = IdentifierGenerator::new(16, 7);
        assert_eq!(g2.take_ids(1000), ids);
        // Different seed, different stream.
        let mut g3 = IdentifierGenerator::new(16, 8);
        assert_ne!(g3.take_ids(1000), ids);
        assert_eq!(g.bits(), 16);
    }

    #[test]
    fn generator_is_roughly_uniform() {
        // Coarse sanity check: 8-bit ids over 25 600 draws, each bucket
        // expects 100 hits; allow generous slack.
        let mut g = IdentifierGenerator::new(8, 99);
        let mut buckets = [0u32; 256];
        for _ in 0..25_600 {
            buckets[g.next_id() as usize] += 1;
        }
        assert!(buckets.iter().all(|&c| c > 40 && c < 180), "{buckets:?}");
    }

    #[test]
    fn generator_full_width() {
        let mut g = IdentifierGenerator::new(64, 1);
        // No masking artifacts: some value must exceed 2^63.
        assert!(g.take_ids(100).iter().any(|&id| id > u64::MAX / 2));
    }
}
