//! Property-based tests of the quACK's end-to-end contract:
//! `decode(S + quACK(R)) == S \ R` whenever `|S \ R| <= t` (paper Fig. 2).

use proptest::prelude::*;
use sidecar_galois::{Field, Fp16, Fp32, Fp64};
use sidecar_quack::strawman::{EchoQuack, HashQuack};
use sidecar_quack::{DecodeError, PowerSumQuack, WireFormat};
use std::collections::HashMap;

/// Multiset difference of value lists (ground truth for comparisons).
fn multiset_difference(sent: &[u64], received: &[u64]) -> Vec<u64> {
    let mut counts: HashMap<u64, isize> = HashMap::new();
    for &r in received {
        *counts.entry(r).or_default() += 1;
    }
    let mut missing = Vec::new();
    for &s in sent {
        let c = counts.entry(s).or_default();
        if *c > 0 {
            *c -= 1;
        } else {
            missing.push(s);
        }
    }
    missing
}

/// Strategy: a sent list plus a subset mask choosing which were received.
fn sent_and_received(max_len: usize) -> impl Strategy<Value = (Vec<u64>, Vec<bool>)> {
    proptest::collection::vec((any::<u64>(), any::<bool>()), 0..max_len)
        .prop_map(|pairs| pairs.into_iter().unzip())
}

fn check_decode_matches_ground_truth<F: Field>(
    sent: &[u64],
    received_mask: &[bool],
    threshold: usize,
) -> Result<(), TestCaseError> {
    let received: Vec<u64> = sent
        .iter()
        .zip(received_mask)
        .filter(|(_, &r)| r)
        .map(|(&s, _)| s)
        .collect();
    let mut sender = PowerSumQuack::<F>::new(threshold);
    let mut recv = PowerSumQuack::<F>::new(threshold);
    for &id in sent {
        sender.insert(id);
    }
    for &id in &received {
        recv.insert(id);
    }
    let num_missing = sent.len() - received.len();
    let result = sender.decode_against(&recv, sent);
    if num_missing > threshold {
        prop_assert_eq!(
            result.unwrap_err(),
            DecodeError::ThresholdExceeded {
                missing: num_missing,
                threshold
            }
        );
        return Ok(());
    }
    let decoded = result.unwrap();
    prop_assert_eq!(decoded.num_missing(), num_missing);
    prop_assert_eq!(decoded.residual(), 0);

    // Ground truth *in field-image space*: identifiers that alias mod p are
    // indistinguishable to the sketch, so compare reduced values.
    let reduce = |v: &u64| F::from_u64(*v).to_u64();
    let sent_f: Vec<u64> = sent.iter().map(reduce).collect();
    let recv_f: Vec<u64> = received.iter().map(reduce).collect();
    let mut expected_missing = multiset_difference(&sent_f, &recv_f);
    expected_missing.sort_unstable();

    // Decoded: definite missing + indeterminate must cover expected missing;
    // every definite missing must be genuinely missing.
    let mut definite: Vec<u64> = decoded
        .missing()
        .iter()
        .map(|&i| reduce(&sent[i]))
        .collect();
    definite.sort_unstable();
    // Each definite-missing value appears in expected_missing with at least
    // that multiplicity (indeed exactly — definite means all candidates
    // missing).
    let mut exp_counts: HashMap<u64, usize> = HashMap::new();
    for v in &expected_missing {
        *exp_counts.entry(*v).or_default() += 1;
    }
    let mut def_counts: HashMap<u64, usize> = HashMap::new();
    for v in &definite {
        *def_counts.entry(*v).or_default() += 1;
    }
    for (v, c) in &def_counts {
        prop_assert!(
            exp_counts.get(v).copied().unwrap_or(0) >= *c,
            "value {v} declared missing more often than it is"
        );
    }
    // Missing mass is fully explained by definite + indeterminate groups.
    let indeterminate_values: std::collections::HashSet<u64> = decoded
        .indeterminate()
        .iter()
        .map(|&i| reduce(&sent[i]))
        .collect();
    for (v, c) in exp_counts {
        let covered = def_counts.get(&v).copied().unwrap_or(0);
        prop_assert!(
            covered == c || indeterminate_values.contains(&v),
            "missing value {v} (x{c}) neither definitively decoded nor indeterminate"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn decode_matches_ground_truth_fp32((sent, mask) in sent_and_received(60)) {
        check_decode_matches_ground_truth::<Fp32>(&sent, &mask, 20)?;
    }

    #[test]
    fn decode_matches_ground_truth_fp64((sent, mask) in sent_and_received(60)) {
        check_decode_matches_ground_truth::<Fp64>(&sent, &mask, 20)?;
    }

    /// 16-bit fields force frequent aliasing, stressing the indeterminate
    /// classification.
    #[test]
    fn decode_matches_ground_truth_fp16((sent, mask) in sent_and_received(40)) {
        check_decode_matches_ground_truth::<Fp16>(&sent, &mask, 40)?;
    }

    /// Insertion order never affects the sketch.
    #[test]
    fn quack_is_order_independent(ids in proptest::collection::vec(any::<u64>(), 1..50), seed in any::<u64>()) {
        let mut a = PowerSumQuack::<Fp32>::new(10);
        for &id in &ids {
            a.insert(id);
        }
        // Deterministic shuffle.
        let mut shuffled = ids.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            shuffled.swap(i, (state >> 33) as usize % (i + 1));
        }
        let mut b = PowerSumQuack::<Fp32>::new(10);
        for &id in &shuffled {
            b.insert(id);
        }
        prop_assert_eq!(a.power_sums().collect::<Vec<_>>(), b.power_sums().collect::<Vec<_>>());
        prop_assert_eq!(a.count(), b.count());
    }

    /// remove() always cancels insert(), regardless of interleaving.
    #[test]
    fn remove_cancels_insert(keep in proptest::collection::vec(any::<u64>(), 0..20),
                             churn in proptest::collection::vec(any::<u64>(), 0..20)) {
        let mut q = PowerSumQuack::<Fp32>::new(5);
        for &id in &keep {
            q.insert(id);
        }
        for &id in &churn {
            q.insert(id);
        }
        for &id in &churn {
            q.remove(id);
        }
        let mut reference = PowerSumQuack::<Fp32>::new(5);
        for &id in &keep {
            reference.insert(id);
        }
        prop_assert_eq!(q.power_sums().collect::<Vec<_>>(), reference.power_sums().collect::<Vec<_>>());
        prop_assert_eq!(q.count(), reference.count());
    }

    /// Wire roundtrip preserves sums and (masked) count for every width.
    #[test]
    fn wire_roundtrip(ids in proptest::collection::vec(any::<u64>(), 0..64),
                      threshold in 1usize..32,
                      count_bits in 1u32..33) {
        let mut q = PowerSumQuack::<Fp32>::new(threshold);
        for &id in &ids {
            q.insert(id);
        }
        let fmt = WireFormat { id_bits: 32, threshold, count_bits };
        let bytes = fmt.encode(&q);
        prop_assert_eq!(bytes.len(), fmt.encoded_bytes());
        let back: PowerSumQuack<Fp32> = fmt.decode(&bytes, None).unwrap();
        prop_assert_eq!(back.power_sums().collect::<Vec<_>>(), q.power_sums().collect::<Vec<_>>());
        let mask = if count_bits >= 32 { u32::MAX } else { (1u32 << count_bits) - 1 };
        prop_assert_eq!(back.count(), q.count() & mask);
    }

    /// Strawman 1 and the power-sum quACK agree on the missing multiset
    /// (in field-image space) whenever the power-sum decode is determinate.
    #[test]
    fn strawman1_agrees_with_power_sums((sent, mask) in sent_and_received(40)) {
        let received: Vec<u64> = sent.iter().zip(&mask).filter(|(_, &r)| r).map(|(&s, _)| s).collect();
        let num_missing = sent.len() - received.len();
        prop_assume!(num_missing <= 20);

        let mut echo = EchoQuack::new(64);
        for &id in &received {
            echo.insert(id);
        }
        let echo_missing = {
            let mut v = echo.decode_missing(&sent);
            v.sort_unstable();
            v
        };

        let mut sender = PowerSumQuack::<Fp64>::new(20);
        let mut recv = PowerSumQuack::<Fp64>::new(20);
        for &id in &sent {
            sender.insert(id);
        }
        for &id in &received {
            recv.insert(id);
        }
        let decoded = sender.decode_against(&recv, &sent).unwrap();
        if decoded.is_fully_determined() {
            let mut ps_missing = decoded.missing_values(&sent);
            ps_missing.sort_unstable();
            // Compare reduced images (aliasing mod 2^64-59 is possible in
            // principle though vanishingly rare with random u64s).
            let reduce = |v: u64| Fp64::from_u64(v).to_u64();
            prop_assert_eq!(
                ps_missing.into_iter().map(reduce).collect::<Vec<_>>(),
                echo_missing.into_iter().map(reduce).collect::<Vec<_>>()
            );
        }
    }

    /// The candidate-plugging and polynomial-factoring decoders agree on
    /// every decodable input (missing, indeterminate, residual — all of it).
    #[test]
    fn factoring_decoder_equals_plugging_decoder((sent, mask) in sent_and_received(50)) {
        let received: Vec<u64> = sent.iter().zip(&mask).filter(|(_, &r)| r).map(|(&s, _)| s).collect();
        prop_assume!(sent.len() - received.len() <= 20);
        let mut sender = PowerSumQuack::<Fp32>::new(20);
        let mut recv = PowerSumQuack::<Fp32>::new(20);
        for &id in &sent {
            sender.insert(id);
        }
        for &id in &received {
            recv.insert(id);
        }
        let diff = sender.difference(&recv);
        prop_assert_eq!(
            diff.decode_with_log(&sent).unwrap(),
            diff.decode_with_log_by_factoring(&sent).unwrap()
        );
    }

    /// Same agreement under the aliasing-heavy 16-bit field.
    #[test]
    fn factoring_decoder_equals_plugging_decoder_fp16((sent, mask) in sent_and_received(40)) {
        let received: Vec<u64> = sent.iter().zip(&mask).filter(|(_, &r)| r).map(|(&s, _)| s).collect();
        prop_assume!(sent.len() - received.len() <= 40);
        let mut sender = PowerSumQuack::<Fp16>::new(40);
        let mut recv = PowerSumQuack::<Fp16>::new(40);
        for &id in &sent {
            sender.insert(id);
        }
        for &id in &received {
            recv.insert(id);
        }
        let diff = sender.difference(&recv);
        prop_assert_eq!(
            diff.decode_with_log(&sent).unwrap(),
            diff.decode_with_log_by_factoring(&sent).unwrap()
        );
    }

    /// Strawman 2's digest is a faithful multiset fingerprint: digests agree
    /// iff the received multisets agree.
    #[test]
    fn strawman2_digest_multiset_semantics(a in proptest::collection::vec(any::<u64>(), 0..30),
                                           b in proptest::collection::vec(any::<u64>(), 0..30)) {
        let mut qa = HashQuack::new();
        let mut qb = HashQuack::new();
        for &id in &a {
            qa.insert(id);
        }
        for &id in &b {
            qb.insert(id);
        }
        let mut sa = a.clone();
        let mut sb = b.clone();
        sa.sort_unstable();
        sb.sort_unstable();
        prop_assert_eq!(qa.digest() == qb.digest(), sa == sb);
    }
}

mod more_properties {
    use super::*;
    use sidecar_quack::sha256::Sha256;
    use sidecar_quack::DynQuack;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Incremental SHA-256 equals one-shot for any chunking.
        #[test]
        fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512),
                                             cuts in proptest::collection::vec(any::<prop::sample::Index>(), 0..6)) {
            let oneshot = Sha256::digest(&data);
            let mut offsets: Vec<usize> = cuts.iter().map(|c| c.index(data.len() + 1)).collect();
            offsets.push(0);
            offsets.push(data.len());
            offsets.sort_unstable();
            let mut h = Sha256::new();
            for pair in offsets.windows(2) {
                h.update(&data[pair[0]..pair[1]]);
            }
            prop_assert_eq!(h.finalize(), oneshot);
        }

        /// Runtime-width quACKs agree with their statically-typed twins.
        #[test]
        fn dynquack_matches_static(ids in proptest::collection::vec(any::<u64>(), 1..60),
                                   received_mask in proptest::collection::vec(any::<bool>(), 60)) {
            let mut dyn_sender = DynQuack::new(32, 16).unwrap();
            let mut dyn_receiver = DynQuack::new(32, 16).unwrap();
            let mut static_sender = PowerSumQuack::<Fp32>::new(16);
            let mut static_receiver = PowerSumQuack::<Fp32>::new(16);
            for (i, &id) in ids.iter().enumerate() {
                dyn_sender.insert(id);
                static_sender.insert(id);
                if received_mask[i % received_mask.len()] {
                    dyn_receiver.insert(id);
                    static_receiver.insert(id);
                }
            }
            let dyn_diff = dyn_sender.difference(&dyn_receiver).unwrap();
            let static_diff = static_sender.difference(&static_receiver);
            prop_assert_eq!(dyn_diff.count(), static_diff.count());
            let d1 = dyn_diff.decode_with_log(&ids);
            let d2 = static_diff.decode_with_log(&ids);
            match (d1, d2) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => prop_assert!(false, "divergence: {a:?} vs {b:?}"),
            }
        }
    }
}
