//! Fuzz-style property tests for the quACK wire codec: decoding must be
//! total (no panics) over arbitrary byte soup — quACKs arrive over an
//! unauthenticated datagram channel, so any buffer can show up.
//!
//! The same suite round-trips the observability layer's two stable text
//! encodings (metrics snapshots and trace events), since those are promised
//! parseable in `DESIGN.md` and pinned byte-for-byte by the golden-trace
//! fixtures.

use proptest::prelude::*;
use sidecar_galois::{Fp16, Fp32};
use sidecar_obs::{
    ControlKind, DropCause, Event, EventTrace, MetricsRegistry, MetricsSnapshot, QuackErrorKind,
    SessionState,
};
use sidecar_quack::{PowerSumQuack, WireError, WireFormat};

/// Fixed pools of metric names: registry keys are `&'static str` by design,
/// so arbitrary snapshots draw names from these rather than random strings.
const COUNTER_NAMES: [&str; 5] = [
    "quack.observed",
    "quack.decoded",
    "netsim.drop.loss",
    "sidecar.sent.quack",
    "decode.attempts",
];
const GAUGE_NAMES: [&str; 3] = ["rtt.latest", "cwnd.current", "fill.ratio"];
const HIST_NAMES: [&str; 2] = ["quack.batch_fill", "decode.missing"];
const HIST_BOUNDS: &[u64] = &[0, 1, 2, 4, 8, 16, 32];

/// An arbitrary trace event, one arm per variant.
fn arb_event() -> impl Strategy<Value = Event> {
    let cause = prop_oneof![
        Just(DropCause::Loss),
        Just(DropCause::Queue),
        Just(DropCause::NodeDown),
        Just(DropCause::Blackout),
        Just(DropCause::Injected),
    ];
    let control = prop_oneof![
        Just(ControlKind::Duplicate),
        Just(ControlKind::Delay),
        Just(ControlKind::Corrupt),
    ];
    let state = || {
        prop_oneof![
            Just(SessionState::Connecting),
            Just(SessionState::Active),
            Just(SessionState::Degraded),
        ]
    };
    let quack_err = prop_oneof![
        Just(QuackErrorKind::Threshold),
        Just(QuackErrorKind::WrongEpoch),
        Just(QuackErrorKind::Stale),
        Just(QuackErrorKind::Malformed),
        Just(QuackErrorKind::CountInconsistent),
    ];
    let node = 0u32..64;
    prop_oneof![
        (node.clone(), 0u32..4, cause).prop_map(|(node, iface, cause)| Event::LinkDrop {
            node,
            iface,
            cause
        }),
        (node.clone(), any::<bool>()).prop_map(|(node, up)| Event::Outage { node, up }),
        (node.clone(), control).prop_map(|(node, kind)| Event::ControlFault { node, kind }),
        node.clone().prop_map(|node| Event::Restart { node }),
        (node.clone(), any::<bool>())
            .prop_map(|(node, accepted)| Event::Handshake { node, accepted }),
        (node.clone(), state(), state()).prop_map(|(node, from, to)| Event::Transition {
            node,
            from,
            to
        }),
        (node.clone(), 0u32..100, 0u32..10_000, 0u32..200).prop_map(
            |(node, epoch, count, bytes)| Event::QuackSent {
                node,
                epoch,
                count,
                bytes
            }
        ),
        (node.clone(), 0u32..1_000, 0u32..100).prop_map(|(node, received, missing)| {
            Event::QuackDecoded {
                node,
                received,
                missing,
            }
        }),
        (node.clone(), quack_err).prop_map(|(node, kind)| Event::QuackError { node, kind }),
        (node, 0u32..33).prop_map(|(node, fill)| Event::BatchFill { node, fill }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Decoding arbitrary bytes never panics: every outcome is a typed
    /// `Ok`/`Err`, and wrong-length buffers are always a `Length` error.
    #[test]
    fn decode_is_total_over_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
        threshold in 1usize..24,
        count_bits in prop_oneof![Just(0u32), Just(8u32), Just(16u32)],
    ) {
        let fmt = WireFormat { id_bits: 32, threshold, count_bits };
        match fmt.decode::<Fp32>(&bytes, Some(7)) {
            Ok(q) => prop_assert_eq!(q.threshold(), threshold),
            Err(WireError::Length { expected, actual }) => {
                prop_assert_eq!(expected, fmt.encoded_bytes());
                prop_assert_eq!(actual, bytes.len());
                prop_assert_ne!(actual, expected);
            }
            Err(WireError::NonCanonicalSum { index }) => {
                prop_assert_eq!(bytes.len(), fmt.encoded_bytes());
                prop_assert!(index < threshold);
            }
        }
    }

    /// Correct-length corrupted buffers (bit flips on a valid encoding)
    /// never panic either: they decode to *some* quACK or a typed error.
    /// Detecting the corruption is the consumer's count/threshold checks'
    /// job, not the codec's.
    #[test]
    fn bit_flips_never_panic(
        ids in proptest::collection::vec(any::<u64>(), 0..40),
        flips in proptest::collection::vec((0usize..82, 0u8..8), 1..16),
    ) {
        let fmt = WireFormat::paper_default(20);
        let mut q = PowerSumQuack::<Fp32>::new(20);
        for &id in &ids {
            q.insert(id);
        }
        let mut bytes = fmt.encode(&q);
        for (pos, bit) in flips {
            bytes[pos % 82] ^= 1 << bit;
        }
        let _ = fmt.decode::<Fp32>(&bytes, None);
    }

    /// Encode→decode round-trips across field widths, including the `c = 0`
    /// out-of-band-count format of §4.3 ACK reduction.
    #[test]
    fn roundtrip_all_widths(
        ids in proptest::collection::vec(any::<u64>(), 0..32),
        threshold in 1usize..16,
    ) {
        let fmt32 = WireFormat { id_bits: 32, threshold, count_bits: 16 };
        let mut q32 = PowerSumQuack::<Fp32>::new(threshold);
        for &id in &ids {
            q32.insert(id);
        }
        let back32: PowerSumQuack<Fp32> = fmt32.decode(&fmt32.encode(&q32), None).unwrap();
        prop_assert_eq!(
            back32.power_sums().collect::<Vec<_>>(),
            q32.power_sums().collect::<Vec<_>>()
        );
        prop_assert_eq!(back32.count(), q32.count() & 0xFFFF);

        let fmt0 = WireFormat { id_bits: 16, threshold, count_bits: 0 };
        let mut q16 = PowerSumQuack::<Fp16>::new(threshold);
        for &id in &ids {
            q16.insert(id);
        }
        let back16: PowerSumQuack<Fp16> =
            fmt0.decode(&fmt0.encode(&q16), Some(q16.count())).unwrap();
        prop_assert_eq!(
            back16.power_sums().collect::<Vec<_>>(),
            q16.power_sums().collect::<Vec<_>>()
        );
        prop_assert_eq!(back16.count(), q16.count());
    }

    /// `MetricsSnapshot::parse` inverts `encode` for any registry contents:
    /// arbitrary counter/gauge/histogram activity survives a text round-trip
    /// bit-for-bit (gauges use `{:?}` shortest-round-trip formatting).
    #[test]
    fn metrics_snapshot_encode_parse_roundtrip(
        counts in proptest::collection::vec((0usize..5, 1u64..10_000), 0..16),
        gauges in proptest::collection::vec((0usize..3, 0u64..(1u64 << 41)), 0..8),
        observations in proptest::collection::vec((0usize..2, 0u64..64), 0..24),
    ) {
        let reg = MetricsRegistry::new();
        for &(name, n) in &counts {
            reg.add(COUNTER_NAMES[name], n);
        }
        for &(name, raw) in &gauges {
            // Finite, dyadic, signed values; NaN would (correctly) break
            // PartialEq, and that is the encoding's documented exclusion.
            reg.gauge_set(GAUGE_NAMES[name], (raw as i64 - (1i64 << 40)) as f64 / 8.0);
        }
        for &(name, value) in &observations {
            reg.observe(HIST_NAMES[name], HIST_BOUNDS, value);
        }
        let snap = reg.snapshot();
        let text = snap.encode();
        let back = MetricsSnapshot::parse(&text)
            .map_err(|e| TestCaseError::Fail(format!("{e} in:\n{text}")))?;
        prop_assert_eq!(back, snap);
    }

    /// `Event::parse` inverts `Display` for every variant and field value,
    /// and a rendered trace line parses back with its timestamp intact.
    #[test]
    fn event_display_parse_roundtrip(
        events in proptest::collection::vec((0u64..u64::MAX / 2, arb_event()), 1..32),
    ) {
        let mut trace = EventTrace::with_capacity(64);
        for &(at, ev) in &events {
            let text = ev.to_string();
            let back = Event::parse(&text)
                .map_err(|e| TestCaseError::Fail(format!("{e} from {text:?}")))?;
            prop_assert_eq!(back, ev);
            prop_assert!(text.starts_with(ev.kind()));
            trace.record(at, ev);
        }
        let rendered = trace.render();
        let parsed: Result<Vec<(u64, Event)>, String> =
            rendered.lines().map(EventTrace::parse_line).collect();
        let parsed = parsed
            .map_err(|e| TestCaseError::Fail(format!("{e} in:\n{rendered}")))?;
        prop_assert_eq!(parsed, events);
    }
}
