//! Fuzz-style property tests for the quACK wire codec: decoding must be
//! total (no panics) over arbitrary byte soup — quACKs arrive over an
//! unauthenticated datagram channel, so any buffer can show up.

use proptest::prelude::*;
use sidecar_galois::{Fp16, Fp32};
use sidecar_quack::{PowerSumQuack, WireError, WireFormat};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Decoding arbitrary bytes never panics: every outcome is a typed
    /// `Ok`/`Err`, and wrong-length buffers are always a `Length` error.
    #[test]
    fn decode_is_total_over_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
        threshold in 1usize..24,
        count_bits in prop_oneof![Just(0u32), Just(8u32), Just(16u32)],
    ) {
        let fmt = WireFormat { id_bits: 32, threshold, count_bits };
        match fmt.decode::<Fp32>(&bytes, Some(7)) {
            Ok(q) => prop_assert_eq!(q.threshold(), threshold),
            Err(WireError::Length { expected, actual }) => {
                prop_assert_eq!(expected, fmt.encoded_bytes());
                prop_assert_eq!(actual, bytes.len());
                prop_assert_ne!(actual, expected);
            }
            Err(WireError::NonCanonicalSum { index }) => {
                prop_assert_eq!(bytes.len(), fmt.encoded_bytes());
                prop_assert!(index < threshold);
            }
        }
    }

    /// Correct-length corrupted buffers (bit flips on a valid encoding)
    /// never panic either: they decode to *some* quACK or a typed error.
    /// Detecting the corruption is the consumer's count/threshold checks'
    /// job, not the codec's.
    #[test]
    fn bit_flips_never_panic(
        ids in proptest::collection::vec(any::<u64>(), 0..40),
        flips in proptest::collection::vec((0usize..82, 0u8..8), 1..16),
    ) {
        let fmt = WireFormat::paper_default(20);
        let mut q = PowerSumQuack::<Fp32>::new(20);
        for &id in &ids {
            q.insert(id);
        }
        let mut bytes = fmt.encode(&q);
        for (pos, bit) in flips {
            bytes[pos % 82] ^= 1 << bit;
        }
        let _ = fmt.decode::<Fp32>(&bytes, None);
    }

    /// Encode→decode round-trips across field widths, including the `c = 0`
    /// out-of-band-count format of §4.3 ACK reduction.
    #[test]
    fn roundtrip_all_widths(
        ids in proptest::collection::vec(any::<u64>(), 0..32),
        threshold in 1usize..16,
    ) {
        let fmt32 = WireFormat { id_bits: 32, threshold, count_bits: 16 };
        let mut q32 = PowerSumQuack::<Fp32>::new(threshold);
        for &id in &ids {
            q32.insert(id);
        }
        let back32: PowerSumQuack<Fp32> = fmt32.decode(&fmt32.encode(&q32), None).unwrap();
        prop_assert_eq!(
            back32.power_sums().collect::<Vec<_>>(),
            q32.power_sums().collect::<Vec<_>>()
        );
        prop_assert_eq!(back32.count(), q32.count() & 0xFFFF);

        let fmt0 = WireFormat { id_bits: 16, threshold, count_bits: 0 };
        let mut q16 = PowerSumQuack::<Fp16>::new(threshold);
        for &id in &ids {
            q16.insert(id);
        }
        let back16: PowerSumQuack<Fp16> =
            fmt0.decode(&fmt0.encode(&q16), Some(q16.count())).unwrap();
        prop_assert_eq!(
            back16.power_sums().collect::<Vec<_>>(),
            q16.power_sums().collect::<Vec<_>>()
        );
        prop_assert_eq!(back16.count(), q16.count());
    }
}
