//! Property-based equivalence of the batched hot path against the scalar
//! reference semantics:
//!
//! * `insert_batch` / `remove_batch` must be extensionally equal to the
//!   corresponding sequence of scalar `insert` / `remove` calls, for every
//!   field width, batch chunking, and count wraparound state;
//! * the parallel and pooled decoders must return bit-identical results to
//!   the serial decoder (success *and* error paths).

use proptest::prelude::*;
use sidecar_galois::{Field, Fp16, Fp24, Fp32, Fp64, Monty64, WorkspacePool};
use sidecar_quack::PowerSumQuack;

/// Applies `ids` one at a time (the scalar reference) and in `chunk`-sized
/// batches, and asserts the two sketches are identical — sums, count, and
/// last-value metadata.
fn check_batch_equivalence<F: Field>(
    ids: &[u64],
    threshold: usize,
    chunk: usize,
    start_count: u32,
) -> Result<(), TestCaseError> {
    let base = PowerSumQuack::<F>::from_parts(vec![0; threshold], start_count);

    let mut scalar = base.clone();
    for &id in ids {
        scalar.insert(id);
    }
    let mut batched = base.clone();
    for piece in ids.chunks(chunk) {
        batched.insert_batch(piece);
    }
    prop_assert_eq!(&scalar, &batched, "insert_batch diverged from insert");

    // Removal: drain what we inserted; both paths must cancel back to the
    // starting sketch (count included — removal wraps the other way).
    let mut scalar_rm = scalar.clone();
    for &id in ids {
        scalar_rm.remove(id);
    }
    let mut batched_rm = batched.clone();
    for piece in ids.chunks(chunk) {
        batched_rm.remove_batch(piece);
    }
    prop_assert_eq!(
        scalar_rm.power_sums().collect::<Vec<_>>(),
        batched_rm.power_sums().collect::<Vec<_>>(),
        "remove_batch diverged from remove"
    );
    prop_assert_eq!(scalar_rm.count(), batched_rm.count());
    prop_assert_eq!(
        scalar_rm.power_sums().collect::<Vec<_>>(),
        base.power_sums().collect::<Vec<_>>(),
        "removal failed to cancel insertion"
    );
    prop_assert_eq!(scalar_rm.count(), start_count);
    Ok(())
}

/// Decodes the same difference with the serial, parallel, and pooled
/// decoders and asserts identical outcomes.
fn check_decoder_equivalence<F: Field>(
    sent: &[u64],
    mask: &[bool],
    threshold: usize,
) -> Result<(), TestCaseError> {
    let mut sender = PowerSumQuack::<F>::new(threshold);
    sender.insert_batch(sent);
    let mut receiver = PowerSumQuack::<F>::new(threshold);
    for (&id, &keep) in sent.iter().zip(mask) {
        if keep {
            receiver.insert(id);
        }
    }
    let diff = sender.difference(&receiver);
    let serial = diff.decode_with_log(sent);
    let parallel = diff.decode_with_log_parallel(sent);
    let pool = WorkspacePool::<F>::new(threshold.max(1));
    let pooled = diff.decode_with_log_pooled(sent, &pool);
    prop_assert_eq!(&serial, &parallel, "parallel decode diverged from serial");
    prop_assert_eq!(&serial, &pooled, "pooled decode diverged from serial");
    Ok(())
}

fn ids_chunk_threshold() -> impl Strategy<Value = (Vec<u64>, usize, usize)> {
    (
        proptest::collection::vec(any::<u64>(), 0..200),
        1usize..70,
        1usize..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn insert_batch_equals_insert_fp16((ids, chunk, t) in ids_chunk_threshold()) {
        check_batch_equivalence::<Fp16>(&ids, t, chunk, 0)?;
    }

    #[test]
    fn insert_batch_equals_insert_fp24((ids, chunk, t) in ids_chunk_threshold()) {
        check_batch_equivalence::<Fp24>(&ids, t, chunk, 0)?;
    }

    #[test]
    fn insert_batch_equals_insert_fp32((ids, chunk, t) in ids_chunk_threshold()) {
        check_batch_equivalence::<Fp32>(&ids, t, chunk, 0)?;
    }

    #[test]
    fn insert_batch_equals_insert_fp64((ids, chunk, t) in ids_chunk_threshold()) {
        check_batch_equivalence::<Fp64>(&ids, t, chunk, 0)?;
    }

    #[test]
    fn insert_batch_equals_insert_monty64((ids, chunk, t) in ids_chunk_threshold()) {
        check_batch_equivalence::<Monty64>(&ids, t, chunk, 0)?;
    }

    /// The packet counter is a wrapping u32; batch insertion near the wrap
    /// boundary must wrap exactly like repeated scalar insertion.
    #[test]
    fn batch_count_wraparound((ids, chunk, t) in ids_chunk_threshold(),
                              offset in 0u32..200) {
        let start = u32::MAX - offset % 100;
        check_batch_equivalence::<Fp32>(&ids, t, chunk, start)?;
        check_batch_equivalence::<Fp64>(&ids, t, chunk, start)?;
    }

    #[test]
    fn parallel_and_pooled_decode_equal_serial_fp32(
        (sent, mask) in proptest::collection::vec((any::<u64>(), any::<bool>()), 0..120)
            .prop_map(|pairs| pairs.into_iter().unzip::<u64, bool, Vec<_>, Vec<_>>()),
        t in 1usize..30,
    ) {
        check_decoder_equivalence::<Fp32>(&sent, &mask, t)?;
    }

    #[test]
    fn parallel_and_pooled_decode_equal_serial_fp64(
        (sent, mask) in proptest::collection::vec((any::<u64>(), any::<bool>()), 0..120)
            .prop_map(|pairs| pairs.into_iter().unzip::<u64, bool, Vec<_>, Vec<_>>()),
        t in 1usize..30,
    ) {
        check_decoder_equivalence::<Fp64>(&sent, &mask, t)?;
    }

    /// Aliasing-heavy width: 16-bit identifiers collide often, exercising
    /// the indeterminate-group paths of all three decoders.
    #[test]
    fn parallel_and_pooled_decode_equal_serial_fp16(
        (sent, mask) in proptest::collection::vec((any::<u64>(), any::<bool>()), 0..80)
            .prop_map(|pairs| pairs.into_iter().unzip::<u64, bool, Vec<_>, Vec<_>>()),
        t in 1usize..40,
    ) {
        check_decoder_equivalence::<Fp16>(&sent, &mask, t)?;
    }
}

/// A deterministic large case that crosses the parallel decoder's
/// minimum-work cutoff (`keys × m >= 4096`), so the threaded prefilter
/// path actually runs when threads are available.
#[test]
fn parallel_decode_equal_serial_above_cutoff() {
    let n = 3000usize;
    let t = 20usize;
    let ids: Vec<u64> = (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17) | 1)
        .collect();
    let mut sender = PowerSumQuack::<Fp64>::new(t);
    sender.insert_batch(&ids);
    let mut receiver = PowerSumQuack::<Fp64>::new(t);
    for (i, &id) in ids.iter().enumerate() {
        if i % (n / t) != 0 {
            receiver.insert(id);
        }
    }
    let diff = sender.difference(&receiver);
    let serial = diff.decode_with_log(&ids).unwrap();
    let parallel = diff.decode_with_log_parallel(&ids).unwrap();
    assert_eq!(serial, parallel);
    assert_eq!(serial.num_missing(), t);
}
