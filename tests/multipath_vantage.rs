//! Integration: multipath observation via quACK combination (paper §5 asks
//! "how would a proxy interact with multipath transport protocols?").
//!
//! A sender sprays packets across two parallel subpaths (ECMP-style). A
//! vantage point on each subpath folds what it sees into its own power
//! sums; the consumer **combines** the two quACKs — power sums are additive
//! — and decodes the union against its mirror, recovering exactly the
//! packets lost on either path.

use sidecar_repro::galois::Fp32;
use sidecar_repro::netsim::link::{Link, LinkConfig, LinkOutcome, LossModel};
use sidecar_repro::netsim::rng::SimRng;
use sidecar_repro::netsim::time::{SimDuration, SimTime};
use sidecar_repro::quack::id::IdentifierGenerator;
use sidecar_repro::quack::{PowerSumQuack, WireFormat};

fn run(seed: u64, n: usize, loss_a: f64, loss_b: f64, threshold: usize) {
    let mut rng = SimRng::new(seed);
    let mut path_a = Link::new(LinkConfig {
        loss: LossModel::Bernoulli { p: loss_a },
        queue_packets: usize::MAX,
        ..LinkConfig::default()
    });
    let mut path_b = Link::new(LinkConfig {
        loss: LossModel::Bernoulli { p: loss_b },
        delay: SimDuration::from_millis(9),
        queue_packets: usize::MAX,
        ..LinkConfig::default()
    });
    let mut ids = IdentifierGenerator::new(32, seed ^ 0x3171);

    let mut sender = PowerSumQuack::<Fp32>::new(threshold);
    let mut vantage_a = PowerSumQuack::<Fp32>::new(threshold);
    let mut vantage_b = PowerSumQuack::<Fp32>::new(threshold);
    let mut log = Vec::with_capacity(n);
    let mut truth_lost = Vec::new();

    for i in 0..n {
        let id = ids.next_id();
        sender.insert(id);
        log.push(id);
        let now = SimTime::ZERO + SimDuration::from_micros(i as u64 * 120);
        // ECMP spray: round-robin between the two subpaths.
        let (link, vantage) = if i % 2 == 0 {
            (&mut path_a, &mut vantage_a)
        } else {
            (&mut path_b, &mut vantage_b)
        };
        match link.offer(now, 1500, &mut rng) {
            LinkOutcome::Deliver(_) => vantage.insert(id),
            _ => truth_lost.push(i),
        }
    }

    // Each vantage ships its quACK independently; the consumer combines.
    let fmt = WireFormat::paper_default(threshold);
    let qa: PowerSumQuack<Fp32> = fmt.decode(&fmt.encode(&vantage_a), None).unwrap();
    let qb: PowerSumQuack<Fp32> = fmt.decode(&fmt.encode(&vantage_b), None).unwrap();
    let union = qa.combine(&qb);

    if truth_lost.len() > threshold {
        assert!(sender.decode_against(&union, &log).is_err());
        return;
    }
    let decoded = sender.decode_against(&union, &log).unwrap();
    assert_eq!(decoded.missing(), &truth_lost[..], "seed {seed}");
    assert!(decoded.is_fully_determined());

    // Per-path loss attribution: decoding against a single vantage point
    // combined with a *mirror restricted to that path* isolates that path's
    // losses.
    let mut mirror_a = PowerSumQuack::<Fp32>::new(threshold);
    let log_a: Vec<u64> = log.iter().copied().step_by(2).collect();
    for &id in &log_a {
        mirror_a.insert(id);
    }
    let decoded_a = mirror_a.decode_against(&qa, &log_a).unwrap();
    let truth_a: Vec<u64> = truth_lost
        .iter()
        .filter(|&&i| i % 2 == 0)
        .map(|&i| log[i])
        .collect();
    assert_eq!(decoded_a.missing_values(&log_a), truth_a);
}

#[test]
fn combined_vantages_decode_union_of_losses() {
    for seed in 0..10 {
        run(seed, 800, 0.01, 0.02, 30);
    }
}

#[test]
fn asymmetric_paths_one_clean() {
    run(77, 600, 0.0, 0.03, 25);
}

#[test]
fn both_paths_clean_decodes_empty() {
    run(5, 1000, 0.0, 0.0, 10);
}
