//! Integration: every quACK construction (all field widths, both 64-bit
//! arithmetic backends, both strawmen) agrees on the same workloads.

use sidecar_repro::galois::{Field, Fp16, Fp16Table, Fp24, Fp32, Fp64, Monty64};
use sidecar_repro::quack::id::IdentifierGenerator;
use sidecar_repro::quack::strawman::EchoQuack;
use sidecar_repro::quack::PowerSumQuack;
use std::collections::HashSet;

/// Builds a workload of distinct identifiers valid for all widths.
fn workload(seed: u64, n: usize, missing_every: usize) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    // Use 16-bit identifiers (the narrowest width) so every field accepts
    // them, and force distinctness to keep ground truth unambiguous.
    let mut generator = IdentifierGenerator::new(16, seed);
    let mut seen = HashSet::new();
    let mut sent = Vec::with_capacity(n);
    while sent.len() < n {
        let id = generator.next_id();
        if id < 65_521 && seen.insert(id) {
            sent.push(id);
        }
    }
    let mut received = Vec::new();
    let mut dropped = Vec::new();
    for (i, &id) in sent.iter().enumerate() {
        if i % missing_every == missing_every - 1 {
            dropped.push(id);
        } else {
            received.push(id);
        }
    }
    (sent, received, dropped)
}

fn power_sum_missing<F: Field>(sent: &[u64], received: &[u64], t: usize) -> Vec<u64> {
    let mut s = PowerSumQuack::<F>::new(t);
    let mut r = PowerSumQuack::<F>::new(t);
    for &id in sent {
        s.insert(id);
    }
    for &id in received {
        r.insert(id);
    }
    let decoded = s.decode_against(&r, sent).expect("within threshold");
    assert!(decoded.is_fully_determined(), "distinct ids: no ambiguity");
    decoded.missing_values(sent)
}

#[test]
fn all_field_widths_agree_with_each_other_and_with_strawman1() {
    for seed in [3u64, 17, 99] {
        let (sent, received, dropped) = workload(seed, 400, 25);
        let expected = dropped;

        assert_eq!(power_sum_missing::<Fp16>(&sent, &received, 20), expected);
        assert_eq!(
            power_sum_missing::<Fp16Table>(&sent, &received, 20),
            expected
        );
        assert_eq!(power_sum_missing::<Fp24>(&sent, &received, 20), expected);
        assert_eq!(power_sum_missing::<Fp32>(&sent, &received, 20), expected);
        assert_eq!(power_sum_missing::<Fp64>(&sent, &received, 20), expected);
        assert_eq!(power_sum_missing::<Monty64>(&sent, &received, 20), expected);

        let mut echo = EchoQuack::new(16);
        for &id in &received {
            echo.insert(id);
        }
        assert_eq!(echo.decode_missing(&sent), expected);
    }
}

#[test]
fn cross_width_wire_sizes_rank_as_expected() {
    use sidecar_repro::quack::WireFormat;
    let sizes: Vec<usize> = [16u32, 24, 32, 64]
        .iter()
        .map(|&b| {
            WireFormat {
                id_bits: b,
                threshold: 20,
                count_bits: 16,
            }
            .encoded_bytes()
        })
        .collect();
    assert_eq!(sizes, vec![42, 62, 82, 162]);
    assert!(sizes.windows(2).all(|w| w[0] < w[1]));
}
