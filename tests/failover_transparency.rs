//! Headline acceptance: **failure transparency** across all three sidecar
//! protocols (ISSUE 1 / paper §1).
//!
//! "Hosts can take advantage of [sidecars] when they are available, while
//! remaining completely functional when they are not." Each test breaks the
//! sidecar path mid-transfer with a deterministic fault script — a control
//! blackout (the sidecar session dies; the data path is untouched) or a
//! proxy crash/restart — and lowers the *same* script onto a no-sidecar
//! baseline twin. The flow must complete, the supervisor must degrade to
//! end-to-end behavior, and goodput must stay within 10% of the twin.

use sidecar_repro::netsim::time::{SimDuration, SimTime};
use sidecar_repro::proto::protocols::ack_reduction::AckReductionScenario;
use sidecar_repro::proto::protocols::ccd::CcdScenario;
use sidecar_repro::proto::protocols::retx::RetxScenario;
use sidecar_repro::proto::protocols::{FaultScript, ScenarioReport};

fn at(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

/// The sidecar session dies at t=50ms and never comes back.
fn session_kill() -> FaultScript {
    FaultScript {
        fault_seed: 97,
        drop_control: Some((at(50), at(600_000))),
        ..FaultScript::default()
    }
}

fn assert_within_10pct(label: &str, side: &ScenarioReport, base: &ScenarioReport) {
    assert!(side.completion.is_some(), "{label}: sidecar run incomplete");
    assert!(
        base.completion.is_some(),
        "{label}: baseline run incomplete"
    );
    let (s, b) = (
        side.goodput_bps.unwrap_or(0.0),
        base.goodput_bps.unwrap_or(0.0),
    );
    assert!(
        s / b >= 0.9,
        "{label}: goodput {:.2} vs baseline {:.2} Mbit/s (ratio {:.3})",
        s / 1e6,
        b / 1e6,
        s / b,
    );
}

#[test]
fn retx_survives_sidecar_session_kill() {
    let scenario = RetxScenario {
        total_packets: 1_200,
        ..RetxScenario::default()
    };
    let script = session_kill();
    let side = scenario.run_sidecar_faulted(71, &script);
    let base = scenario.run_baseline_faulted(71, &script);
    assert!(side.degradations >= 1, "never degraded: {side:?}");
    assert_within_10pct("retx/session-kill", &side, &base);
}

#[test]
fn ack_reduction_survives_sidecar_session_kill() {
    let scenario = AckReductionScenario {
        total_packets: 1_200,
        ..AckReductionScenario::default()
    };
    let script = session_kill();
    let side = scenario.run_sidecar_faulted(72, &script);
    // Degradation swaps the *server* back to e2e control; the remote
    // client's sparse-ACK cadence is static config it cannot reach, so the
    // honest twin keeps the reduced cadence.
    let base = scenario.run_baseline_faulted(72, scenario.reduced_ack_every, &script);
    assert!(side.degradations >= 1, "never degraded: {side:?}");
    assert_within_10pct("ackred/session-kill", &side, &base);
}

#[test]
fn ccd_survives_sidecar_session_kill() {
    // Long enough that the ~350ms detection window plus the NewReno
    // re-ramp amortize below the 10% bound (after handover both runs are
    // the same sender over the same forwarder).
    let scenario = CcdScenario {
        total_packets: 10_000,
        ..CcdScenario::default()
    };
    let script = session_kill();
    let side = scenario.run_sidecar_faulted(73, &script);
    let base = scenario.run_baseline_faulted(73, &script);
    assert!(side.degradations >= 1, "never degraded: {side:?}");
    assert_within_10pct("ccd/session-kill", &side, &base);
}

#[test]
fn all_protocols_survive_proxy_crash_and_recover() {
    let script = FaultScript {
        fault_seed: 5,
        proxy_crash: Some((at(250), at(750))),
        ..FaultScript::default()
    };

    let retx = RetxScenario {
        total_packets: 1_200,
        ..RetxScenario::default()
    };
    assert_within_10pct(
        "retx/crash",
        &retx.run_sidecar_faulted(81, &script),
        &retx.run_baseline_faulted(81, &script),
    );

    let ackred = AckReductionScenario {
        total_packets: 2_000,
        ..AckReductionScenario::default()
    };
    let side = ackred.run_sidecar_faulted(82, &script);
    assert_within_10pct(
        "ackred/crash",
        &side,
        &ackred.run_baseline_faulted(82, ackred.reduced_ack_every, &script),
    );
    // The 500ms outage outlives the liveness timeout: the server must have
    // degraded, and the restarted proxy's handshake must re-enable it.
    assert!(side.degradations >= 1, "never degraded: {side:?}");
    assert!(side.recoveries >= 1, "never recovered: {side:?}");

    let ccd = CcdScenario {
        total_packets: 1_200,
        ..CcdScenario::default()
    };
    assert_within_10pct(
        "ccd/crash",
        &ccd.run_sidecar_faulted(83, &script),
        &ccd.run_baseline_faulted(83, &script),
    );
}
