//! Integration: a full offer/accept negotiation followed by a quACK session
//! at the negotiated (runtime-chosen) identifier width.

use sidecar_repro::netsim::time::SimDuration;
use sidecar_repro::proto::QuackFrequency;
use sidecar_repro::proto::{accept_hello, offer, Capabilities, SidecarConfig, SidecarMessage};
use sidecar_repro::quack::id::IdentifierGenerator;
use sidecar_repro::quack::DynQuack;

/// Runs one negotiated session at whatever width the consumer offered.
fn run_session(offered: SidecarConfig) {
    // 1. The consumer offers its §3.2 parameter triple…
    let hello = offer(&offered);
    // …which travels as a sidecar datagram…
    let (tag, body) = hello.encode();
    let received = SidecarMessage::decode(tag, &body).unwrap();
    // …and the producer accepts within its capabilities.
    let agreed = accept_hello(&Capabilities::default(), &received).unwrap();
    assert_eq!(agreed.id_bits, offered.id_bits);
    assert_eq!(agreed.threshold, offered.threshold);

    // 2. Both sides instantiate runtime-width sketches from the agreement.
    let mut sender = DynQuack::new(agreed.id_bits, agreed.threshold).unwrap();
    let mut receiver = DynQuack::new(agreed.id_bits, agreed.threshold).unwrap();
    let mut ids = IdentifierGenerator::new(agreed.id_bits, 0x5E5510 + agreed.id_bits as u64);
    let sent = ids.take_ids(300);
    for &id in &sent {
        sender.insert(id);
    }
    let dropped: Vec<usize> = (0..300).filter(|i| i % 60 == 7).collect();
    for (i, &id) in sent.iter().enumerate() {
        if !dropped.contains(&i) {
            receiver.insert(id);
        }
    }

    // 3. The quACK crosses the wire in the agreed format.
    let wire = receiver.encode(agreed.count_bits);
    assert_eq!(wire.len(), agreed.quack_bytes());
    let rx = DynQuack::decode_wire(
        agreed.id_bits,
        agreed.threshold,
        agreed.count_bits,
        &wire,
        None,
    )
    .unwrap();

    // 4. Decode recovers exactly the drops.
    let decoded = sender
        .difference(&rx)
        .unwrap()
        .decode_with_log(&sent)
        .unwrap();
    assert_eq!(decoded.missing(), &dropped[..], "width {}", agreed.id_bits);
}

#[test]
fn negotiated_sessions_at_every_width() {
    for bits in [16u32, 24, 32, 64] {
        run_session(SidecarConfig {
            id_bits: bits,
            threshold: 10,
            ..SidecarConfig::paper_default()
        });
    }
}

#[test]
fn negotiation_failure_prevents_the_session() {
    // A proxy that only speaks 32-bit identifiers declines a 64-bit offer;
    // no sketches are built and the base protocol continues unassisted.
    let caps = Capabilities {
        id_bits: &[32],
        ..Capabilities::default()
    };
    let hello = offer(&SidecarConfig {
        id_bits: 64,
        ..SidecarConfig::paper_default()
    });
    assert!(accept_hello(&caps, &hello).is_err());
}

#[test]
fn negotiated_packet_count_schedule() {
    let offered = SidecarConfig {
        frequency: QuackFrequency::EveryPackets(2),
        reorder_grace: SimDuration::from_millis(5),
        ..SidecarConfig::paper_default()
    };
    let agreed = accept_hello(&Capabilities::default(), &offer(&offered)).unwrap();
    assert!(matches!(agreed.frequency, QuackFrequency::EveryPackets(_)));
    run_session(offered);
}
