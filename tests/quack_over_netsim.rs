//! Integration: the quACK sketch driven by *simulated network ground
//! truth* — identifiers cross a lossy link and the decode must agree with
//! what the link actually dropped.

use sidecar_repro::galois::Fp32;
use sidecar_repro::netsim::link::{Link, LinkConfig, LinkOutcome, LossModel};
use sidecar_repro::netsim::rng::SimRng;
use sidecar_repro::netsim::time::{SimDuration, SimTime};
use sidecar_repro::quack::id::IdentifierGenerator;
use sidecar_repro::quack::{PowerSumQuack, WireFormat};

/// Pushes `n` identifier-carrying packets through a lossy link, quACKs the
/// survivors, and checks the sender decodes exactly the link's drops.
fn run_one(seed: u64, n: usize, loss: f64, threshold: usize) {
    let mut rng = SimRng::new(seed);
    let mut link = Link::new(LinkConfig {
        loss: LossModel::Bernoulli { p: loss },
        queue_packets: usize::MAX,
        ..LinkConfig::default()
    });
    let mut ids = IdentifierGenerator::new(32, seed ^ 0xABCD);

    let mut sender = PowerSumQuack::<Fp32>::new(threshold);
    let mut receiver = PowerSumQuack::<Fp32>::new(threshold);
    let mut log = Vec::with_capacity(n);
    let mut truth_dropped = Vec::new();

    for i in 0..n {
        let id = ids.next_id();
        sender.insert(id);
        log.push(id);
        let t = SimTime::ZERO + SimDuration::from_micros(i as u64 * 100);
        match link.offer(t, 1500, &mut rng) {
            LinkOutcome::Deliver(_) => receiver.insert(id),
            _ => truth_dropped.push(i),
        }
    }

    // Ship the quACK through the paper's wire format.
    let fmt = WireFormat::paper_default(threshold);
    let wire = fmt.encode(&receiver);
    let rx: PowerSumQuack<Fp32> = fmt.decode(&wire, None).unwrap();

    let result = sender.decode_against(&rx, &log);
    if truth_dropped.len() > threshold {
        assert!(result.is_err(), "m > t must fail to decode");
        return;
    }
    let decoded = result.unwrap();
    assert_eq!(
        decoded.missing(),
        &truth_dropped[..],
        "decode must match the link's ground-truth drops (seed {seed})"
    );
    assert_eq!(decoded.num_missing(), truth_dropped.len());
    assert!(
        decoded.indeterminate().is_empty(),
        "32-bit ids: no collisions expected"
    );
    assert_eq!(
        link.stats.dropped_loss as usize + link.stats.delivered as usize,
        n
    );
}

#[test]
fn decode_matches_link_ground_truth_light_loss() {
    for seed in 0..20 {
        run_one(seed, 1000, 0.01, 20);
    }
}

#[test]
fn decode_matches_link_ground_truth_heavy_loss_larger_threshold() {
    for seed in 0..10 {
        run_one(seed, 500, 0.05, 60);
    }
}

#[test]
fn threshold_exceeded_detected_over_real_drops() {
    // 10% loss over 1000 packets ≈ 100 drops ≫ t = 20.
    run_one(99, 1000, 0.10, 20);
}

#[test]
fn lossless_link_decodes_empty() {
    run_one(7, 2000, 0.0, 20);
}
