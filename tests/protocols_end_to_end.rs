//! Integration: the three sidecar protocols as full simulations, checked
//! for reliability, determinism, and the qualitative wins the paper claims.

use sidecar_repro::netsim::link::{LinkConfig, LossModel};
use sidecar_repro::netsim::time::SimDuration;
use sidecar_repro::proto::protocols::ack_reduction::AckReductionScenario;
use sidecar_repro::proto::protocols::ccd::CcdScenario;
use sidecar_repro::proto::protocols::retx::RetxScenario;

#[test]
fn ccd_divides_and_wins_under_downstream_loss() {
    let scenario = CcdScenario {
        total_packets: 1_200,
        downstream: LinkConfig {
            rate_bps: 50_000_000,
            delay: SimDuration::from_millis(20),
            loss: LossModel::Bernoulli { p: 0.01 },
            ..LinkConfig::default()
        },
        ..CcdScenario::default()
    };
    let mut wins = 0;
    for seed in [1u64, 2, 3] {
        let side = scenario.run_sidecar(seed);
        let base = scenario.run_baseline(seed);
        assert!(
            side.completion.is_some(),
            "sidecar run must finish (seed {seed})"
        );
        if side.completion_secs() < base.completion_secs() {
            wins += 1;
        }
    }
    assert_eq!(
        wins, 3,
        "division should win every seed at 1% downstream loss"
    );
}

#[test]
fn retx_protocol_reliable_and_usually_faster() {
    let scenario = RetxScenario {
        total_packets: 1_000,
        ..RetxScenario::default()
    };
    let mut faster = 0;
    for seed in [10u64, 20, 30] {
        let side = scenario.run_sidecar(seed);
        let base = scenario.run_baseline(seed);
        assert!(side.completion.is_some(), "seed {seed}: {side:?}");
        assert!(base.completion.is_some(), "seed {seed}: {base:?}");
        assert!(
            side.proxy_retransmissions > 0,
            "sidecar must do in-network retx"
        );
        if side.completion_secs() <= base.completion_secs() {
            faster += 1;
        }
    }
    assert!(
        faster >= 2,
        "in-network retx should win most seeds, won {faster}/3"
    );
}

#[test]
fn ack_reduction_cuts_acks_an_order_of_magnitude() {
    let scenario = AckReductionScenario {
        total_packets: 1_000,
        ..AckReductionScenario::default()
    };
    for seed in [5u64, 6] {
        let side = scenario.run_sidecar(seed);
        let normal = scenario.run_baseline_normal(seed);
        assert!(side.completion.is_some());
        assert!(
            side.client_acks * 8 < normal.client_acks,
            "seed {seed}: {} vs {}",
            side.client_acks,
            normal.client_acks
        );
        // The server still delivers everything despite 16x fewer ACKs.
        assert!(side.server_sent >= 1_000);
    }
}

#[test]
fn all_scenarios_are_deterministic() {
    let ccd = CcdScenario {
        total_packets: 400,
        ..CcdScenario::default()
    };
    assert_eq!(ccd.run_sidecar(77), ccd.run_sidecar(77));
    assert_eq!(ccd.run_baseline(77), ccd.run_baseline(77));

    let retx = RetxScenario {
        total_packets: 400,
        ..RetxScenario::default()
    };
    assert_eq!(retx.run_sidecar(77), retx.run_sidecar(77));
    assert_eq!(retx.run_baseline(77), retx.run_baseline(77));

    let ackred = AckReductionScenario {
        total_packets: 400,
        ..AckReductionScenario::default()
    };
    assert_eq!(ackred.run_sidecar(77), ackred.run_sidecar(77));
    assert_eq!(
        ackred.run_baseline_normal(77),
        ackred.run_baseline_normal(77)
    );
}

#[test]
fn different_seeds_give_different_runs() {
    let retx = RetxScenario {
        total_packets: 400,
        ..RetxScenario::default()
    };
    assert_ne!(retx.run_sidecar(1), retx.run_sidecar(2));
}

#[test]
fn sidecar_overhead_is_modest_on_clean_paths() {
    // With no loss anywhere — including a queue deep enough that slow
    // start cannot overflow it — adding the sidecar machinery must not
    // slow the flow by more than a small factor (quACKs ride alongside,
    // proxies still forward promptly) and must trigger zero in-network
    // retransmissions.
    let scenario = RetxScenario {
        total_packets: 800,
        subpath: LinkConfig {
            loss: LossModel::None,
            queue_packets: 8_192,
            ..RetxScenario::default().subpath
        },
        ..RetxScenario::default()
    };
    let side = scenario.run_sidecar(3);
    let base = scenario.run_baseline(3);
    assert!(side.completion.is_some() && base.completion.is_some());
    assert!(
        side.completion_secs() < base.completion_secs() * 1.25,
        "sidecar {:.3}s vs baseline {:.3}s",
        side.completion_secs(),
        base.completion_secs()
    );
    assert_eq!(side.proxy_retransmissions, 0);
}
